//! Workspace-root package: exists only to host the integration tests in
//! `tests/` and the runnable examples in `examples/`. All library code
//! lives in the `crates/` members; use the [`moist`] facade crate.

pub use moist;
