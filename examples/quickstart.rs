//! Quickstart: index a handful of moving objects, run nearest-neighbour and
//! position queries, and watch update shedding happen.
//!
//! Run with: `cargo run --release --example quickstart`

use moist::bigtable::{Bigtable, Timestamp};
use moist::core::{MoistConfig, MoistServer, ObjectId, UpdateMessage};
use moist::spatial::{Point, Velocity};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One store (the "BigTable"), one front-end server.
    let store = Bigtable::new();
    let mut server = MoistServer::new(&store, MoistConfig::default())?;

    // Three commuters walk east together (inside one clustering cell —
    // schools form per cell, so straddling a cell boundary would keep
    // them apart); one cyclist heads north.
    println!("== registering objects ==");
    for (oid, x, y, vx, vy) in [
        (1u64, 100.0, 510.0, 1.0, 0.0),
        (2, 101.0, 511.0, 1.0, 0.0),
        (3, 102.0, 509.0, 1.0, 0.0),
        (4, 500.0, 100.0, 0.0, 2.0),
    ] {
        let outcome = server.update(&UpdateMessage {
            oid: ObjectId(oid),
            loc: Point::new(x, y),
            vel: Velocity::new(vx, vy),
            ts: Timestamp::from_secs(0),
        })?;
        println!("  object {oid}: {outcome:?}");
    }

    // Periodic clustering groups the co-moving commuters into one school.
    let report = server.run_due_clustering(Timestamp::from_secs(30))?;
    println!(
        "\n== clustering == merged {} leaders into schools ({} -> {} leaders)",
        report.merged, report.pre_leaders, report.post_leaders
    );

    // Followers that keep moving with their school are shed: no store write.
    println!("\n== follower updates (schooled) ==");
    for t in 31..=35u64 {
        let x = 102.0 + t as f64; // object 3 keeps pace with the school: 1 u/s east since t=0
        let outcome = server.update(&UpdateMessage {
            oid: ObjectId(3),
            loc: Point::new(x, 509.0),
            vel: Velocity::new(1.0, 0.0),
            ts: Timestamp::from_secs(t),
        })?;
        println!("  t={t}s object 3: {outcome:?}");
    }
    let stats = server.stats();
    println!(
        "  {} of {} updates shed ({:.0}%)",
        stats.shed,
        stats.updates,
        100.0 * stats.shed_ratio()
    );

    // Nearest-neighbour query: who is around (105, 510)?
    println!("\n== 3-NN around (105, 510) at t=35s ==");
    let (neighbors, nn_stats) = server.nn(Point::new(105.0, 510.0), 3, Timestamp::from_secs(35))?;
    for n in &neighbors {
        println!(
            "  object {} at ({:.1}, {:.1}) — {:.1} units away (school of {})",
            n.oid, n.loc.x, n.loc.y, n.distance, n.leader
        );
    }
    println!(
        "  ({} cells scanned, {:.0} µs modelled cost)",
        nn_stats.cells_scanned, nn_stats.cost_us
    );

    // Point lookup of a follower: served from the school estimate.
    let pos = server
        .position(ObjectId(3), Timestamp::from_secs(35))?
        .expect("object 3 is indexed");
    println!(
        "\n== position(3) at t=35s == ({:.1}, {:.1}) (estimated from its leader)",
        pos.x, pos.y
    );

    println!(
        "\nThe server consumed {:.2} ms of modelled store time for {} updates + {} NN queries.",
        server.elapsed_us() / 1000.0,
        stats.updates,
        server.stats().nn_queries
    );
    Ok(())
}
