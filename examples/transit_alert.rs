//! Transit Alert — the §5 "Bus Alert Service" deployed in Taipei.
//!
//! Buses stream GPS fixes twice a minute; riders can (1) query a bus's
//! location, (2) browse all buses nearby, and (3) set an alarm that fires
//! when their bus approaches a stop. This example runs all three against a
//! simulated bus fleet on the road-network map.
//!
//! Run with: `cargo run --release --example transit_alert`

use moist::bigtable::{Bigtable, Timestamp};
use moist::core::{MoistConfig, MoistServer, ObjectId, UpdateMessage};
use moist::spatial::{Point, Rect};
use moist::workload::{RoadMap, RoadMapConfig, RoadNetSim, SimConfig};

/// A rider's alarm: fire when `bus` comes within `radius` of `stop`.
struct Alarm {
    bus: ObjectId,
    stop: Point,
    radius: f64,
    fired: bool,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let store = Bigtable::new();
    let mut server = MoistServer::new(&store, MoistConfig::default())?;

    // A fleet of 60 buses (cars in the simulator's speed class) on the
    // paper's road-network map, reporting every ~30 s like the Taipei
    // deployment ("each bus updated its GPS location twice a minute").
    let mut sim = RoadNetSim::new(
        RoadMap::new(RoadMapConfig::default()),
        SimConfig {
            agents: 60,
            car_fraction: 1.0,
            max_update_interval_secs: 30.0,
            seed: 2011, // the year the service launched
            ..SimConfig::default()
        },
    );

    let stop = Point::new(500.0, 500.0);
    let mut alarm = Alarm {
        bus: ObjectId(17),
        stop,
        radius: 120.0,
        fired: false,
    };

    println!(
        "Bus Alert Service: 60 buses, stop at ({:.0}, {:.0})\n",
        stop.x, stop.y
    );
    let mut clock = 0.0f64;
    while clock < 600.0 {
        clock += 30.0;
        // Ingest this window's GPS fixes.
        for u in sim.advance_until(clock) {
            server.update(&UpdateMessage {
                oid: ObjectId(u.oid),
                loc: u.loc,
                vel: u.vel,
                ts: Timestamp::from_secs_f64(u.at_secs),
            })?;
        }
        server.run_due_clustering(Timestamp::from_secs_f64(clock))?;
        let now = Timestamp::from_secs_f64(clock);

        // (1) Where is my bus?
        let bus_pos = server.position(alarm.bus, now)?;

        // (2) Browse the 3 buses nearest the stop, and everything in the
        // surrounding quarter (a region query; margin covers bus speed ×
        // update interval).
        let (nearby, _) = server.nn(stop, 3, now)?;
        let quarter = Rect::new(
            stop.x - 150.0,
            stop.y - 150.0,
            stop.x + 150.0,
            stop.y + 150.0,
        );
        let (in_quarter, _) = server.region(&quarter, now, 60.0)?;

        // (3) Alarm check.
        if let Some(p) = bus_pos {
            if !alarm.fired && p.distance(&alarm.stop) <= alarm.radius {
                alarm.fired = true;
                println!(
                    "t={clock:>4.0}s  ALARM: bus {} is approaching the stop ({:.0} units away)!",
                    alarm.bus,
                    p.distance(&alarm.stop)
                );
            }
        }

        if (clock as u64).is_multiple_of(120) {
            let ids: Vec<String> = nearby
                .iter()
                .map(|n| format!("{}@{:.0}u", n.oid, n.distance))
                .collect();
            let where_is = bus_pos
                .map(|p| format!("({:.0}, {:.0})", p.x, p.y))
                .unwrap_or_else(|| "unknown".into());
            println!(
                "t={clock:>4.0}s  bus {} at {where_is}; nearest: [{}]; {} buses in the quarter",
                alarm.bus,
                ids.join(", "),
                in_quarter.len()
            );
        }
    }

    let stats = server.stats();
    println!(
        "\nServed {} updates ({:.0}% shed by schooling), {} NN queries, \
         {:.1} ms modelled store time.",
        stats.updates,
        100.0 * stats.shed_ratio(),
        stats.nn_queries,
        server.elapsed_us() / 1000.0
    );
    if !alarm.fired {
        println!(
            "(The watched bus never came within {:.0} units this run.)",
            alarm.radius
        );
    }
    Ok(())
}
