//! History mining over the PPP archive — travel paths and points of
//! interest (§3.5 motivation; §6 future work: "route planning, map makers,
//! and point-of-interest data mining").
//!
//! Runs the road-network workload with the aged-data archiver attached,
//! then answers (a) an object-based history query (one rider's travel
//! path), (b) a location-based history query (who crossed downtown), and
//! (c) mines visit counts per map cell into a points-of-interest heatmap.
//! It finishes with the §3.6.2 planner choosing the disk count.
//!
//! Run with: `cargo run --release --example history_mining`

use moist::archive::{DiskProfile, PlannerInput, PppArchiver, PppConfig, RECORD_BYTES};
use moist::bigtable::{Bigtable, Timestamp};
use moist::core::{MoistConfig, MoistServer, ObjectId, UpdateMessage};
use moist::spatial::{CellId, CurveKind, Point, Rect};
use moist::workload::{RoadMap, RoadMapConfig, RoadNetSim, SimConfig};
use std::collections::HashMap;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = MoistConfig::default();
    let store = Bigtable::new();
    let archiver = Arc::new(PppArchiver::new(
        cfg.space,
        PppConfig {
            num_disks: 4,
            total_buffer_bytes: 64 * 1024,
            column_records: 8,
            placement_level: 3,
            disk: DiskProfile::default(),
        },
    ));
    let mut server = MoistServer::new(&store, cfg)?.with_archiver(Arc::clone(&archiver));

    // 20 minutes of city traffic.
    let mut sim = RoadNetSim::new(
        RoadMap::new(RoadMapConfig::default()),
        SimConfig {
            agents: 200,
            seed: 99,
            ..SimConfig::default()
        },
    );
    for minute in 1..=20u64 {
        for u in sim.advance_until(minute as f64 * 60.0) {
            server.update(&UpdateMessage {
                oid: ObjectId(u.oid),
                loc: u.loc,
                vel: u.vel,
                ts: Timestamp::from_secs_f64(u.at_secs),
            })?;
        }
        server.run_due_clustering(Timestamp::from_secs(minute * 60))?;
    }
    archiver.flush_all();
    let ppp = archiver.stats();
    println!(
        "Archived {} records in {} columns across {} flushes on {} disks.",
        ppp.records_ingested,
        ppp.columns_aged,
        ppp.flushes,
        archiver.num_disks()
    );
    if let Some((min_tm, max_td, ok)) = archiver.pingpong_safety() {
        println!(
            "Ping-pong safety: min Tm = {min_tm:.3}s, max Td = {max_td:.3}s -> {}",
            if ok { "SAFE" } else { "VIOLATED" }
        );
    }

    // (a) One rider's travel path.
    let rider = ObjectId(3);
    let (path, cost) = server
        .history(rider, Timestamp::ZERO, Timestamp::from_secs(1200))
        .expect("archiver attached");
    println!(
        "\nTravel path of rider {rider}: {} fixes ({} disk touched, {} pages, {:.1} ms device time)",
        path.len(),
        cost.disks_touched,
        cost.pages_read,
        cost.total_device_secs * 1000.0
    );
    for r in path.iter().take(4) {
        println!(
            "  t={:>5.0}s  ({:.1}, {:.1})",
            r.ts_us as f64 / 1e6,
            r.loc.x,
            r.loc.y
        );
    }
    if path.len() > 4 {
        println!("  ... {} more fixes", path.len() - 4);
    }

    // (b) Who crossed downtown between minutes 5 and 15?
    let downtown = Rect::new(400.0, 400.0, 600.0, 600.0);
    let (visits, cost) =
        archiver.query_region(&downtown, 5 * 60 * 1_000_000, 15 * 60 * 1_000_000, 150.0);
    let distinct: std::collections::HashSet<u64> = visits.iter().map(|r| r.oid).collect();
    println!(
        "\nDowntown 400..600²: {} fixes from {} distinct objects \
         ({}/{} disks touched — placement locality at work)",
        visits.len(),
        distinct.len(),
        cost.disks_touched,
        archiver.num_disks()
    );

    // (c) Points-of-interest heatmap: visit counts per level-4 cell.
    let space = server.config().space;
    let (all, _) = archiver.query_region(&space.world, 0, u64::MAX, 0.0);
    let mut heat: HashMap<CellId, usize> = HashMap::new();
    for r in &all {
        *heat.entry(space.cell_at(4, &r.loc)).or_default() += 1;
    }
    let mut hot: Vec<(CellId, usize)> = heat.into_iter().collect();
    hot.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
    println!("\nTop-5 points of interest (level-4 cells by visit count):");
    for (cell, n) in hot.iter().take(5) {
        let c = cell.bounds(CurveKind::Hilbert).center();
        let w = space.to_world(&Point::new(c.x, c.y));
        println!(
            "  cell #{:>3}  around ({:>3.0}, {:>3.0})  {n} visits",
            cell.index, w.x, w.y
        );
    }

    // (d) The §3.6.2 planner: how many disks should this deployment run?
    let plan = PlannerInput {
        buffer_bytes: (200 * 8 * RECORD_BYTES) as f64, // s_rec × n_o
        objects: 200,
        fill_rate_bytes_per_sec: (ppp.records_ingested as f64 * RECORD_BYTES as f64) / 1200.0,
        k: 50.0,
        disk: DiskProfile::default(),
        max_disks: 16,
    }
    .plan();
    println!(
        "\nPlanner: n_d = {} (U_d = {:.4}, R_d = {:.4}, T_d = {:.4}s, feasible = {})",
        plan.best.nd, plan.best.ud, plan.best.rd, plan.best.td, plan.best.feasible
    );
    Ok(())
}
