//! Realtime coupon targeting — the second §5 application.
//!
//! Users stream their locations; a restaurant with open seats submits a
//! coupon targeting customers within 1,000 m "immediately". The match is a
//! predictive nearest-neighbour query: customers *heading toward* the
//! restaurant are worth more than ones walking away, so the restaurant
//! targets by position a minute into the future.
//!
//! Run with: `cargo run --release --example coupon_targeting`

use moist::bigtable::{Bigtable, Timestamp};
use moist::core::{MoistConfig, MoistServer, ObjectId, UpdateMessage};
use moist::spatial::Point;
use moist::workload::{RoadMap, RoadMapConfig, RoadNetSim, SimConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let store = Bigtable::new();
    let mut server = MoistServer::new(&store, MoistConfig::default())?;

    // Lunch crowd: 400 pedestrians wandering the downtown grid.
    let mut sim = RoadNetSim::new(
        RoadMap::new(RoadMapConfig::default()),
        SimConfig {
            agents: 400,
            car_fraction: 0.0,
            seed: 7,
            ..SimConfig::default()
        },
    );

    // Warm up: 5 minutes of location updates + clustering.
    for minute in 1..=5u64 {
        for u in sim.advance_until(minute as f64 * 60.0) {
            server.update(&UpdateMessage {
                oid: ObjectId(u.oid),
                loc: u.loc,
                vel: u.vel,
                ts: Timestamp::from_secs_f64(u.at_secs),
            })?;
        }
        server.run_due_clustering(Timestamp::from_secs(minute * 60))?;
    }
    let now = Timestamp::from_secs(300);
    let stats = server.stats();
    println!(
        "Indexed {} users over 5 min ({} updates, {:.0}% shed).\n",
        400,
        stats.updates,
        100.0 * stats.shed_ratio()
    );

    // A restaurant at the centre of town has open seats.
    let restaurant = Point::new(500.0, 500.0);
    let radius = 150.0; // the coupon's reach in map units

    // Current-position targeting.
    let (current, _) = server.nn(restaurant, 50, now)?;
    let reachable_now: Vec<_> = current.iter().filter(|n| n.distance <= radius).collect();

    // Predictive targeting: who will be nearby in 60 s?
    let (future, _) = server.nn_predictive(restaurant, 50, now, 60.0, 6)?;
    let reachable_soon: Vec<_> = future.iter().filter(|n| n.distance <= radius).collect();

    println!(
        "Coupon reach (radius {radius:.0}): {} users now, {} users in 60 s.",
        reachable_now.len(),
        reachable_soon.len()
    );

    // The coupon goes to everyone in either set; heading-toward users get
    // the premium offer.
    use std::collections::HashSet;
    let now_set: HashSet<u64> = reachable_now.iter().map(|n| n.oid.0).collect();
    let mut premium = 0;
    let mut standard = 0;
    for n in &reachable_soon {
        if now_set.contains(&n.oid.0) {
            standard += 1;
        } else {
            premium += 1; // approaching: not here yet, will be in a minute
        }
    }
    println!("  -> {standard} standard coupons (already nearby)");
    println!("  -> {premium} premium coupons (approaching within the minute)");

    let sample: Vec<String> = reachable_soon
        .iter()
        .take(5)
        .map(|n| format!("user {} ({:.0}u away in 60s)", n.oid, n.distance))
        .collect();
    println!("  sample recipients: {}", sample.join(", "));

    println!(
        "\nModelled store time for the whole lunch rush: {:.1} ms.",
        server.elapsed_us() / 1000.0
    );
    Ok(())
}
