//! Scale-out integration tests: a [`MoistCluster`] driven by a
//! [`ClientPool`] of real OS threads over one shared store.
//!
//! These pin the two cluster-tier invariants:
//!
//! * operation counters stay consistent under concurrency — every update a
//!   client sent is accounted for by exactly one outcome on exactly one
//!   shard, and the cluster-wide object estimate tracks registrations;
//! * the clustering level is partitioned — every clustering cell is owned
//!   and lazily clustered by exactly one shard.

use moist::bigtable::{Bigtable, Timestamp};
use moist::core::{MoistCluster, MoistConfig, ObjectId, UpdateMessage};
use moist::spatial::{cells_at_level, Point};
use moist::workload::{ClientPool, RoadMap, RoadMapConfig, RoadNetSim, SimConfig};
use std::sync::Mutex;

mod common;

const SHARDS: usize = 4;
const WORKERS: usize = 8;

fn tier_config() -> MoistConfig {
    MoistConfig {
        epsilon: 50.0,
        delta_m: 2.0,
        clustering_level: 3, // 64 cells across 4 shards
        cluster_interval_secs: 10.0,
        ..MoistConfig::default()
    }
}

/// Drives `WORKERS` threads of road-network traffic through `cluster`
/// until simulated second `until`, each worker also ticking lazy
/// clustering for its stride of shards. Returns total updates sent.
fn drive_concurrently(cluster: &MoistCluster, until: f64) -> u64 {
    let sims: Vec<Mutex<RoadNetSim>> = (0..WORKERS)
        .map(|i| {
            Mutex::new(RoadNetSim::new(
                RoadMap::new(RoadMapConfig::default()),
                SimConfig {
                    agents: 100,
                    seed: 900 + i as u64,
                    ..SimConfig::default()
                },
            ))
        })
        .collect();
    let sent: Vec<u64> = ClientPool::run(WORKERS, |i| {
        let mut sim = sims[i].lock().expect("sim lock");
        let oid_base = i as u64 * 1_000_000;
        let mut count = 0u64;
        let mut t = 0.0;
        while t < until {
            t = (t + 5.0).min(until);
            for u in sim.advance_until(t) {
                cluster
                    .update(&UpdateMessage {
                        oid: ObjectId(oid_base + u.oid),
                        loc: u.loc,
                        vel: u.vel,
                        ts: Timestamp::from_secs_f64(u.at_secs),
                    })
                    .expect("update");
                count += 1;
            }
            let mut shard = i;
            while shard < cluster.num_shards() {
                cluster
                    .run_due_clustering_shard(shard, Timestamp::from_secs_f64(t))
                    .expect("clustering");
                shard += WORKERS;
            }
        }
        count
    });
    sent.iter().sum()
}

#[test]
fn concurrent_updates_keep_counters_consistent_across_shards() {
    let store = Bigtable::new();
    let cluster = MoistCluster::builder(&store, tier_config())
        .shards(SHARDS)
        .build()
        .unwrap();
    let sent = drive_concurrently(&cluster, 90.0);

    // Every sent update landed on exactly one shard with exactly one
    // outcome: the shard counters sum back to the client-side total.
    let agg = cluster.stats();
    assert_eq!(agg.updates, sent, "no update lost or double-counted");
    assert!(agg.balanced(), "outcomes must sum to updates: {agg:?}");
    for (i, s) in cluster.shard_stats().iter().enumerate() {
        assert!(s.balanced(), "shard {i} counters must sum: {s:?}");
        assert!(s.updates > 0, "hash routing must reach shard {i}");
    }
    // Schools formed and shed under real lock contention. The exact ratio
    // depends on how far the workers' clustering ticks lag their updates
    // (on a loaded machine unlucky interleavings reach ~0.18), so assert
    // only that schooling genuinely happened — the fixed bug was a ratio
    // drifting to ~0, not a few points of wobble.
    assert!(
        agg.shed_ratio() > 0.1,
        "road traffic must shed through the tier, got {:.2}",
        agg.shed_ratio()
    );
    // The shared estimate tracked every distinct registration. Exactness
    // is not guaranteed under concurrency: a lazy refresh can read the
    // store's row count while a registration on another shard sits between
    // its row write and its counter bump, double-counting it — but the
    // estimate never undercounts and stays within a whisker of the truth
    // (the fixed bug was starting at 0 and drifting arbitrarily low).
    let est = cluster.object_estimate();
    assert!(
        est >= agg.registered && est <= agg.registered + WORKERS as u64,
        "estimate {est} vs {} registered",
        agg.registered
    );

    // Any shard serves reads over the whole map, with no duplicates.
    let (nn, _) = cluster
        .nn(Point::new(500.0, 500.0), 200, Timestamp::from_secs(90))
        .unwrap();
    assert!(!nn.is_empty());
    let mut ids: Vec<u64> = nn.iter().map(|n| n.oid.0).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), nn.len(), "NN must not see torn spatial entries");
}

#[test]
fn each_clustering_cell_is_clustered_by_exactly_one_shard() {
    let store = Bigtable::new();
    let cfg = tier_config();
    let cluster = MoistCluster::builder(&store, cfg)
        .shards(SHARDS)
        .build()
        .unwrap();
    let cells = cells_at_level(cfg.clustering_level);

    // Static partition: every cell owned by exactly one shard's scheduler,
    // and that shard is the one updates for the cell route to.
    common::sole_owner_positions(&cluster);

    // Dynamic exclusivity: after concurrent driving, sweep one interval
    // past the end — every cell fires exactly once, on its owner, so the
    // fleet-wide run count rises by exactly the cell count.
    drive_concurrently(&cluster, 90.0);
    let runs_before = cluster.stats().cluster_runs;
    let sweep_at = Timestamp::from_secs_f64(90.0 + cfg.cluster_interval_secs + 1.0);
    for shard in 0..SHARDS {
        cluster.run_due_clustering_shard(shard, sweep_at).unwrap();
    }
    assert_eq!(
        cluster.stats().cluster_runs - runs_before,
        cells,
        "one post-run sweep must cluster each cell exactly once"
    );
}

/// `(owner position, owner id, pending deadline)` of every clustering
/// cell, asserting exactly one live shard owns each cell.
fn cell_ownership(cluster: &MoistCluster) -> Vec<(usize, u64, u64)> {
    let ids = cluster.shard_ids();
    common::sole_owner_positions(cluster)
        .into_iter()
        .enumerate()
        .map(|(index, pos)| {
            let due = cluster
                .with_shard(pos, |s| s.scheduler().deadline_of(index as u64))
                .unwrap()
                .expect("owner holds a pending deadline");
            (pos, ids[pos], due)
        })
        .collect()
}

#[test]
fn join_reseeds_migrated_cells_at_their_old_deadline_phase() {
    let store = Bigtable::new();
    let cfg = tier_config();
    let cluster = MoistCluster::builder(&store, cfg)
        .shards(SHARDS)
        .build()
        .unwrap();
    // Drive real concurrent traffic first so every cell's deadline has
    // re-armed to a mid-run phase (not the pristine first stagger).
    drive_concurrently(&cluster, 90.0);
    let before = cell_ownership(&cluster);

    let joiner = cluster.add_shard().unwrap();
    assert_eq!(cluster.num_shards(), SHARDS + 1);
    let after = cell_ownership(&cluster);

    // Every migrated cell landed on the joiner with its *exact* old
    // deadline (re-seeded from the missed-deadline phase, not from zero):
    // no thundering re-cluster of the stolen cells, no skipped round.
    let mut migrated = 0;
    for (index, (&(_, id_before, due_before), &(_, id_after, due_after))) in
        before.iter().zip(after.iter()).enumerate()
    {
        assert_eq!(
            due_after, due_before,
            "cell {index} deadline must survive the join"
        );
        if id_after != id_before {
            migrated += 1;
            assert_eq!(id_after, joiner, "cell {index} moved to a non-joiner");
        }
    }
    assert!(migrated > 0, "the joiner must adopt some cells");

    // One sweep past every deadline still fires each cell exactly once
    // across the grown fleet — no duplicate clustering, no missed round.
    let cells = cells_at_level(cfg.clustering_level);
    let runs_before = cluster.stats().cluster_runs;
    let sweep_at = Timestamp::from_secs_f64(90.0 + cfg.cluster_interval_secs + 1.0);
    for shard in 0..cluster.num_shards() {
        cluster.run_due_clustering_shard(shard, sweep_at).unwrap();
    }
    assert_eq!(
        cluster.stats().cluster_runs - runs_before,
        cells,
        "post-join sweep must cluster each cell exactly once"
    );
}
