//! Kill-style durability test for the cluster tier: 8 threads push
//! acknowledged updates through a durable [`MoistCluster`], the whole
//! tier (and its store) is dropped with no graceful shutdown, and
//! [`MoistCluster::recover`] must rebuild a tier that still answers with
//! every acknowledged update — twice, because replay is idempotent.

use moist::bigtable::{Bigtable, Durability, StoreConfig, Timestamp};
use moist::core::{MoistCluster, MoistConfig, ObjectId, UpdateMessage};
use moist::spatial::{Point, Velocity};
use std::path::PathBuf;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Mutex;

const SHARDS: usize = 4;
const WORKERS: usize = 8;

fn test_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("moist_durable_{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn durable_config(dir: &std::path::Path) -> StoreConfig {
    StoreConfig {
        durability: Durability::Wal {
            dir: dir.to_path_buf(),
            fsync_every: 32,
        },
        ..StoreConfig::default()
    }
}

fn tier_config() -> MoistConfig {
    MoistConfig {
        epsilon: 50.0,
        clustering_level: 3,
        cluster_interval_secs: 10.0,
        ..MoistConfig::default()
    }
}

fn msg(oid: u64, x: f64, y: f64, secs: f64) -> UpdateMessage {
    UpdateMessage {
        oid: ObjectId(oid),
        loc: Point::new(x, y),
        vel: Velocity::new(0.8, 0.3),
        ts: Timestamp::from_secs_f64(secs),
    }
}

#[test]
fn acknowledged_cluster_updates_survive_a_crash() {
    let dir = test_dir("kill");
    let store = Bigtable::with_config(durable_config(&dir));
    let cluster = MoistCluster::new(&store, tier_config(), SHARDS).unwrap();

    // 8 threads race synchronous updates; each records (oid, ts, loc)
    // only after `update` returned Ok — the durable acknowledgement.
    // A shared budget stops everyone at an arbitrary mid-stream point.
    let budget = AtomicI64::new(2_400);
    let acked: Mutex<Vec<(u64, Timestamp, Point)>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for worker in 0..WORKERS as u64 {
            let cluster = &cluster;
            let budget = &budget;
            let acked = &acked;
            scope.spawn(move || {
                let mut mine = Vec::new();
                let mut i = 0u64;
                while budget.fetch_sub(1, Ordering::Relaxed) > 0 {
                    let oid = worker * 10_000 + (i % 97);
                    let x = 20.0 + ((oid * 131 + i * 17) % 960) as f64;
                    let y = 20.0 + ((oid * 61 + i * 29) % 960) as f64;
                    let t = 1.0 + i as f64 / 50.0 + worker as f64 / 1000.0;
                    let m = msg(oid, x, y, t);
                    cluster.update(&m).unwrap();
                    mine.push((oid, m.ts, m.loc));
                    i += 1;
                }
                acked.lock().unwrap().append(&mut mine);
            });
        }
    });
    let acked = acked.into_inner().unwrap();
    assert!(acked.len() > 1_500, "workload too small: {}", acked.len());

    // Last write per object wins: dedupe to the newest acknowledged
    // timestamp per oid (the location table may keep fewer versions).
    let mut latest: std::collections::HashMap<u64, (Timestamp, Point)> =
        std::collections::HashMap::new();
    for (oid, ts, loc) in &acked {
        let e = latest.entry(*oid).or_insert((*ts, *loc));
        if *ts >= e.0 {
            *e = (*ts, *loc);
        }
    }

    drop(cluster);
    drop(store); // crash: no checkpoint, no drain, nothing graceful

    let (_store, recovered, report) =
        MoistCluster::recover(durable_config(&dir), tier_config(), SHARDS).unwrap();
    assert!(report.tables >= 3, "all MOIST tables recover: {report:?}");
    assert!(report.replayed_records > 0);
    // Every object's last acknowledged position is served back.
    for (oid, (ts, loc)) in &latest {
        let got = recovered
            .position(ObjectId(*oid), *ts)
            .unwrap()
            .unwrap_or_else(|| panic!("acknowledged object {oid} lost"));
        assert!(
            (got.x - loc.x).abs() < 1e-6 && (got.y - loc.y).abs() < 1e-6,
            "object {oid}: recovered {got:?}, acknowledged {loc:?}"
        );
    }

    // Idempotent re-recovery: same files, same answers.
    drop(recovered);
    let (_store2, again, report2) =
        MoistCluster::recover(durable_config(&dir), tier_config(), SHARDS).unwrap();
    assert_eq!(report2.replayed_records, report.replayed_records);
    for (oid, (ts, loc)) in &latest {
        let got = again.position(ObjectId(*oid), *ts).unwrap().unwrap();
        assert!((got.x - loc.x).abs() < 1e-6 && (got.y - loc.y).abs() < 1e-6);
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn builder_recover_preserves_replica_ingest_and_controller_config() {
    use moist::core::{BackpressurePolicy, ControllerConfig, IngestConfig};

    let dir = test_dir("knobs");
    let icfg = IngestConfig {
        batch_size: 16,
        queue_cap: 256,
        flush_deadline_secs: 0.5,
        policy: BackpressurePolicy::Shed,
    };
    let ccfg = ControllerConfig {
        min_shards: 2,
        max_shards: 6,
        ..ControllerConfig::default()
    };
    let store = Bigtable::with_config(durable_config(&dir));
    let cluster = MoistCluster::builder(&store, tier_config())
        .shards(SHARDS)
        .replicas(2)
        .ingest(icfg)
        .controller(ccfg)
        .build()
        .unwrap();
    for i in 0..40u64 {
        cluster
            .update(&msg(
                i,
                20.0 + (i * 131 % 960) as f64,
                20.0 + (i * 61 % 960) as f64,
                1.0,
            ))
            .unwrap();
    }
    let want_ingest = cluster.ingest_config();
    drop(cluster);
    drop(store); // crash

    // The builder's recovery path carries every knob to the rebuilt
    // fleet — this is the fix for the old `MoistCluster::recover`, which
    // silently came back with default replica/ingest settings.
    let (_store, recovered, report) = MoistCluster::builder(&Bigtable::new(), tier_config())
        .shards(SHARDS)
        .replicas(2)
        .ingest(icfg)
        .controller(ccfg)
        .recover(durable_config(&dir))
        .unwrap();
    assert!(report.replayed_records > 0);
    assert_eq!(recovered.num_shards(), SHARDS);
    assert_eq!(recovered.replicas(), 2, "replication factor must survive");
    assert_eq!(
        recovered.ingest_config(),
        want_ingest,
        "ingest knobs must survive"
    );
    assert_eq!(
        recovered.controller_config(),
        Some(ccfg.normalized()),
        "controller must come back armed"
    );
    // And the data is still there, replica-routed.
    for i in 0..40u64 {
        assert!(recovered
            .position(ObjectId(i), Timestamp::from_secs(2))
            .unwrap()
            .is_some());
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn checkpoint_drains_ingest_before_snapshotting() {
    let dir = test_dir("ckpt");
    let store = Bigtable::with_config(durable_config(&dir));
    let cluster = MoistCluster::new(&store, tier_config(), 2).unwrap();
    // Buffer updates through the async path; none are applied yet.
    for i in 0..10u64 {
        cluster
            .submit(&msg(i, 100.0 + i as f64, 200.0, 1.0 + i as f64 / 10.0))
            .unwrap();
    }
    let (drained, snap_bytes) = cluster.checkpoint().unwrap();
    assert_eq!(drained, 10, "checkpoint must apply the buffered updates");
    assert!(snap_bytes > 0);

    // Crash right after: recovery restores from snapshots alone (the
    // logs were truncated by the checkpoint, so nothing replays).
    drop(cluster);
    drop(store);
    let (_store, recovered, report) =
        MoistCluster::recover(durable_config(&dir), tier_config(), 2).unwrap();
    assert_eq!(report.replayed_records, 0, "{report:?}");
    for i in 0..10u64 {
        let got = recovered
            .position(ObjectId(i), Timestamp::from_secs(2))
            .unwrap()
            .unwrap_or_else(|| panic!("checkpointed object {i} lost"));
        assert!(
            (got.x - (100.0 + i as f64)).abs() < 1.0,
            "object {i}: {got:?}"
        );
    }
    std::fs::remove_dir_all(&dir).unwrap();
}
