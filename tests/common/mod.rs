//! Helpers shared by the cluster-tier integration tests.

use moist::core::MoistCluster;
use moist::spatial::cells_at_level;

/// The owner position of every clustering cell, asserting along the way
/// that exactly one live shard owns each cell — the tier's partition
/// invariant, checked after joins, kills and churn alike.
pub fn sole_owner_positions(cluster: &MoistCluster) -> Vec<usize> {
    let cells = cells_at_level(cluster.config().clustering_level);
    (0..cells)
        .map(|index| {
            let owners: Vec<usize> = (0..cluster.num_shards())
                .filter(|&i| {
                    cluster
                        .with_shard(i, |s| s.scheduler().owns(index))
                        .unwrap()
                })
                .collect();
            assert_eq!(owners.len(), 1, "cell {index} owners: {owners:?}");
            owners[0]
        })
        .collect()
}
