//! Helpers shared by the cluster-tier integration tests.

use moist::core::{MoistCluster, SplitTable};
use moist::spatial::cells_at_level;

/// The owner position of every clustering cell, asserting along the way
/// that exactly one live shard owns each cell — the tier's partition
/// invariant, checked after joins, kills and churn alike.
pub fn sole_owner_positions(cluster: &MoistCluster) -> Vec<usize> {
    let cells = cells_at_level(cluster.config().clustering_level);
    (0..cells)
        .map(|index| {
            let owners: Vec<usize> = (0..cluster.num_shards())
                .filter(|&i| {
                    cluster
                        .with_shard(i, |s| s.scheduler().owns(index))
                        .unwrap()
                })
                .collect();
            assert_eq!(owners.len(), 1, "cell {index} owners: {owners:?}");
            owners[0]
        })
        .collect()
}

/// Asserts the live shards' schedulers own every *routing key* — unsplit
/// clustering cells plus the four children of every split cell — exactly
/// once. The split-aware partition invariant, checked after rebalances,
/// kills and churn alike (load-aware placement must never orphan or
/// double-own a key, whatever weights and splits it chose).
#[allow(dead_code)] // not every integration test exercises splits
pub fn assert_routing_key_partition(cluster: &MoistCluster) {
    let cfg = *cluster.config();
    let split: std::collections::HashSet<u64> = cluster.split_cells().into_iter().collect();
    let mut keys = Vec::new();
    for cell in 0..cells_at_level(cfg.clustering_level) {
        if split.contains(&cell) {
            keys.extend(SplitTable::child_keys(cell));
        } else {
            keys.push(cell);
        }
    }
    for key in keys {
        let owners: Vec<usize> = (0..cluster.num_shards())
            .filter(|&i| cluster.with_shard(i, |s| s.scheduler().owns(key)).unwrap())
            .collect();
        assert_eq!(owners.len(), 1, "routing key {key:#x} owners: {owners:?}");
    }
}
