//! Failure injection for the cluster tier: a shard is killed mid-run while
//! 8 [`ClientPool`] threads keep hammering the tier with updates and
//! queries.
//!
//! The elasticity contract under failure:
//!
//! * **absorption** — after the kill, the survivors own every clustering
//!   cell (exactly one owner per cell, nothing orphaned);
//! * **zero lost updates** — every update a client sent is accounted for
//!   by exactly one outcome, including updates the dying shard absorbed
//!   while live or in flight during the epoch bump;
//! * **continuous availability** — NN and region queries keep answering
//!   throughout the kill (workers query on every tick and fail the test on
//!   any error);
//! * **graceful degradation** — a worker racing the membership change gets
//!   a typed [`MoistError::NoSuchShard`], never an index panic.

use moist::bigtable::{Bigtable, Timestamp};
use moist::core::{
    IngestConfig, MoistCluster, MoistConfig, MoistError, ObjectId, SubmitOutcome, UpdateMessage,
};
use moist::spatial::{cells_at_level, Point, Rect};
use moist::workload::{ClientPool, RoadMap, RoadMapConfig, RoadNetSim, SimConfig};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

mod common;

const SHARDS: usize = 4;
const WORKERS: usize = 8;
const KILL_AT_SECS: f64 = 45.0;
const END_SECS: f64 = 90.0;

fn tier_config() -> MoistConfig {
    MoistConfig {
        epsilon: 50.0,
        delta_m: 2.0,
        clustering_level: 3, // 64 cells across the shards
        cluster_interval_secs: 10.0,
        ..MoistConfig::default()
    }
}

#[test]
fn mid_run_shard_kill_is_absorbed_without_losing_updates_or_queries() {
    let store = Bigtable::new();
    let cfg = tier_config();
    let cluster = MoistCluster::builder(&store, cfg)
        .shards(SHARDS)
        .build()
        .unwrap();
    let victim = *cluster.shard_ids().last().unwrap();

    let sims: Vec<Mutex<RoadNetSim>> = (0..WORKERS)
        .map(|i| {
            Mutex::new(RoadNetSim::new(
                RoadMap::new(RoadMapConfig::default()),
                SimConfig {
                    agents: 100,
                    seed: 7_000 + i as u64,
                    ..SimConfig::default()
                },
            ))
        })
        .collect();

    let killed = AtomicBool::new(false);
    let queries_before_kill = AtomicU64::new(0);
    let queries_after_kill = AtomicU64::new(0);

    // 8 workers drive updates, clustering ticks and queries; worker 0
    // yanks the victim shard mid-run while the other 7 keep going.
    let sent: Vec<u64> = ClientPool::run(WORKERS, |i| {
        let mut sim = sims[i].lock().expect("sim lock");
        let oid_base = i as u64 * 1_000_000;
        let mut count = 0u64;
        let mut first_oid_seen = None;
        let mut t = 0.0;
        while t < END_SECS {
            t = (t + 5.0).min(END_SECS);
            for u in sim.advance_until(t) {
                let oid = oid_base + u.oid;
                first_oid_seen.get_or_insert(oid);
                cluster
                    .update(&UpdateMessage {
                        oid: ObjectId(oid),
                        loc: u.loc,
                        vel: u.vel,
                        ts: Timestamp::from_secs_f64(u.at_secs),
                    })
                    .expect("updates must keep landing through the kill");
                count += 1;
            }

            if i == 0
                && t >= KILL_AT_SECS
                && killed
                    .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
                    .is_ok()
            {
                cluster
                    .remove_shard(victim)
                    .expect("mid-run shard kill must succeed");
            }

            // Clustering ticks for this worker's stride of shards. The
            // membership shrinks mid-run, so a stale position is expected
            // occasionally — it must surface as the typed NoSuchShard
            // error, never abort the process.
            let mut shard = i;
            while shard < SHARDS {
                match cluster.run_due_clustering_shard(shard, Timestamp::from_secs_f64(t)) {
                    Ok(_) => {}
                    Err(MoistError::NoSuchShard(_)) => {}
                    Err(e) => panic!("clustering tick failed: {e}"),
                }
                shard += WORKERS.min(SHARDS);
            }

            // Availability probes on every tick: NN, region and an
            // object-keyed read must answer before, during and after the
            // kill.
            let at = Timestamp::from_secs_f64(t);
            let probe = Point::new(100.0 + (i as f64) * 100.0, 500.0);
            let (_, _) = cluster
                .nn(probe, 3, at)
                .expect("NN must answer through the kill");
            let rect = Rect::new(250.0, 250.0, 750.0, 750.0);
            let (_, _) = cluster
                .region(&rect, at, 0.0)
                .expect("region must answer through the kill");
            if let Some(oid) = first_oid_seen {
                cluster
                    .position(ObjectId(oid), at)
                    .expect("position must answer through the kill")
                    .expect("a registered object must stay visible");
            }
            if killed.load(Ordering::SeqCst) {
                queries_after_kill.fetch_add(2, Ordering::Relaxed);
            } else {
                queries_before_kill.fetch_add(2, Ordering::Relaxed);
            }
        }
        count
    });
    let sent: u64 = sent.iter().sum();

    // The kill really happened mid-run, with queries served on both sides.
    assert!(
        killed.load(Ordering::SeqCst),
        "worker 0 must kill the shard"
    );
    assert_eq!(cluster.num_shards(), SHARDS - 1);
    assert!(!cluster.shard_ids().contains(&victim));
    assert!(queries_before_kill.load(Ordering::Relaxed) > 0);
    assert!(queries_after_kill.load(Ordering::Relaxed) > 0);

    // Absorption: the survivors own every clustering cell exactly once.
    let cells = cells_at_level(cfg.clustering_level);
    common::sole_owner_positions(&cluster);

    // Zero lost updates: every sent update is accounted for by exactly one
    // outcome on exactly one shard — including the dead shard's share,
    // which stays in the aggregate.
    let agg = cluster.stats();
    assert_eq!(agg.updates, sent, "no update lost or double-counted");
    assert!(agg.balanced(), "outcomes must sum to updates: {agg:?}");
    let live: u64 = cluster.shard_stats().iter().map(|s| s.updates).sum();
    assert!(
        live < sent,
        "the dead shard's absorbed updates must live outside the survivors"
    );

    // The tier still clusters and still answers over the whole map.
    let sweep_at = Timestamp::from_secs_f64(END_SECS + cfg.cluster_interval_secs + 1.0);
    let runs_before = cluster.stats().cluster_runs;
    for shard in 0..cluster.num_shards() {
        cluster.run_due_clustering_shard(shard, sweep_at).unwrap();
    }
    assert_eq!(
        cluster.stats().cluster_runs - runs_before,
        cells,
        "post-kill sweep must cluster each cell exactly once"
    );
    let (nn, _) = cluster.nn(Point::new(500.0, 500.0), 100, sweep_at).unwrap();
    assert!(!nn.is_empty(), "queries must survive the failover");
}

/// Load-aware placement under failure: a hot-spot workload drives
/// periodic [`MoistCluster::rebalance`] calls (weight shifts + hot-cell
/// splits racing the update stream), and mid-run the shard owning the hot
/// spot is killed while a rebalance storm is in flight. The contract is
/// the same as the plain kill: zero lost updates, every routing key owned
/// exactly once, queries answering on every tick.
#[test]
fn hot_shard_killed_mid_rebalance_loses_nothing_and_keeps_the_partition() {
    let store = Bigtable::new();
    let cfg = tier_config();
    let cluster = MoistCluster::builder(&store, cfg)
        .shards(SHARDS)
        .build()
        .unwrap();
    let hot = Point::new(437.0, 437.0);

    let killed = AtomicBool::new(false);
    let rebalances = AtomicU64::new(0);

    let sent: Vec<u64> = ClientPool::run(WORKERS, |i| {
        let oid_base = i as u64 * 1_000_000;
        let mut count = 0u64;
        let mut t = 0.0;
        let mut step = 0u64;
        while t < END_SECS {
            t = (t + 5.0).min(END_SECS);
            // 80% of this worker's updates hammer the hot spot, the rest
            // scatter — the skew that makes rebalance split and reweight.
            for j in 0..40u64 {
                step += 1;
                let oid = oid_base + step % 500;
                let (x, y) = if j % 5 != 0 {
                    (hot.x + (j % 7) as f64, hot.y + (j % 5) as f64)
                } else {
                    (
                        20.0 + ((step * 131) % 960) as f64,
                        20.0 + ((step * 197) % 960) as f64,
                    )
                };
                cluster
                    .update(&UpdateMessage {
                        oid: ObjectId(oid),
                        loc: Point::new(x, y),
                        vel: moist::spatial::Velocity::ZERO,
                        ts: Timestamp::from_secs_f64(t - 5.0 + 5.0 * j as f64 / 40.0),
                    })
                    .expect("updates must keep landing through rebalances and the kill");
                count += 1;
            }

            // Worker 1 rebalances on every tick — epoch bumps, weight
            // shifts and splits race everyone else's updates and queries.
            if i == 1 {
                let report = cluster.rebalance(Timestamp::from_secs_f64(t)).unwrap();
                rebalances.fetch_add(u64::from(report.migrated_keys > 0), Ordering::Relaxed);
            }

            // Worker 0 kills whichever shard currently owns the hot spot,
            // mid-run, while rebalances are in flight.
            if i == 0
                && t >= KILL_AT_SECS
                && killed
                    .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
                    .is_ok()
            {
                let victim_pos = cluster.shard_for_point(&hot);
                let victim = cluster.shard_ids()[victim_pos];
                cluster
                    .remove_shard(victim)
                    .expect("killing the hot shard must succeed");
            }

            let mut shard = i;
            while shard < SHARDS {
                match cluster.run_due_clustering_shard(shard, Timestamp::from_secs_f64(t)) {
                    Ok(_) | Err(MoistError::NoSuchShard(_)) => {}
                    Err(e) => panic!("clustering tick failed: {e}"),
                }
                shard += WORKERS.min(SHARDS);
            }

            // Availability probes on every tick, centred on the hot spot
            // (the cells most likely to be mid-migration).
            let at = Timestamp::from_secs_f64(t);
            cluster
                .nn(hot, 3, at)
                .expect("NN must answer through the rebalance churn");
            cluster
                .region(&Rect::new(350.0, 350.0, 550.0, 550.0), at, 0.0)
                .expect("region must answer through the rebalance churn");
        }
        count
    });
    let sent: u64 = sent.iter().sum();

    assert!(
        killed.load(Ordering::SeqCst),
        "the hot shard must be killed"
    );
    assert_eq!(cluster.num_shards(), SHARDS - 1);
    assert!(
        rebalances.load(Ordering::Relaxed) > 0,
        "the skewed stream must trigger real rebalance migrations"
    );

    // Every routing key — split children included — owned exactly once.
    common::assert_routing_key_partition(&cluster);

    // Zero lost updates, dead shard's share included.
    let agg = cluster.stats();
    assert_eq!(agg.updates, sent, "no update lost or double-counted");
    assert!(agg.balanced(), "outcomes must sum to updates: {agg:?}");

    // The split/migration bookkeeping is visible from the tier, and the
    // whole map still answers.
    let cstats = cluster.cluster_stats(Timestamp::from_secs_f64(END_SECS));
    assert!(
        cstats.split_migrations > 0,
        "rebalance migrations must be counted: {cstats:?}"
    );
    assert!(cstats.epoch_migrations > 0, "the kill migrated cells");
    let (nn, _) = cluster
        .nn(
            Point::new(500.0, 500.0),
            50,
            Timestamp::from_secs_f64(END_SECS),
        )
        .unwrap();
    assert!(!nn.is_empty());
}

/// The elasticity controller under failure: the fig16-style 80/5 skew
/// stream drives a *controller-managed* fleet (every worker ticks
/// [`MoistCluster::controller_tick`] like a client loop would), worker 1
/// keeps rebalance storms in flight, and worker 0 kills the hot-spot
/// owner mid-run. On top of the plain kill contract (zero lost
/// acknowledged updates, exact routing-key partition, queries answering
/// on every tick), the controller must stay *disciplined*: the fleet
/// never leaves `[min_shards, max_shards]`, the surge provokes real
/// scale-ups, and scaling decisions from different evaluation windows
/// never land closer than the cool-down — no add→remove→add flapping
/// while the kill and the rebalance churn are perturbing its signals.
#[test]
fn controller_managed_fleet_absorbs_a_mid_rebalance_kill_without_flapping() {
    use moist::core::{ControllerAction, ControllerConfig};

    let store = Bigtable::new();
    let cfg = tier_config();
    let ccfg = ControllerConfig {
        min_shards: 2,
        max_shards: 8,
        window_secs: 5.0,
        cooldown_secs: 20.0,
        rebalance_every_secs: 10.0,
        // Virtual busy-µs per virtual second: far below what the skewed
        // stream generates, so the controller provably wants capacity.
        target_shard_busy_us: 50.0,
        ..ControllerConfig::default()
    };
    let cluster = MoistCluster::builder(&store, cfg)
        .shards(SHARDS)
        .controller(ccfg)
        .build()
        .unwrap();
    let hot = Point::new(437.0, 437.0);

    let killed = AtomicBool::new(false);

    let sent: Vec<u64> = ClientPool::run(WORKERS, |i| {
        let oid_base = i as u64 * 1_000_000;
        let mut count = 0u64;
        let mut t = 0.0;
        let mut step = 0u64;
        while t < END_SECS {
            t = (t + 5.0).min(END_SECS);
            // 80/5 skew: most of this worker's updates hammer the hot
            // spot, the rest scatter over the map.
            for j in 0..40u64 {
                step += 1;
                let oid = oid_base + step % 500;
                let (x, y) = if j % 5 != 0 {
                    (hot.x + (j % 7) as f64, hot.y + (j % 5) as f64)
                } else {
                    (
                        20.0 + ((step * 131) % 960) as f64,
                        20.0 + ((step * 197) % 960) as f64,
                    )
                };
                cluster
                    .update(&UpdateMessage {
                        oid: ObjectId(oid),
                        loc: Point::new(x, y),
                        vel: moist::spatial::Velocity::ZERO,
                        ts: Timestamp::from_secs_f64(t - 5.0 + 5.0 * j as f64 / 40.0),
                    })
                    .expect("updates must keep landing through the managed churn");
                count += 1;
            }

            // Every worker ticks the controller — concurrent tickers
            // must not serialize or double-evaluate a window.
            cluster
                .controller_tick(Timestamp::from_secs_f64(t))
                .expect("controller ticks must succeed through the kill");

            // Worker 1 keeps manual rebalance storms in flight on top of
            // the controller's own cadence.
            if i == 1 {
                cluster.rebalance(Timestamp::from_secs_f64(t)).unwrap();
            }

            // Worker 0 kills whichever shard currently owns the hot spot,
            // mid-run, while the controller is scaling and rebalancing.
            if i == 0
                && t >= KILL_AT_SECS
                && killed
                    .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
                    .is_ok()
            {
                let victim_pos = cluster.shard_for_point(&hot);
                let victim = cluster.shard_ids()[victim_pos];
                match cluster.remove_shard(victim) {
                    // The controller may have reshaped the fleet under
                    // us; a vanished victim is the benign race.
                    Ok(()) | Err(MoistError::NoSuchShard(_)) => {}
                    Err(e) => panic!("killing the hot shard failed: {e}"),
                }
            }

            // Clustering ticks over the *live* (controller-sized) fleet.
            let live = cluster.num_shards();
            let mut shard = i;
            while shard < live {
                match cluster.run_due_clustering_shard(shard, Timestamp::from_secs_f64(t)) {
                    Ok(_) | Err(MoistError::NoSuchShard(_)) => {}
                    Err(e) => panic!("clustering tick failed: {e}"),
                }
                shard += WORKERS;
            }

            // Availability probes on every tick, centred on the hot spot.
            let at = Timestamp::from_secs_f64(t);
            cluster
                .nn(hot, 3, at)
                .expect("NN must answer through the managed churn");
            cluster
                .region(&Rect::new(350.0, 350.0, 550.0, 550.0), at, 0.0)
                .expect("region must answer through the managed churn");
        }
        count
    });
    let sent: u64 = sent.iter().sum();

    assert!(
        killed.load(Ordering::SeqCst),
        "the hot shard must be killed"
    );

    // The fleet stayed bounded and the surge provoked real scale-ups.
    let live = cluster.num_shards();
    assert!(
        (ccfg.min_shards..=ccfg.max_shards).contains(&live),
        "fleet left its bounds: {live}"
    );
    let events = cluster.controller_events();
    let adds = events
        .iter()
        .filter(|e| matches!(e.action, ControllerAction::AddShard { .. }))
        .count();
    assert!(adds >= 1, "the surge must provoke scale-ups: {events:?}");

    // Hysteresis discipline: scaling decisions from different evaluation
    // windows are at least a cool-down apart (a multi-shard step lands as
    // one same-stamp batch). This is the no-flapping guarantee — an
    // add→remove→add inside one cool-down is impossible.
    let scale_times: Vec<f64> = events
        .iter()
        .filter(|e| e.action.is_scaling())
        .map(|e| e.at_secs)
        .collect();
    for pair in scale_times.windows(2) {
        let gap = pair[1] - pair[0];
        assert!(
            gap == 0.0 || gap >= ccfg.cooldown_secs - 1e-9,
            "scale events {gap}s apart violate the {}s cool-down: {events:?}",
            ccfg.cooldown_secs
        );
    }

    // Zero lost acknowledged updates, dead shard's share included.
    let agg = cluster.stats();
    assert_eq!(agg.updates, sent, "no update lost or double-counted");
    assert!(agg.balanced(), "outcomes must sum to updates: {agg:?}");

    // Every routing key — split children included — owned exactly once.
    common::assert_routing_key_partition(&cluster);

    // The whole map still answers after the churn settles.
    let (nn, _) = cluster
        .nn(
            Point::new(500.0, 500.0),
            50,
            Timestamp::from_secs_f64(END_SECS),
        )
        .unwrap();
    assert!(!nn.is_empty());
}

/// Replicated ownership under failure: at `replicas == 2` every routing
/// key has a rank-1 follower already mirroring it through the shared
/// store, so a shard kill is a *promotion*, not a recovery. The contract
/// on top of the plain kill: zero acked-update loss, exactly one primary
/// per key at every step, queries answering on every tick through the
/// kill, and the tier counting real promotions and follower-served reads.
#[test]
fn replicated_tier_promotes_followers_through_a_shard_kill_without_downtime() {
    let store = Bigtable::new();
    let cfg = tier_config();
    let cluster = MoistCluster::builder(&store, cfg)
        .shards(SHARDS)
        .replicas(2)
        .build()
        .unwrap();
    let victim = *cluster.shard_ids().last().unwrap();

    let sims: Vec<Mutex<RoadNetSim>> = (0..WORKERS)
        .map(|i| {
            Mutex::new(RoadNetSim::new(
                RoadMap::new(RoadMapConfig::default()),
                SimConfig {
                    agents: 100,
                    seed: 11_000 + i as u64,
                    ..SimConfig::default()
                },
            ))
        })
        .collect();

    let killed = AtomicBool::new(false);
    let queries_before_kill = AtomicU64::new(0);
    let queries_after_kill = AtomicU64::new(0);

    let sent: Vec<u64> = ClientPool::run(WORKERS, |i| {
        let mut sim = sims[i].lock().expect("sim lock");
        let oid_base = i as u64 * 1_000_000;
        let mut count = 0u64;
        let mut t = 0.0;
        while t < END_SECS {
            t = (t + 5.0).min(END_SECS);
            for u in sim.advance_until(t) {
                cluster
                    .update(&UpdateMessage {
                        oid: ObjectId(oid_base + u.oid),
                        loc: u.loc,
                        vel: u.vel,
                        ts: Timestamp::from_secs_f64(u.at_secs),
                    })
                    .expect("updates must keep landing through the promotion");
                count += 1;
            }

            if i == 0
                && t >= KILL_AT_SECS
                && killed
                    .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
                    .is_ok()
            {
                cluster
                    .remove_shard(victim)
                    .expect("killing the replicated shard must succeed");
            }

            let mut shard = i;
            while shard < SHARDS {
                match cluster.run_due_clustering_shard(shard, Timestamp::from_secs_f64(t)) {
                    Ok(_) | Err(MoistError::NoSuchShard(_)) => {}
                    Err(e) => panic!("clustering tick failed: {e}"),
                }
                shard += WORKERS.min(SHARDS);
            }

            // Zero-downtime probes: every worker queries on every tick;
            // any error — before, during or after the kill — fails the
            // test. At k=2 the reads may land on either replica of the
            // probed cell.
            let at = Timestamp::from_secs_f64(t);
            let probe = Point::new(100.0 + (i as f64) * 100.0, 500.0);
            cluster
                .nn(probe, 3, at)
                .expect("NN must answer on every tick through the promotion");
            cluster
                .region(&Rect::new(250.0, 250.0, 750.0, 750.0), at, 0.0)
                .expect("region must answer on every tick through the promotion");
            if killed.load(Ordering::SeqCst) {
                queries_after_kill.fetch_add(2, Ordering::Relaxed);
            } else {
                queries_before_kill.fetch_add(2, Ordering::Relaxed);
            }
        }
        count
    });
    let sent: u64 = sent.iter().sum();

    assert!(
        killed.load(Ordering::SeqCst),
        "worker 0 must kill the shard"
    );
    assert_eq!(cluster.num_shards(), SHARDS - 1);
    assert!(queries_before_kill.load(Ordering::Relaxed) > 0);
    assert!(
        queries_after_kill.load(Ordering::Relaxed) > 0,
        "ticks must keep querying after the kill"
    );

    // Exactly one primary per key: the scheduler partition is still exact
    // after the promotion — follower ranks never entered it.
    common::sole_owner_positions(&cluster);

    // Zero acked-update loss through the promotion.
    let agg = cluster.stats();
    assert_eq!(agg.updates, sent, "no acked update lost or double-counted");
    assert!(agg.balanced(), "outcomes must sum to updates: {agg:?}");

    // The tier counted the promotions: every key the victim led now has
    // its old rank-1 follower as primary, and the promotion set is a
    // subset of the kill's migrations.
    let cstats = cluster.cluster_stats(Timestamp::from_secs_f64(END_SECS));
    assert_eq!(cstats.replicas, 2);
    assert!(
        cstats.promotions > 0,
        "the kill must promote followers: {cstats:?}"
    );
    assert!(
        cstats.promotions <= cstats.epoch_migrations,
        "promotions are a subset of epoch migrations: {cstats:?}"
    );
    // Replica accounting holds on the survivors: every key has one
    // primary and one follower, and followers really served reads.
    let keys: usize = cstats.shards.iter().map(|s| s.primary_keys).sum();
    let follows: usize = cstats.shards.iter().map(|s| s.follower_keys).sum();
    assert_eq!(follows, keys, "k=2: every key has exactly one follower");
    assert!(
        cstats.replica_reads > 0,
        "followers must serve some reads under load: {cstats:?}"
    );

    // Instant promotion, not recovery: the adopted cells kept live
    // deadlines, so one sweep past the interval fires every cell exactly
    // once on its (possibly promoted) primary.
    let cells = cells_at_level(cfg.clustering_level);
    let sweep_at = Timestamp::from_secs_f64(END_SECS + cfg.cluster_interval_secs + 1.0);
    let runs_before = cluster.stats().cluster_runs;
    for shard in 0..cluster.num_shards() {
        cluster.run_due_clustering_shard(shard, sweep_at).unwrap();
    }
    assert_eq!(
        cluster.stats().cluster_runs - runs_before,
        cells,
        "post-promotion sweep must cluster each cell exactly once"
    );
    let (nn, _) = cluster.nn(Point::new(500.0, 500.0), 100, sweep_at).unwrap();
    assert!(!nn.is_empty(), "the promoted tier must keep answering");
    let mut ids: Vec<u64> = nn.iter().map(|n| n.oid.0).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(
        ids.len(),
        nn.len(),
        "replica reads must not duplicate objects"
    );
}

/// The ingestion pipeline under failure: 8 workers [`submit`] through the
/// per-shard queues (batch flushes, deadline flushes) and worker 0 kills a
/// shard at a moment its queues are provably **non-empty**. The PR 6
/// failover contract must hold for *acknowledged* submissions exactly as
/// it does for synchronous updates: the kill's drain re-routes every
/// buffered message to the survivors (zero lost acknowledged updates),
/// ownership stays an exact partition, and queries answer on every tick.
///
/// [`submit`]: MoistCluster::submit
#[test]
fn shard_kill_with_nonempty_queues_drains_without_losing_acked_updates() {
    let store = Bigtable::new();
    let cfg = tier_config();
    let cluster = MoistCluster::builder(&store, cfg)
        .shards(SHARDS)
        .ingest(IngestConfig {
            batch_size: 32,
            flush_deadline_secs: 5.0,
            ..IngestConfig::default()
        })
        .build()
        .unwrap();
    let victim = *cluster.shard_ids().last().unwrap();

    let sims: Vec<Mutex<RoadNetSim>> = (0..WORKERS)
        .map(|i| {
            Mutex::new(RoadNetSim::new(
                RoadMap::new(RoadMapConfig::default()),
                SimConfig {
                    agents: 100,
                    seed: 13_000 + i as u64,
                    ..SimConfig::default()
                },
            ))
        })
        .collect();

    let killed = AtomicBool::new(false);
    let queued_at_kill = AtomicU64::new(0);

    let acked: Vec<u64> = ClientPool::run(WORKERS, |i| {
        let mut sim = sims[i].lock().expect("sim lock");
        let oid_base = i as u64 * 1_000_000;
        let mut count = 0u64;
        let mut t = 0.0;
        while t < END_SECS {
            t = (t + 5.0).min(END_SECS);
            for u in sim.advance_until(t) {
                let outcome = cluster
                    .submit(&UpdateMessage {
                        oid: ObjectId(oid_base + u.oid),
                        loc: u.loc,
                        vel: u.vel,
                        ts: Timestamp::from_secs_f64(u.at_secs),
                    })
                    .expect("submissions must keep being accepted through the kill");
                // Enqueued/Flushed are the pipeline's acknowledgement.
                assert!(!matches!(outcome, SubmitOutcome::ShedOverload { .. }));
                count += 1;
            }

            // Worker 0 kills the victim with fresh submissions provably
            // still buffered: it enqueues a burst stamped *now* (the 5 s
            // deadline keeps every concurrent flush_due(now) hands-off)
            // and snapshots the queue gauge in the same breath.
            if i == 0
                && t >= KILL_AT_SECS
                && killed
                    .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
                    .is_ok()
            {
                let mut burst = 0u64;
                loop {
                    for k in 0..16u64 {
                        cluster
                            .submit(&UpdateMessage {
                                oid: ObjectId(oid_base + 900_000 + burst * 16 + k),
                                loc: Point::new(30.0 + 60.0 * k as f64, 500.0),
                                vel: moist::spatial::Velocity::ZERO,
                                ts: Timestamp::from_secs_f64(t),
                            })
                            .expect("the pre-kill burst must be accepted");
                        count += 1;
                    }
                    burst += 1;
                    // A racing worker at a later virtual tick may flush
                    // the burst out from under us; re-burst until the
                    // gauge proves messages are buffered at kill time.
                    let q = cluster.ingest_stats().queued;
                    if q > 0 {
                        queued_at_kill.store(q, Ordering::SeqCst);
                        break;
                    }
                }
                cluster
                    .remove_shard(victim)
                    .expect("killing a shard with non-empty queues must succeed");
            }

            // Deadline flushing is client-driven: every worker ticks it.
            cluster
                .flush_due(Timestamp::from_secs_f64(t))
                .expect("deadline flushes must keep landing through the kill");

            let mut shard = i;
            while shard < SHARDS {
                match cluster.run_due_clustering_shard(shard, Timestamp::from_secs_f64(t)) {
                    Ok(_) | Err(MoistError::NoSuchShard(_)) => {}
                    Err(e) => panic!("clustering tick failed: {e}"),
                }
                shard += WORKERS.min(SHARDS);
            }

            // Availability probes on every tick.
            let at = Timestamp::from_secs_f64(t);
            let probe = Point::new(100.0 + (i as f64) * 100.0, 500.0);
            cluster
                .nn(probe, 3, at)
                .expect("NN must answer through the queue-drain kill");
            cluster
                .region(&Rect::new(250.0, 250.0, 750.0, 750.0), at, 0.0)
                .expect("region must answer through the queue-drain kill");
        }
        count
    });
    let acked: u64 = acked.iter().sum();

    assert!(
        killed.load(Ordering::SeqCst),
        "worker 0 must kill the shard"
    );
    assert_eq!(cluster.num_shards(), SHARDS - 1);
    assert!(
        queued_at_kill.load(Ordering::SeqCst) > 0,
        "the kill must have found non-empty queues"
    );

    // End-of-stream drain: whatever the last ticks left buffered applies
    // now; afterwards nothing may remain anywhere in the pipeline.
    cluster.drain_ingest().expect("final drain must succeed");
    let is = cluster.ingest_stats();
    assert_eq!(is.queued, 0, "the pipeline must end empty: {is:?}");
    assert_eq!(
        is.submitted, acked,
        "every submission was acknowledged (no backpressure at this depth)"
    );
    assert_eq!(is.flushed_updates, acked, "every acked update was applied");
    assert!(
        is.drain_flushes >= 1,
        "the kill's drain must have flushed batches: {is:?}"
    );
    assert_eq!(is.backpressure + is.overload_shed, 0);

    // Zero lost acknowledged updates: every acked submission is accounted
    // for by exactly one outcome on exactly one shard — including the
    // batches buffered for the victim when it died.
    let agg = cluster.stats();
    assert_eq!(agg.updates, acked, "no acked update lost or double-counted");
    assert!(agg.balanced(), "outcomes must sum to updates: {agg:?}");

    // Exclusive ownership survived the drain-and-reroute.
    common::sole_owner_positions(&cluster);
    let cells = cells_at_level(cfg.clustering_level);
    let sweep_at = Timestamp::from_secs_f64(END_SECS + cfg.cluster_interval_secs + 1.0);
    let runs_before = cluster.stats().cluster_runs;
    for shard in 0..cluster.num_shards() {
        cluster.run_due_clustering_shard(shard, sweep_at).unwrap();
    }
    assert_eq!(
        cluster.stats().cluster_runs - runs_before,
        cells,
        "post-kill sweep must cluster each cell exactly once"
    );
    let (nn, _) = cluster.nn(Point::new(500.0, 500.0), 100, sweep_at).unwrap();
    assert!(!nn.is_empty(), "queries must survive the queue-drain kill");
}

#[test]
fn killing_and_rejoining_shards_repeatedly_keeps_the_partition_tight() {
    let store = Bigtable::new();
    let cfg = tier_config();
    let cluster = MoistCluster::builder(&store, cfg)
        .shards(SHARDS)
        .build()
        .unwrap();
    let cells = cells_at_level(cfg.clustering_level);
    // Churn: kill one, add two, kill one… ownership must stay an exact
    // partition with deadlines intact at every step.
    for round in 0..4 {
        let victim = cluster.shard_ids()[round % cluster.num_shards()];
        cluster.remove_shard(victim).unwrap();
        if round % 2 == 0 {
            cluster.add_shard().unwrap();
        }
        let owned: usize = (0..cluster.num_shards())
            .map(|i| {
                cluster
                    .with_shard(i, |s| s.scheduler().owned_count())
                    .unwrap()
            })
            .sum();
        assert_eq!(owned as u64, cells, "round {round} broke the partition");
        common::sole_owner_positions(&cluster);
    }
    assert_eq!(cluster.epoch(), 6, "4 removals + 2 joins bump 6 epochs");
}
