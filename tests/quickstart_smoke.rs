//! Smoke test pinning the quickstart flow from the facade docs and
//! `examples/quickstart.rs`: if this breaks, the README/doc quickstart
//! has rotted. Mirrors the example's steps with assertions instead of
//! printing.

use moist::bigtable::{Bigtable, Timestamp};
use moist::core::{MoistConfig, MoistServer, ObjectId, UpdateMessage};
use moist::spatial::{Point, Velocity};

/// The facade crate-root doc example: one taxi reports, a customer
/// finds it as the nearest neighbour.
#[test]
fn nearest_taxi_round_trip() {
    let store = Bigtable::new();
    let mut server = MoistServer::new(&store, MoistConfig::default()).expect("server starts");

    server
        .update(&UpdateMessage {
            oid: ObjectId(1),
            loc: Point::new(420.0, 500.0),
            vel: Velocity::new(1.8, 0.0),
            ts: Timestamp::from_secs(10),
        })
        .expect("update succeeds");

    let (neighbors, _) = server
        .nn(Point::new(400.0, 500.0), 1, Timestamp::from_secs(11))
        .expect("nn query succeeds");
    assert_eq!(neighbors[0].oid, ObjectId(1));
}

/// The full `examples/quickstart.rs` storyline: register co-moving
/// objects, cluster them into a school, shed follower updates, answer
/// NN and position queries.
#[test]
fn quickstart_example_flow() {
    let store = Bigtable::new();
    let mut server = MoistServer::new(&store, MoistConfig::default()).expect("server starts");

    // Three commuters walk east together inside one clustering cell;
    // one cyclist heads north.
    for (oid, x, y, vx, vy) in [
        (1u64, 100.0, 510.0, 1.0, 0.0),
        (2, 101.0, 511.0, 1.0, 0.0),
        (3, 102.0, 509.0, 1.0, 0.0),
        (4, 500.0, 100.0, 0.0, 2.0),
    ] {
        server
            .update(&UpdateMessage {
                oid: ObjectId(oid),
                loc: Point::new(x, y),
                vel: Velocity::new(vx, vy),
                ts: Timestamp::from_secs(0),
            })
            .expect("registration update succeeds");
    }

    // Periodic clustering groups the co-moving commuters into one school.
    let report = server
        .run_due_clustering(Timestamp::from_secs(30))
        .expect("clustering runs");
    assert!(
        report.merged > 0,
        "co-moving commuters should merge into a school: {report:?}"
    );
    assert!(report.post_leaders < report.pre_leaders);

    // Followers that keep moving with their school are shed.
    for t in 31..=35u64 {
        let x = 102.0 + t as f64; // object 3 keeps pace with the school: 1 u/s east since t=0
        server
            .update(&UpdateMessage {
                oid: ObjectId(3),
                loc: Point::new(x, 509.0),
                vel: Velocity::new(1.0, 0.0),
                ts: Timestamp::from_secs(t),
            })
            .expect("follower update succeeds");
    }
    let stats = server.stats();
    assert!(
        stats.shed > 0,
        "in-school follower updates should be shed: {stats:?}"
    );

    // Nearest-neighbour query: the three commuters are east of (105, 510).
    let (neighbors, _) = server
        .nn(Point::new(105.0, 510.0), 3, Timestamp::from_secs(35))
        .expect("nn query succeeds");
    assert_eq!(neighbors.len(), 3);
    let found: Vec<u64> = neighbors.iter().map(|n| n.oid.0).collect();
    for oid in [1, 2, 3] {
        assert!(
            found.contains(&oid),
            "commuter {oid} missing from {found:?}"
        );
    }
    // The cyclist far to the south is not among the 3 nearest.
    assert!(!found.contains(&4));

    // Point lookup of a shed follower is served from the school estimate.
    let pos = server
        .position(ObjectId(3), Timestamp::from_secs(35))
        .expect("position query succeeds")
        .expect("object 3 is indexed");
    assert!(
        (pos.x - 137.0).abs() < MoistConfig::default().epsilon + 1e-9,
        "estimated x {} too far from true 137",
        pos.x
    );
    assert!((pos.y - 509.0).abs() < MoistConfig::default().epsilon + 1e-9);

    // Virtual store time was charged for the work.
    assert!(server.elapsed_us() > 0.0);
}
