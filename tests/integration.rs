//! Cross-crate integration tests: MOIST core against the real workloads,
//! the archiver, and the baselines, all over one shared store.

use moist::archive::{PppArchiver, PppConfig};
use moist::baselines::{BxConfig, BxTree};
use moist::bigtable::{Bigtable, Timestamp};
use moist::core::{MoistConfig, MoistServer, ObjectId, UpdateMessage, UpdateOutcome};
use moist::spatial::{Point, Rect};
use moist::workload::{RoadMap, RoadMapConfig, RoadNetSim, SimConfig, UniformSim};
use std::sync::Arc;

fn drive(server: &mut MoistServer, sim: &mut RoadNetSim, until: f64) {
    for u in sim.advance_until(until) {
        server
            .update(&UpdateMessage {
                oid: ObjectId(u.oid),
                loc: u.loc,
                vel: u.vel,
                ts: Timestamp::from_secs_f64(u.at_secs),
            })
            .expect("update");
    }
}

#[test]
fn road_network_traffic_gets_shed_after_clustering() {
    let store = Bigtable::new();
    let cfg = MoistConfig {
        epsilon: 8.0,
        ..MoistConfig::default()
    };
    let mut server = MoistServer::new(&store, cfg).unwrap();
    let mut sim = RoadNetSim::new(
        RoadMap::new(RoadMapConfig::default()),
        SimConfig {
            agents: 300,
            seed: 21,
            ..SimConfig::default()
        },
    );
    // Warm-up minute, then clustering, then measure shedding.
    drive(&mut server, &mut sim, 60.0);
    server.run_due_clustering(Timestamp::from_secs(60)).unwrap();
    let before = server.stats();
    for step in 1..=12u64 {
        drive(&mut server, &mut sim, 60.0 + step as f64 * 10.0);
        server
            .run_due_clustering(Timestamp::from_secs(60 + step * 10))
            .unwrap();
    }
    let after = server.stats();
    let new_updates = after.updates - before.updates;
    let new_shed = after.shed - before.shed;
    let ratio = new_shed as f64 / new_updates as f64;
    assert!(
        ratio > 0.3,
        "road traffic should shed a solid fraction after clustering, got {:.2} \
         ({new_shed}/{new_updates})",
        ratio
    );
}

#[test]
fn nn_results_stay_close_to_ground_truth_under_schooling() {
    // Schooling trades per-object precision (≤ ε) for update shedding; NN
    // answers must stay within that tolerance of the true positions.
    let store = Bigtable::new();
    let cfg = MoistConfig {
        epsilon: 5.0,
        ..MoistConfig::default()
    };
    let mut server = MoistServer::new(&store, cfg).unwrap();
    let mut sim = RoadNetSim::new(
        RoadMap::new(RoadMapConfig::default()),
        SimConfig {
            agents: 150,
            seed: 33,
            location_noise: 0.0,
            velocity_noise: 0.0,
            ..SimConfig::default()
        },
    );
    for step in 1..=18u64 {
        drive(&mut server, &mut sim, step as f64 * 10.0);
        server
            .run_due_clustering(Timestamp::from_secs(step * 10))
            .unwrap();
    }
    sim.sync_all();
    let now = Timestamp::from_secs_f64(sim.now_secs());
    let center = Point::new(500.0, 500.0);
    let (nn, _) = server.nn(center, 10, now).unwrap();
    assert!(!nn.is_empty());
    // Every reported neighbour's position is within ε + staleness slack of
    // the simulator's ground truth for that object.
    for n in &nn {
        let truth = &sim.agents()[n.oid.0 as usize];
        let err = truth.loc.distance(&n.loc);
        // Slack: ε (school tolerance) + max distance travelled since the
        // object's last accepted update (≤ max speed × max interval).
        assert!(
            err <= 5.0 + 2.0 * 5.0 + 1e-6,
            "object {} reported {:.1} units from truth",
            n.oid,
            err
        );
    }
}

#[test]
fn moist_and_bxtree_agree_on_knn_without_schooling() {
    let store = Bigtable::new();
    // ε=0: every object is its own leader; both indexes see exact data.
    let cfg = MoistConfig::without_schooling();
    let mut server = MoistServer::new(&store, cfg).unwrap();
    let mut bx = BxTree::new(
        &store,
        cfg.space,
        BxConfig {
            v_max: 3.0,
            ..BxConfig::default()
        },
        "bx_compare",
    )
    .unwrap();
    let mut bx_session = store.session();
    let mut uni = UniformSim::new(Rect::new(0.0, 0.0, 1000.0, 1000.0), 250, 0.0, 5.0, 5);
    let ts = Timestamp::from_secs(1);
    for (oid, loc, vel) in uni.positions() {
        server
            .update(&UpdateMessage {
                oid: ObjectId(oid),
                loc,
                vel,
                ts,
            })
            .unwrap();
        bx.update(&mut bx_session, oid, &loc, &vel, ts).unwrap();
    }
    for _ in 0..10 {
        let q = uni.random_point();
        let (moist_nn, _) = server.nn(q, 5, ts).unwrap();
        let bx_nn = bx.knn(&mut bx_session, q, 5, ts).unwrap();
        let a: Vec<u64> = moist_nn.iter().map(|n| n.oid.0).collect();
        let b: Vec<u64> = bx_nn.iter().map(|e| e.oid).collect();
        assert_eq!(a, b, "kNN mismatch at query point {q:?}");
    }
}

#[test]
fn multi_server_interleaving_is_consistent() {
    let store = Bigtable::new();
    let cfg = MoistConfig::default();
    let mut servers: Vec<MoistServer> = (0..4)
        .map(|_| MoistServer::new(&store, cfg).unwrap())
        .collect();
    // 100 objects, updates round-robined across servers (like clients
    // hitting different front-ends).
    for round in 0..5u64 {
        for oid in 0..100u64 {
            let s = &mut servers[(oid % 4) as usize];
            s.update(&UpdateMessage {
                oid: ObjectId(oid),
                loc: Point::new(10.0 + oid as f64 + round as f64, 500.0),
                vel: moist::spatial::Velocity::new(1.0, 0.0),
                ts: Timestamp::from_secs(round * 10),
            })
            .unwrap();
        }
    }
    // Any server answers for all objects.
    for oid in [0u64, 33, 99] {
        let p = servers[0]
            .position(ObjectId(oid), Timestamp::from_secs(40))
            .unwrap()
            .expect("indexed");
        assert!((p.x - (10.0 + oid as f64 + 4.0)).abs() < 1e-6);
    }
    // The spatial index holds each object exactly once.
    let (nn, _) = servers[3]
        .nn(Point::new(60.0, 500.0), 100, Timestamp::from_secs(40))
        .unwrap();
    let mut ids: Vec<u64> = nn.iter().map(|n| n.oid.0).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), nn.len(), "no duplicate objects in NN results");
    assert_eq!(nn.len(), 100);
}

#[test]
fn archiver_history_matches_accepted_updates() {
    let store = Bigtable::new();
    let cfg = MoistConfig::without_schooling(); // every update archived
    let archiver = Arc::new(PppArchiver::new(cfg.space, PppConfig::default()));
    let mut server = MoistServer::new(&store, cfg)
        .unwrap()
        .with_archiver(Arc::clone(&archiver));
    let mut expected = 0u64;
    for t in 0..50u64 {
        let out = server
            .update(&UpdateMessage {
                oid: ObjectId(7),
                loc: Point::new(10.0 + t as f64 * 3.0, 200.0),
                vel: moist::spatial::Velocity::new(3.0, 0.0),
                ts: Timestamp::from_secs(t),
            })
            .unwrap();
        assert_ne!(out, UpdateOutcome::Shed);
        expected += 1;
    }
    archiver.flush_all();
    let (hist, cost) = server
        .history(ObjectId(7), Timestamp::ZERO, Timestamp::from_secs(100))
        .unwrap();
    assert_eq!(hist.len() as u64, expected);
    assert!(hist.windows(2).all(|w| w[0].ts_us < w[1].ts_us));
    assert_eq!(cost.disks_touched, 1, "object locality: one disk");
    // The trajectory is the straight line we fed in.
    for (i, r) in hist.iter().enumerate() {
        assert!((r.loc.x - (10.0 + i as f64 * 3.0)).abs() < 1e-9);
    }
}

#[test]
fn aging_preserves_query_results() {
    let store = Bigtable::new();
    let cfg = MoistConfig {
        aging_secs: 30.0,
        ..MoistConfig::default()
    };
    let mut server = MoistServer::new(&store, cfg).unwrap();
    for t in 0..20u64 {
        server
            .update(&UpdateMessage {
                oid: ObjectId(1),
                loc: Point::new(100.0 + t as f64, 100.0),
                vel: moist::spatial::Velocity::new(1.0, 0.0),
                ts: Timestamp::from_secs(t * 10),
            })
            .unwrap();
    }
    let moved = server.age_data(Timestamp::from_secs(200)).unwrap();
    assert!(moved > 0);
    // Current position and NN still come from the hot path.
    let p = server
        .position(ObjectId(1), Timestamp::from_secs(190))
        .unwrap()
        .unwrap();
    assert_eq!(p.x, 119.0);
    let (nn, _) = server
        .nn(Point::new(119.0, 100.0), 1, Timestamp::from_secs(190))
        .unwrap();
    assert_eq!(nn[0].oid, ObjectId(1));
}
