//! End-to-end scenario tests: the full pipeline (workload → multi-threaded
//! servers → clustering → NN/history) plus paper-level sanity properties.

use moist::bigtable::{Bigtable, Timestamp};
use moist::core::{MoistConfig, MoistServer, ObjectId, UpdateMessage};
use moist::spatial::Point;
use moist::workload::{ClientPool, QpsTimeline, RoadMap, RoadMapConfig, RoadNetSim, SimConfig};
use std::sync::Arc;

#[test]
fn parallel_servers_ingest_concurrently_without_corruption() {
    let store = Bigtable::new();
    let cfg = MoistConfig::default();
    // Pre-create tables so worker threads only open them.
    let _ = MoistServer::new(&store, cfg).unwrap();

    let updates_per_server = 500usize;
    let servers = 4usize;
    let elapsed: Vec<(f64, u64)> = ClientPool::run(servers, |i| {
        let mut server = MoistServer::new(&store, cfg).unwrap();
        for j in 0..updates_per_server {
            let oid = (i * updates_per_server + j) as u64;
            server
                .update(&UpdateMessage {
                    oid: ObjectId(oid),
                    loc: Point::new((oid % 1000) as f64, ((oid * 7) % 1000) as f64),
                    vel: moist::spatial::Velocity::new(1.0, 0.0),
                    ts: Timestamp::from_secs(1),
                })
                .unwrap();
        }
        (server.elapsed_us(), server.stats().updates)
    });
    assert_eq!(elapsed.len(), servers);
    for (us, n) in &elapsed {
        assert_eq!(*n as usize, updates_per_server);
        assert!(*us > 0.0);
    }
    // Every object is queryable from a fresh server afterwards.
    let reader = MoistServer::new(&store, cfg).unwrap();
    let (nn, _) = reader
        .nn(Point::new(500.0, 500.0), 2000, Timestamp::from_secs(1))
        .unwrap();
    assert_eq!(nn.len(), servers * updates_per_server);
}

#[test]
fn schooling_reduces_store_writes_on_the_same_trace() {
    // The headline claim: with schooling, the store sees far fewer writes
    // for the same workload.
    let trace: Vec<_> = {
        let mut sim = RoadNetSim::new(
            RoadMap::new(RoadMapConfig::default()),
            SimConfig {
                agents: 200,
                seed: 77,
                location_noise: 0.1,
                velocity_noise: 0.01,
                ..SimConfig::default()
            },
        );
        sim.advance_until(240.0)
    };

    let run = |epsilon: f64| -> (u64, f64) {
        let store = Bigtable::new();
        let cfg = MoistConfig {
            epsilon,
            ..MoistConfig::default()
        };
        let mut server = MoistServer::new(&store, cfg).unwrap();
        let mut next_cluster = 10.0;
        for u in &trace {
            if u.at_secs >= next_cluster {
                server
                    .run_due_clustering(Timestamp::from_secs_f64(u.at_secs))
                    .unwrap();
                next_cluster += 10.0;
            }
            server
                .update(&UpdateMessage {
                    oid: ObjectId(u.oid),
                    loc: u.loc,
                    vel: u.vel,
                    ts: Timestamp::from_secs_f64(u.at_secs),
                })
                .unwrap();
        }
        let writes = store.metrics_snapshot();
        (
            writes.write_ops + writes.batch_ops,
            server.stats().shed_ratio(),
        )
    };

    let (writes_no_school, shed0) = run(0.0);
    let (writes_school, shed8) = run(8.0);
    assert!(shed0 < 0.05, "ε=0 sheds (almost) nothing: {shed0}");
    assert!(shed8 > 0.25, "ε=8 should shed a good fraction: {shed8}");
    assert!(
        (writes_school as f64) < 0.8 * writes_no_school as f64,
        "schooling must cut store writes: {writes_school} vs {writes_no_school}"
    );
}

#[test]
fn larger_epsilon_sheds_more() {
    let trace: Vec<_> = {
        let mut sim = RoadNetSim::new(
            RoadMap::new(RoadMapConfig::default()),
            SimConfig {
                agents: 100,
                seed: 13,
                ..SimConfig::default()
            },
        );
        sim.advance_until(180.0)
    };
    let shed_at = |epsilon: f64| -> f64 {
        let store = Bigtable::new();
        let cfg = MoistConfig {
            epsilon,
            ..MoistConfig::default()
        };
        let mut server = MoistServer::new(&store, cfg).unwrap();
        let mut next_cluster = 10.0;
        for u in &trace {
            if u.at_secs >= next_cluster {
                server
                    .run_due_clustering(Timestamp::from_secs_f64(u.at_secs))
                    .unwrap();
                next_cluster += 10.0;
            }
            server
                .update(&UpdateMessage {
                    oid: ObjectId(u.oid),
                    loc: u.loc,
                    vel: u.vel,
                    ts: Timestamp::from_secs_f64(u.at_secs),
                })
                .unwrap();
        }
        server.stats().shed_ratio()
    };
    let s2 = shed_at(2.0);
    let s10 = shed_at(10.0);
    let s40 = shed_at(40.0);
    assert!(
        s2 <= s10 + 0.02 && s10 <= s40 + 0.02,
        "shed ratio should grow with ε: {s2:.2} {s10:.2} {s40:.2}"
    );
    assert!(s40 > s2, "ε=40 must shed more than ε=2");
}

#[test]
fn qps_timeline_from_virtual_completions() {
    // Virtual-time completions from a server translate into a timeline.
    let store = Bigtable::new();
    let mut server = MoistServer::new(&store, MoistConfig::without_schooling()).unwrap();
    let mut events = Vec::new();
    for i in 0..12000u64 {
        server
            .update(&UpdateMessage {
                oid: ObjectId(i % 200),
                loc: Point::new((i % 1000) as f64, 500.0),
                vel: moist::spatial::Velocity::ZERO,
                ts: Timestamp::from_secs(1),
            })
            .unwrap();
        events.push((server.elapsed_us() / 1e6, true));
    }
    let tl = QpsTimeline::from_events(events);
    assert!(!tl.samples.is_empty());
    assert!(tl.average() > 0.0);
    assert!(tl.peak() >= tl.average());
    // With the default cost profile one server sustains thousands of
    // updates per virtual second (the paper's single-server regime).
    assert!(
        tl.peak() > 2000.0 && tl.peak() < 20_000.0,
        "virtual single-server QPS out of the paper's regime: {}",
        tl.peak()
    );
}

#[test]
fn store_sharing_is_visible_across_threads_mid_run() {
    let store = Bigtable::new();
    let cfg = MoistConfig::default();
    let _ = MoistServer::new(&store, cfg).unwrap();
    let store2 = Arc::clone(&store);
    // Writer thread fills; reader thread polls until it sees everything.
    let writer = std::thread::spawn(move || {
        let mut s = MoistServer::new(&store2, cfg).unwrap();
        for i in 0..300u64 {
            s.update(&UpdateMessage {
                oid: ObjectId(i),
                loc: Point::new(500.0, (i % 1000) as f64),
                vel: moist::spatial::Velocity::ZERO,
                ts: Timestamp::from_secs(1),
            })
            .unwrap();
        }
    });
    writer.join().unwrap();
    let reader = MoistServer::new(&store, cfg).unwrap();
    let (nn, _) = reader
        .nn(Point::new(500.0, 500.0), 400, Timestamp::from_secs(1))
        .unwrap();
    assert_eq!(nn.len(), 300);
}
