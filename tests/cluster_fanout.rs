//! Scatter-gather fan-out under shard churn: a region query whose plan
//! spans several owners races live `add_shard`/`remove_shard` calls.
//!
//! The contract:
//!
//! * **no lost objects** — every scattered answer contains exactly the
//!   objects the single-shard oracle returns, on every iteration, while
//!   the membership (and therefore the owner slicing) changes underneath;
//! * **no duplicated objects** — the merge dedups per object across the
//!   shards' partials, even when a school expansion and a spatial entry
//!   surface the same object from two slices;
//! * **scattered NN stays exact** — boundary-hugging NN probes agree with
//!   the single-server frontier search through the churn.

use moist::bigtable::{Bigtable, Timestamp};
use moist::core::{
    plan_region_ranges, slice_ranges_by_owner, MoistCluster, MoistConfig, MoistServer, ObjectId,
    UpdateMessage,
};
use moist::spatial::{Point, Velocity};
use moist::workload::ClientPool;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

mod common;

const SHARDS: usize = 4;
const QUERIERS: usize = 4;
const QUERY_ROUNDS: usize = 40;
/// Margin covering a school's displacement span (clustering cells at
/// level 3 are 125 world units; the diagonal bounds any school radius).
const MARGIN: f64 = 200.0;

fn tier_config() -> MoistConfig {
    MoistConfig {
        epsilon: 50.0,
        delta_m: 2.0,
        clustering_level: 3, // 64 cells across the shards
        cluster_interval_secs: 10.0,
        ..MoistConfig::default()
    }
}

/// Deterministic xorshift scatter in (0, 1000)².
fn scattered(n: u64) -> Vec<(u64, f64, f64)> {
    let mut state = 0xA076_1D64_78BD_642Fu64;
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    (0..n)
        .map(|i| (i, 2.0 + next() * 996.0, 2.0 + next() * 996.0))
        .collect()
}

fn sorted_ids(hits: &[moist::core::Neighbor]) -> Vec<u64> {
    let mut ids: Vec<u64> = hits.iter().map(|n| n.oid.0).collect();
    ids.sort_unstable();
    ids
}

#[test]
fn region_fanout_matches_the_oracle_while_shards_join_and_leave() {
    let store = Bigtable::new();
    let cfg = tier_config();
    let cluster = MoistCluster::builder(&store, cfg)
        .shards(SHARDS)
        .build()
        .unwrap();
    for &(i, x, y) in &scattered(400) {
        cluster
            .update(&UpdateMessage {
                oid: ObjectId(i),
                loc: Point::new(x, y),
                vel: Velocity::ZERO,
                ts: Timestamp::ZERO,
            })
            .unwrap();
    }
    // One full clustering sweep: co-located zero-velocity leaders merge
    // into schools, so region answers exercise the school expansion and
    // the cross-shard dedup, not just raw spatial entries.
    cluster
        .run_due_clustering(Timestamp::from_secs(25))
        .unwrap();

    // The whole-map plan must genuinely span several owners, or the race
    // below would not scatter at all.
    let world = cfg.space.world;
    let ranges = plan_region_ranges(&cfg, &world, MARGIN);
    let slices = slice_ranges_by_owner(
        &ranges,
        cfg.clustering_level,
        cfg.space.leaf_level,
        &cluster.shard_ids(),
    );
    assert!(
        slices.len() >= 3,
        "whole-map plan must span >= 3 owners, got {}",
        slices.len()
    );

    // The single-shard oracle: one plain server over the same store.
    let oracle = MoistServer::new(&store, cfg).unwrap();
    let (expected, _) = oracle.region(&world, Timestamp::ZERO, MARGIN).unwrap();
    let expected_ids = sorted_ids(&expected);
    assert_eq!(expected_ids.len(), 400, "the oracle sees every object");
    let nn_probe = Point::new(499.9, 500.1); // hugs a cell boundary
    let nn_level = oracle.flag_level(&nn_probe, Timestamp::ZERO).unwrap();
    let (nn_expected, _) = oracle
        .nn_at_level(nn_probe, 12, Timestamp::ZERO, nn_level)
        .unwrap();
    let nn_expected_ids: Vec<u64> = nn_expected.iter().map(|n| n.oid.0).collect();

    // Race: worker 0 churns the membership (three joins, one leave) while
    // the queriers fan region + NN queries out across the moving slices.
    let churned = AtomicBool::new(false);
    let scattered_answers = AtomicU64::new(0);
    ClientPool::run(QUERIERS + 1, |w| {
        if w == 0 {
            for round in 0..3 {
                std::thread::sleep(std::time::Duration::from_millis(7));
                let joiner = cluster.add_shard().expect("live join under queries");
                if round == 1 {
                    std::thread::sleep(std::time::Duration::from_millis(7));
                    cluster
                        .remove_shard(joiner)
                        .expect("live leave under queries");
                }
            }
            churned.store(true, Ordering::SeqCst);
            return;
        }
        for round in 0..QUERY_ROUNDS {
            let (hits, stats) = cluster
                .region(&world, Timestamp::ZERO, MARGIN)
                .expect("region must answer through churn");
            let ids = sorted_ids(&hits);
            let mut unique = ids.clone();
            unique.dedup();
            assert_eq!(unique.len(), ids.len(), "round {round}: duplicated objects");
            assert_eq!(ids, expected_ids, "round {round}: lost or phantom objects");
            if stats.shards_scattered >= 3 {
                scattered_answers.fetch_add(1, Ordering::Relaxed);
            }

            let (nn, _) = cluster
                .nn(nn_probe, 12, Timestamp::ZERO)
                .expect("NN must answer through churn");
            let nn_ids: Vec<u64> = nn.iter().map(|n| n.oid.0).collect();
            assert_eq!(nn_ids, nn_expected_ids, "round {round}: NN diverged");
        }
    });

    assert!(churned.load(Ordering::SeqCst), "the churner must finish");
    assert!(
        scattered_answers.load(Ordering::Relaxed) > 0,
        "at least some answers must have genuinely scattered across >= 3 shards"
    );
    // Post-churn: 4 + 3 joins − 1 leave = 6 shards, ownership still an
    // exact partition, and the scattered answer still matches the oracle.
    assert_eq!(cluster.num_shards(), SHARDS + 2);
    common::sole_owner_positions(&cluster);
    let (hits, stats) = cluster.region(&world, Timestamp::ZERO, MARGIN).unwrap();
    assert_eq!(sorted_ids(&hits), expected_ids);
    assert!(stats.shards_scattered >= 3, "stats: {stats:?}");
}
