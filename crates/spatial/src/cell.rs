//! Hierarchical spatial cells over a space-filling curve.
//!
//! This is the S2Cell-style decomposition of §3.2.1: the unit square is
//! recursively divided into a `2^l × 2^l` grid; each grid cell at level `l`
//! is identified by its curve index. A [`CellId`] therefore doubles as a
//! *row key* in the Spatial Index Table and as a *key range* of all its
//! descendant cells at a finer level — the property batch reads exploit.

use crate::curve::{CurveKind, MAX_LEVEL};
use crate::point::{Point, Rect};
use serde::{Deserialize, Serialize};

/// Identifier of one cell of the recursive decomposition.
///
/// A cell is `(level, index)` where `index ∈ [0, 4^level)` is the position of
/// the cell along the space-filling curve at that level. Ordering is by
/// `(level, index)`; within one level this is exactly curve order, which is
/// key order in the Spatial Index Table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CellId {
    /// Refinement depth; 0 is the whole space.
    pub level: u8,
    /// Curve index of the cell at `level`.
    pub index: u64,
}

impl CellId {
    /// The root cell covering the whole unit square.
    pub const ROOT: CellId = CellId { level: 0, index: 0 };

    /// Creates a cell id, checking that `index` is on the level's curve.
    ///
    /// Returns `None` when `level > MAX_LEVEL` or the index is out of range.
    pub fn new(level: u8, index: u64) -> Option<CellId> {
        if level > MAX_LEVEL || index >= cells_at_level(level) {
            return None;
        }
        Some(CellId { level, index })
    }

    /// The cell at `level` containing the unit-square point `p`.
    ///
    /// Points outside `[0,1)²` are clamped onto the square first, matching
    /// how an indexer must accept slightly out-of-range GPS fixes.
    pub fn from_point(curve: CurveKind, level: u8, p: &Point) -> CellId {
        let level = level.min(MAX_LEVEL);
        let side = 1u64 << level;
        let fx = p.x.clamp(0.0, 1.0 - f64::EPSILON);
        let fy = p.y.clamp(0.0, 1.0 - f64::EPSILON);
        let x = ((fx * side as f64) as u64).min(side - 1) as u32;
        let y = ((fy * side as f64) as u64).min(side - 1) as u32;
        CellId {
            level,
            index: curve.index(level, x, y),
        }
    }

    /// Grid coordinates of this cell on the `2^level` grid.
    #[inline]
    pub fn coords(&self, curve: CurveKind) -> (u32, u32) {
        curve.coords(self.level, self.index)
    }

    /// The cell's rectangle in unit-square coordinates.
    pub fn bounds(&self, curve: CurveKind) -> Rect {
        let (x, y) = self.coords(curve);
        let side = (1u64 << self.level) as f64;
        Rect::new(
            x as f64 / side,
            y as f64 / side,
            (x + 1) as f64 / side,
            (y + 1) as f64 / side,
        )
    }

    /// Centre of the cell in unit-square coordinates.
    pub fn center(&self, curve: CurveKind) -> Point {
        self.bounds(curve).center()
    }

    /// The parent cell one level up; `None` at the root.
    ///
    /// Valid for any quadrant-refinement curve thanks to the prefix property
    /// (children of `i` are `4i..4i+4`).
    #[inline]
    pub fn parent(&self) -> Option<CellId> {
        if self.level == 0 {
            return None;
        }
        Some(CellId {
            level: self.level - 1,
            index: self.index >> 2,
        })
    }

    /// Ancestor at `level` (must be coarser than or equal to this cell).
    pub fn ancestor_at(&self, level: u8) -> Option<CellId> {
        if level > self.level {
            return None;
        }
        let shift = 2 * (self.level - level) as u64;
        Some(CellId {
            level,
            index: self.index >> shift,
        })
    }

    /// The four children one level down; `None` at [`MAX_LEVEL`].
    pub fn children(&self) -> Option<[CellId; 4]> {
        if self.level >= MAX_LEVEL {
            return None;
        }
        let base = self.index << 2;
        let l = self.level + 1;
        Some([
            CellId {
                level: l,
                index: base,
            },
            CellId {
                level: l,
                index: base + 1,
            },
            CellId {
                level: l,
                index: base + 2,
            },
            CellId {
                level: l,
                index: base + 3,
            },
        ])
    }

    /// Whether `other` lies inside this cell (possibly at a finer level).
    pub fn contains_cell(&self, other: &CellId) -> bool {
        other.ancestor_at(self.level) == Some(*self)
    }

    /// Range `[start, end)` of descendant curve indexes at `target_level`.
    ///
    /// This is the contiguous Spatial-Index-Table row range the NN search
    /// scans in one batch read (§3.4.1). Returns `None` when `target_level`
    /// is coarser than this cell.
    pub fn descendant_range(&self, target_level: u8) -> Option<(u64, u64)> {
        if target_level < self.level || target_level > MAX_LEVEL {
            return None;
        }
        let shift = 2 * (target_level - self.level) as u64;
        Some((self.index << shift, (self.index + 1) << shift))
    }

    /// The (up to four) edge-adjacent cells at the same level.
    ///
    /// Cells on the boundary of the space have fewer neighbours; the paper's
    /// NN loop pushes "those four cells that share an edge with c" (§3.4.1).
    pub fn edge_neighbors(&self, curve: CurveKind) -> Vec<CellId> {
        let (x, y) = self.coords(curve);
        let side = 1u64 << self.level;
        let mut out = Vec::with_capacity(4);
        let candidates = [
            (x as i64 - 1, y as i64),
            (x as i64 + 1, y as i64),
            (x as i64, y as i64 - 1),
            (x as i64, y as i64 + 1),
        ];
        for (nx, ny) in candidates {
            if nx >= 0 && ny >= 0 && (nx as u64) < side && (ny as u64) < side {
                out.push(CellId {
                    level: self.level,
                    index: curve.index(self.level, nx as u32, ny as u32),
                });
            }
        }
        out
    }

    /// Shortest distance from the unit-square point `p` to this cell.
    #[inline]
    pub fn distance_to_point(&self, curve: CurveKind, p: &Point) -> f64 {
        self.bounds(curve).distance_to_point(p)
    }

    /// Side length of a cell at this level, in unit-square units.
    #[inline]
    pub fn side_length(&self) -> f64 {
        1.0 / (1u64 << self.level) as f64
    }
}

/// Number of cells at `level` (`4^level`).
#[inline]
pub fn cells_at_level(level: u8) -> u64 {
    1u64 << (2 * level as u64)
}

/// Covers a rectangle with the minimal set of same-level cells intersecting
/// it, in curve order.
///
/// Used to approximate "an arbitrary region by a collection of cells" (§1)
/// for region queries and for clustering-cell enumeration.
pub fn cover_rect(curve: CurveKind, level: u8, rect: &Rect) -> Vec<CellId> {
    let level = level.min(MAX_LEVEL);
    let side = 1u64 << level;
    let to_grid = |v: f64| -> u64 { ((v.clamp(0.0, 1.0) * side as f64) as u64).min(side - 1) };
    // Half-open handling: a rect whose max touches a grid line should not
    // include the next cell, hence the tiny inward nudge on the max corner.
    let eps = f64::EPSILON;
    let x0 = to_grid(rect.min_x);
    let y0 = to_grid(rect.min_y);
    let x1 = to_grid((rect.max_x - eps).max(rect.min_x));
    let y1 = to_grid((rect.max_y - eps).max(rect.min_y));
    let mut cells = Vec::with_capacity(((x1 - x0 + 1) * (y1 - y0 + 1)) as usize);
    for x in x0..=x1 {
        for y in y0..=y1 {
            cells.push(CellId {
                level,
                index: curve.index(level, x as u32, y as u32),
            });
        }
    }
    cells.sort_unstable();
    cells
}

#[cfg(test)]
mod tests {
    use super::*;

    const H: CurveKind = CurveKind::Hilbert;

    #[test]
    fn root_contains_everything() {
        let p = Point::new(0.73, 0.21);
        for level in 0..=10 {
            let c = CellId::from_point(H, level, &p);
            assert!(CellId::ROOT.contains_cell(&c));
            assert!(c.bounds(H).contains(&p));
        }
    }

    #[test]
    fn new_rejects_out_of_range() {
        assert!(CellId::new(2, 15).is_some());
        assert!(CellId::new(2, 16).is_none());
        assert!(CellId::new(MAX_LEVEL + 1, 0).is_none());
    }

    #[test]
    fn parent_child_roundtrip() {
        let c = CellId::from_point(H, 12, &Point::new(0.4, 0.9));
        let kids = c.children().unwrap();
        for k in kids {
            assert_eq!(k.parent(), Some(c));
            assert!(c.contains_cell(&k));
        }
        assert_eq!(c.ancestor_at(12), Some(c));
        assert_eq!(c.ancestor_at(13), None);
    }

    #[test]
    fn descendant_range_covers_exactly_the_children() {
        let c = CellId::from_point(H, 5, &Point::new(0.1, 0.1));
        let (start, end) = c.descendant_range(8).unwrap();
        assert_eq!(end - start, 64); // 4^3 descendants
                                     // Every index in the range has c as its level-5 ancestor.
        for i in start..end {
            let leaf = CellId { level: 8, index: i };
            assert_eq!(leaf.ancestor_at(5), Some(c));
        }
        // And the indexes just outside do not.
        if start > 0 {
            let before = CellId {
                level: 8,
                index: start - 1,
            };
            assert_ne!(before.ancestor_at(5), Some(c));
        }
        let after = CellId {
            level: 8,
            index: end,
        };
        assert_ne!(after.ancestor_at(5), Some(c));
    }

    #[test]
    fn edge_neighbors_are_mutual_and_adjacent() {
        for level in 1..=6u8 {
            let c = CellId::from_point(H, level, &Point::new(0.51, 0.49));
            let (cx, cy) = c.coords(H);
            let ns = c.edge_neighbors(H);
            assert!(!ns.is_empty() && ns.len() <= 4);
            for n in &ns {
                let (nx, ny) = n.coords(H);
                let manhattan = (cx as i64 - nx as i64).abs() + (cy as i64 - ny as i64).abs();
                assert_eq!(manhattan, 1);
                assert!(n.edge_neighbors(H).contains(&c), "neighbourhood not mutual");
            }
        }
    }

    #[test]
    fn corner_cell_has_two_neighbors() {
        let c = CellId::from_point(H, 3, &Point::new(0.0, 0.0));
        assert_eq!(c.edge_neighbors(H).len(), 2);
    }

    #[test]
    fn bounds_partition_the_square() {
        // At level 2 the 16 cells tile the unit square without overlap.
        let level = 2;
        let mut area = 0.0;
        for i in 0..cells_at_level(level) {
            let b = CellId { level, index: i }.bounds(H);
            area += b.width() * b.height();
        }
        assert!((area - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cover_rect_returns_intersecting_cells_only() {
        let rect = Rect::new(0.30, 0.30, 0.55, 0.40);
        let cells = cover_rect(H, 3, &rect);
        // Level 3: cell side 1/8 = 0.125. x cells 2..=4, y cells 2..=3 → 6.
        assert_eq!(cells.len(), 6);
        for c in &cells {
            assert!(c.bounds(H).intersects(&rect));
        }
        // Sorted in curve order.
        let mut sorted = cells.clone();
        sorted.sort_unstable();
        assert_eq!(cells, sorted);
    }

    #[test]
    fn cover_rect_degenerate_point() {
        let p = Rect::new(0.5, 0.5, 0.5, 0.5);
        let cells = cover_rect(H, 4, &p);
        assert_eq!(cells.len(), 1);
    }

    #[test]
    fn from_point_clamps_out_of_range_points() {
        let c = CellId::from_point(H, 4, &Point::new(7.0, -3.0));
        let b = c.bounds(H);
        assert!(b.max_x >= 1.0 - 1e-9 && b.min_y <= 1e-9);
    }

    #[test]
    fn side_length_halves_per_level() {
        let a = CellId::new(3, 0).unwrap().side_length();
        let b = CellId::new(4, 0).unwrap().side_length();
        assert!((a / b - 2.0).abs() < 1e-12);
    }
}
