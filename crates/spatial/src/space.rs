//! World ↔ unit-square coordinate mapping.
//!
//! The paper's experiments run on a 1,000×1,000-unit map (§4.1) or a 1 km²
//! area (§4.3); the spatial indexer itself works on `[0,1]²`. A [`Space`]
//! binds the two together and fixes the curve kind and the base (leaf)
//! indexing level `ls` used for the Spatial Index Table.

use crate::cell::CellId;
use crate::curve::{CurveKind, MAX_LEVEL};
use crate::point::{Point, Rect};
use serde::{Deserialize, Serialize};

/// A configured 2-D space: world bounds, curve kind and leaf level.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Space {
    /// World-coordinate bounds mapped onto the unit square.
    pub world: Rect,
    /// Space-filling curve used for all keys in this space.
    pub curve: CurveKind,
    /// Leaf level `ls` of the Spatial Index Table (§3.4.1).
    pub leaf_level: u8,
}

impl Space {
    /// Creates a space; `leaf_level` is clamped to [`MAX_LEVEL`].
    pub fn new(world: Rect, curve: CurveKind, leaf_level: u8) -> Self {
        Space {
            world,
            curve,
            leaf_level: leaf_level.min(MAX_LEVEL),
        }
    }

    /// The paper's synthetic map: 1,000×1,000 units, Hilbert curve,
    /// leaf level 20 (≈1-unit cells on a 1,000-unit map would be level 10;
    /// level 20 gives ~1 mm resolution, comfortably finer than GPS noise).
    pub fn paper_map() -> Self {
        Space::new(Rect::new(0.0, 0.0, 1000.0, 1000.0), CurveKind::Hilbert, 20)
    }

    /// A 1 km² space where one world unit is one metre (the §4.3 setting,
    /// where "Search Level 19" cells are 8 m and level 20 cells are 4 m on
    /// Earth; on a 1 km map those sizes correspond to levels 7 and 8 — we
    /// keep the paper's *metre* semantics by exposing helpers below).
    pub fn one_km() -> Self {
        Space::new(Rect::new(0.0, 0.0, 1000.0, 1000.0), CurveKind::Hilbert, 20)
    }

    /// Converts world coordinates to unit-square coordinates (clamping).
    #[inline]
    pub fn to_unit(&self, p: &Point) -> Point {
        let w = self.world.width().max(f64::MIN_POSITIVE);
        let h = self.world.height().max(f64::MIN_POSITIVE);
        Point::new(
            ((p.x - self.world.min_x) / w).clamp(0.0, 1.0),
            ((p.y - self.world.min_y) / h).clamp(0.0, 1.0),
        )
    }

    /// Converts unit-square coordinates back to world coordinates.
    #[inline]
    pub fn to_world(&self, p: &Point) -> Point {
        Point::new(
            self.world.min_x + p.x * self.world.width(),
            self.world.min_y + p.y * self.world.height(),
        )
    }

    /// Converts a world-coordinate rect to unit coordinates.
    pub fn rect_to_unit(&self, r: &Rect) -> Rect {
        let a = self.to_unit(&Point::new(r.min_x, r.min_y));
        let b = self.to_unit(&Point::new(r.max_x, r.max_y));
        Rect::new(a.x, a.y, b.x, b.y)
    }

    /// Leaf cell containing the world point `p`.
    #[inline]
    pub fn leaf_cell(&self, p: &Point) -> CellId {
        CellId::from_point(self.curve, self.leaf_level, &self.to_unit(p))
    }

    /// Cell at an arbitrary `level` containing the world point `p`.
    #[inline]
    pub fn cell_at(&self, level: u8, p: &Point) -> CellId {
        CellId::from_point(self.curve, level, &self.to_unit(p))
    }

    /// World-units side length of a cell at `level`.
    #[inline]
    pub fn cell_side_world(&self, level: u8) -> f64 {
        self.world.width() / (1u64 << level) as f64
    }

    /// The finest level whose cells are at least `side` world units wide.
    ///
    /// Used to translate the paper's "8 m-long square" style settings into
    /// levels for this space.
    pub fn level_for_cell_side(&self, side: f64) -> u8 {
        if side <= 0.0 {
            return self.leaf_level;
        }
        let mut level = 0u8;
        while level < self.leaf_level && self.cell_side_world(level + 1) >= side {
            level += 1;
        }
        level
    }

    /// Distance in world units between two world points (Euclidean; world
    /// units are metres in the 1 km² experiments).
    #[inline]
    pub fn world_distance(&self, a: &Point, b: &Point) -> f64 {
        a.distance(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_roundtrip() {
        let s = Space::paper_map();
        let p = Point::new(123.4, 987.6);
        let back = s.to_world(&s.to_unit(&p));
        assert!((back.x - p.x).abs() < 1e-9 && (back.y - p.y).abs() < 1e-9);
    }

    #[test]
    fn to_unit_clamps() {
        let s = Space::paper_map();
        let u = s.to_unit(&Point::new(-5.0, 2000.0));
        assert_eq!(u, Point::new(0.0, 1.0));
    }

    #[test]
    fn leaf_cell_contains_point() {
        let s = Space::paper_map();
        let p = Point::new(250.0, 750.0);
        let cell = s.leaf_cell(&p);
        assert!(cell.bounds(s.curve).contains(&s.to_unit(&p)));
        assert_eq!(cell.level, s.leaf_level);
    }

    #[test]
    fn cell_side_world_shrinks_with_level() {
        let s = Space::one_km();
        assert_eq!(s.cell_side_world(0), 1000.0);
        assert_eq!(s.cell_side_world(1), 500.0);
        // Level 7 on a 1 km map ≈ 7.8 m — the paper's "level 19 (8 m)" analogue.
        assert!((s.cell_side_world(7) - 7.8125).abs() < 1e-9);
    }

    #[test]
    fn level_for_cell_side_matches_paper_settings() {
        let s = Space::one_km();
        // Want cells of at least 8 m: level 6 gives 15.6 m, level 7 gives 7.8 m.
        // The finest level with side >= 8 is 6.
        assert_eq!(s.level_for_cell_side(8.0), 6);
        assert_eq!(s.level_for_cell_side(7.8), 7);
        assert_eq!(s.level_for_cell_side(0.0), s.leaf_level);
        assert_eq!(s.level_for_cell_side(1e9), 0);
    }

    #[test]
    fn degenerate_world_rect_does_not_divide_by_zero() {
        let s = Space::new(Rect::new(5.0, 5.0, 5.0, 5.0), CurveKind::Hilbert, 10);
        let u = s.to_unit(&Point::new(5.0, 5.0));
        assert!(u.x.is_finite() && u.y.is_finite());
    }
}
