//! Planar geometry primitives: points, velocities and axis-aligned rectangles.
//!
//! MOIST works in a normalised unit square `[0,1)²` internally (the paper's
//! `h(·) : [0,1]² → [0,1]` spatial-index function, §3.2.1). World coordinates
//! (e.g. the paper's 1,000×1,000-unit map, §4.1) are mapped to the unit square
//! by [`crate::space::Space`].

use serde::{Deserialize, Serialize};

/// A point in the plane.
///
/// Coordinates are interpreted either as world units or normalised unit-square
/// coordinates depending on context; the type itself is unit-agnostic.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

impl Point {
    /// Creates a point from its coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn distance(&self, other: &Point) -> f64 {
        self.distance_squared(other).sqrt()
    }

    /// Squared Euclidean distance to `other` (avoids the `sqrt` when only
    /// comparisons are needed, e.g. in the NN priority queues of §3.4).
    #[inline]
    pub fn distance_squared(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Vector displacement from `self` to `other` (the paper's `i → j`
    /// displacement stored in Follower Info records, §3.1.1).
    #[inline]
    pub fn displacement_to(&self, other: &Point) -> Displacement {
        Displacement {
            dx: other.x - self.x,
            dy: other.y - self.y,
        }
    }

    /// Translates this point by a displacement.
    #[inline]
    pub fn translate(&self, d: Displacement) -> Point {
        Point::new(self.x + d.dx, self.y + d.dy)
    }

    /// Position after moving with velocity `v` for `dt` seconds (the linear
    /// motion model used when estimating a follower's location, §3.3.1).
    #[inline]
    pub fn advance(&self, v: Velocity, dt: f64) -> Point {
        Point::new(self.x + v.vx * dt, self.y + v.vy * dt)
    }

    /// Returns `true` when both coordinates are finite numbers.
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

/// A 2-D velocity vector in units per second.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Velocity {
    /// Horizontal speed component.
    pub vx: f64,
    /// Vertical speed component.
    pub vy: f64,
}

impl Velocity {
    /// Zero velocity.
    pub const ZERO: Velocity = Velocity { vx: 0.0, vy: 0.0 };

    /// Creates a velocity from its components.
    #[inline]
    pub const fn new(vx: f64, vy: f64) -> Self {
        Velocity { vx, vy }
    }

    /// Scalar speed (magnitude of the vector).
    #[inline]
    pub fn speed(&self) -> f64 {
        (self.vx * self.vx + self.vy * self.vy).sqrt()
    }

    /// Magnitude of the vector difference to `other`.
    ///
    /// Two velocities are "similar" for school clustering when this value is
    /// below the threshold `Δm` (§3.3.2).
    #[inline]
    pub fn difference(&self, other: &Velocity) -> f64 {
        let dx = self.vx - other.vx;
        let dy = self.vy - other.vy;
        (dx * dx + dy * dy).sqrt()
    }

    /// Returns `true` when both components are finite numbers.
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.vx.is_finite() && self.vy.is_finite()
    }
}

/// Displacement vector between two points (`i → j` in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Displacement {
    /// Horizontal offset.
    pub dx: f64,
    /// Vertical offset.
    pub dy: f64,
}

impl Displacement {
    /// Zero displacement.
    pub const ZERO: Displacement = Displacement { dx: 0.0, dy: 0.0 };

    /// Creates a displacement from its components.
    #[inline]
    pub const fn new(dx: f64, dy: f64) -> Self {
        Displacement { dx, dy }
    }

    /// Magnitude of the displacement.
    #[inline]
    pub fn norm(&self) -> f64 {
        (self.dx * self.dx + self.dy * self.dy).sqrt()
    }
}

/// A closed axis-aligned rectangle `[min_x, max_x] × [min_y, max_y]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Rect {
    /// Smallest x coordinate.
    pub min_x: f64,
    /// Smallest y coordinate.
    pub min_y: f64,
    /// Largest x coordinate.
    pub max_x: f64,
    /// Largest y coordinate.
    pub max_y: f64,
}

impl Rect {
    /// Creates a rectangle from its corner coordinates.
    ///
    /// `min_*` must not exceed `max_*`; the constructor normalises swapped
    /// bounds rather than failing so that degenerate inputs stay usable.
    pub fn new(min_x: f64, min_y: f64, max_x: f64, max_y: f64) -> Self {
        Rect {
            min_x: min_x.min(max_x),
            min_y: min_y.min(max_y),
            max_x: min_x.max(max_x),
            max_y: min_y.max(max_y),
        }
    }

    /// The unit square `[0,1]²`.
    pub const UNIT: Rect = Rect {
        min_x: 0.0,
        min_y: 0.0,
        max_x: 1.0,
        max_y: 1.0,
    };

    /// Rectangle width.
    #[inline]
    pub fn width(&self) -> f64 {
        self.max_x - self.min_x
    }

    /// Rectangle height.
    #[inline]
    pub fn height(&self) -> f64 {
        self.max_y - self.min_y
    }

    /// Centre point.
    #[inline]
    pub fn center(&self) -> Point {
        Point::new(
            (self.min_x + self.max_x) / 2.0,
            (self.min_y + self.max_y) / 2.0,
        )
    }

    /// Whether the rectangle contains `p` (closed on all edges).
    #[inline]
    pub fn contains(&self, p: &Point) -> bool {
        p.x >= self.min_x && p.x <= self.max_x && p.y >= self.min_y && p.y <= self.max_y
    }

    /// Whether two rectangles overlap (closed intersection).
    #[inline]
    pub fn intersects(&self, other: &Rect) -> bool {
        self.min_x <= other.max_x
            && other.min_x <= self.max_x
            && self.min_y <= other.max_y
            && other.min_y <= self.max_y
    }

    /// Shortest distance from `p` to any point of the rectangle; zero when
    /// `p` lies inside.
    ///
    /// This is the "distance between a cell and loc" lower bound that drives
    /// the NN cell priority queue (§3.4.1).
    #[inline]
    pub fn distance_to_point(&self, p: &Point) -> f64 {
        let dx = (self.min_x - p.x).max(0.0).max(p.x - self.max_x);
        let dy = (self.min_y - p.y).max(0.0).max(p.y - self.max_y);
        (dx * dx + dy * dy).sqrt()
    }

    /// Clamps a point into the rectangle.
    #[inline]
    pub fn clamp(&self, p: &Point) -> Point {
        Point::new(
            p.x.clamp(self.min_x, self.max_x),
            p.y.clamp(self.min_y, self.max_y),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_symmetric_and_zero_on_self() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(4.0, 6.0);
        assert_eq!(a.distance(&b), 5.0);
        assert_eq!(b.distance(&a), 5.0);
        assert_eq!(a.distance(&a), 0.0);
    }

    #[test]
    fn displacement_roundtrip() {
        let a = Point::new(0.25, 0.5);
        let b = Point::new(0.75, 0.125);
        let d = a.displacement_to(&b);
        let b2 = a.translate(d);
        assert!((b2.x - b.x).abs() < 1e-12 && (b2.y - b.y).abs() < 1e-12);
    }

    #[test]
    fn advance_moves_linearly() {
        let p = Point::new(0.0, 0.0).advance(Velocity::new(1.0, -2.0), 0.5);
        assert_eq!(p, Point::new(0.5, -1.0));
    }

    #[test]
    fn velocity_difference_is_metric_like() {
        let u = Velocity::new(1.0, 0.0);
        let v = Velocity::new(0.0, 1.0);
        assert!((u.difference(&v) - std::f64::consts::SQRT_2).abs() < 1e-12);
        assert_eq!(u.difference(&u), 0.0);
        assert_eq!(u.difference(&v), v.difference(&u));
    }

    #[test]
    fn rect_normalises_swapped_bounds() {
        let r = Rect::new(1.0, 1.0, 0.0, 0.0);
        assert_eq!(r.min_x, 0.0);
        assert_eq!(r.max_x, 1.0);
    }

    #[test]
    fn rect_distance_zero_inside_positive_outside() {
        let r = Rect::new(0.0, 0.0, 1.0, 1.0);
        assert_eq!(r.distance_to_point(&Point::new(0.5, 0.5)), 0.0);
        assert_eq!(r.distance_to_point(&Point::new(2.0, 0.5)), 1.0);
        let corner = r.distance_to_point(&Point::new(2.0, 2.0));
        assert!((corner - std::f64::consts::SQRT_2).abs() < 1e-12);
    }

    #[test]
    fn rect_intersection_cases() {
        let a = Rect::new(0.0, 0.0, 1.0, 1.0);
        let b = Rect::new(0.5, 0.5, 2.0, 2.0);
        let c = Rect::new(1.5, 1.5, 2.0, 2.0);
        assert!(a.intersects(&b));
        assert!(b.intersects(&a));
        assert!(!a.intersects(&c));
        // Touching edges count as intersecting (closed rects).
        let d = Rect::new(1.0, 0.0, 2.0, 1.0);
        assert!(a.intersects(&d));
    }

    #[test]
    fn rect_clamp() {
        let r = Rect::new(0.0, 0.0, 1.0, 1.0);
        assert_eq!(r.clamp(&Point::new(-1.0, 0.5)), Point::new(0.0, 0.5));
        assert_eq!(r.clamp(&Point::new(0.3, 7.0)), Point::new(0.3, 1.0));
    }
}
