//! Space-filling curves: Hilbert and Z-order (Morton).
//!
//! The paper serialises the 2-D space into a 1-D key space with a
//! space-filling curve (§3.2.1) and uses Hilbert curves because they
//! "guarantee locality" — geographically close cells get close key values.
//! Z-curves are also implemented because the paper notes they are applicable
//! but perform slightly worse \[15\]; the `curve_locality` bench quantifies the
//! gap on our own substrate.
//!
//! Both curves here are *recursive quadrant refinements*, so they share the
//! crucial prefix property MOIST relies on: a cell at level `l` with index
//! `i` contains exactly the leaf cells `[i · 4^(L−l), (i+1) · 4^(L−l))` at any
//! deeper level `L`. That is what makes a coarse cell a *contiguous row range*
//! in the Spatial Index Table (§3.4.1, "NN cell").

use serde::{Deserialize, Serialize};

/// Maximum curve level (refinement depth).
///
/// At level 30 an index occupies 60 bits, leaving headroom in a `u64` for
/// face bits when the spherical mapping of [`crate::face`] is in use.
pub const MAX_LEVEL: u8 = 30;

/// Which space-filling curve orders the cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum CurveKind {
    /// Hilbert curve: best locality, the paper's choice.
    #[default]
    Hilbert,
    /// Z-order (Morton) curve: cheaper to compute, worse locality.
    Morton,
}

impl CurveKind {
    /// Maps grid coordinates `(x, y)` at `level` to a curve index in
    /// `[0, 4^level)`.
    ///
    /// # Panics
    /// Debug-asserts that `level ≤ MAX_LEVEL` and the coordinates fit the
    /// `2^level × 2^level` grid; release builds wrap coordinates into range.
    #[inline]
    pub fn index(self, level: u8, x: u32, y: u32) -> u64 {
        debug_assert!(level <= MAX_LEVEL, "curve level {level} out of range");
        let side: u64 = 1 << level;
        debug_assert!((x as u64) < side && (y as u64) < side, "coords off-grid");
        let x = (x as u64) & (side - 1);
        let y = (y as u64) & (side - 1);
        match self {
            CurveKind::Hilbert => hilbert_index(level, x, y),
            CurveKind::Morton => morton_index(x, y),
        }
    }

    /// Inverse of [`CurveKind::index`]: maps a curve index back to grid
    /// coordinates at `level`.
    #[inline]
    pub fn coords(self, level: u8, index: u64) -> (u32, u32) {
        debug_assert!(level <= MAX_LEVEL, "curve level {level} out of range");
        debug_assert!(index < (1u64 << (2 * level as u64)), "index off-curve");
        match self {
            CurveKind::Hilbert => hilbert_coords(level, index),
            CurveKind::Morton => morton_coords(index),
        }
    }
}

/// Hilbert curve `(x, y) → d` at `level` (grid side `2^level`).
///
/// Classic bit-twiddling formulation (Hamilton's compact variant of the
/// Butz algorithm); `O(level)` time, no tables.
fn hilbert_index(level: u8, mut x: u64, mut y: u64) -> u64 {
    let mut d: u64 = 0;
    let mut s: u64 = if level == 0 { 0 } else { 1 << (level - 1) };
    while s > 0 {
        let rx = u64::from((x & s) > 0);
        let ry = u64::from((y & s) > 0);
        d += s * s * ((3 * rx) ^ ry);
        // Drop the consumed bit, then rotate/flip the quadrant so the
        // sub-curve is in canonical orientation.
        x &= s - 1;
        y &= s - 1;
        if ry == 0 {
            if rx == 1 {
                x = s - 1 - x;
                y = s - 1 - y;
            }
            std::mem::swap(&mut x, &mut y);
        }
        s >>= 1;
    }
    d
}

/// Hilbert curve `d → (x, y)` at `level`.
fn hilbert_coords(level: u8, d: u64) -> (u32, u32) {
    let mut x: u64 = 0;
    let mut y: u64 = 0;
    let mut t = d;
    let mut s: u64 = 1;
    let n: u64 = 1 << level;
    while s < n {
        let rx = 1 & (t / 2);
        let ry = 1 & (t ^ rx);
        // Rotate.
        if ry == 0 {
            if rx == 1 {
                x = s - 1 - x;
                y = s - 1 - y;
            }
            std::mem::swap(&mut x, &mut y);
        }
        x += s * rx;
        y += s * ry;
        t /= 4;
        s *= 2;
    }
    (x as u32, y as u32)
}

/// Z-order (Morton) `(x, y) → d`: interleaves the bits of `x` and `y`.
fn morton_index(x: u64, y: u64) -> u64 {
    spread_bits(x) | (spread_bits(y) << 1)
}

/// Z-order `d → (x, y)`.
fn morton_coords(d: u64) -> (u32, u32) {
    (compact_bits(d) as u32, compact_bits(d >> 1) as u32)
}

/// Spreads the low 32 bits of `v` so bit `i` moves to bit `2i`.
#[inline]
fn spread_bits(mut v: u64) -> u64 {
    v &= 0xFFFF_FFFF;
    v = (v | (v << 16)) & 0x0000_FFFF_0000_FFFF;
    v = (v | (v << 8)) & 0x00FF_00FF_00FF_00FF;
    v = (v | (v << 4)) & 0x0F0F_0F0F_0F0F_0F0F;
    v = (v | (v << 2)) & 0x3333_3333_3333_3333;
    v = (v | (v << 1)) & 0x5555_5555_5555_5555;
    v
}

/// Inverse of [`spread_bits`].
#[inline]
fn compact_bits(mut v: u64) -> u64 {
    v &= 0x5555_5555_5555_5555;
    v = (v | (v >> 1)) & 0x3333_3333_3333_3333;
    v = (v | (v >> 2)) & 0x0F0F_0F0F_0F0F_0F0F;
    v = (v | (v >> 4)) & 0x00FF_00FF_00FF_00FF;
    v = (v | (v >> 8)) & 0x0000_FFFF_0000_FFFF;
    v = (v | (v >> 16)) & 0x0000_0000_FFFF_FFFF;
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hilbert_level_1_matches_canonical_order() {
        // The level-1 Hilbert curve visits (0,0) (0,1) (1,1) (1,0).
        assert_eq!(hilbert_index(1, 0, 0), 0);
        assert_eq!(hilbert_index(1, 0, 1), 1);
        assert_eq!(hilbert_index(1, 1, 1), 2);
        assert_eq!(hilbert_index(1, 1, 0), 3);
    }

    #[test]
    fn hilbert_level_2_is_a_permutation_with_unit_steps() {
        let level = 2;
        let side = 1u32 << level;
        let mut seen = vec![false; (side * side) as usize];
        for x in 0..side {
            for y in 0..side {
                let d = hilbert_index(level, x as u64, y as u64);
                assert!(!seen[d as usize], "duplicate index {d}");
                seen[d as usize] = true;
            }
        }
        // Consecutive indexes differ by exactly one grid step (the defining
        // Hilbert property; Z-order does not have it).
        let mut prev = hilbert_coords(level, 0);
        for d in 1..(side * side) as u64 {
            let cur = hilbert_coords(level, d);
            let dist = (prev.0 as i64 - cur.0 as i64).abs() + (prev.1 as i64 - cur.1 as i64).abs();
            assert_eq!(dist, 1, "non-adjacent step at d={d}");
            prev = cur;
        }
    }

    #[test]
    fn hilbert_roundtrip_exhaustive_small_levels() {
        for level in 0..=6u8 {
            let side = 1u64 << level;
            for x in 0..side {
                for y in 0..side {
                    let d = hilbert_index(level, x, y);
                    assert!(d < side * side);
                    let (x2, y2) = hilbert_coords(level, d);
                    assert_eq!((x2 as u64, y2 as u64), (x, y), "level {level}");
                }
            }
        }
    }

    #[test]
    fn morton_roundtrip_exhaustive_small_levels() {
        for level in 0..=6u8 {
            let side = 1u64 << level;
            for x in 0..side {
                for y in 0..side {
                    let d = morton_index(x, y);
                    let (x2, y2) = morton_coords(d);
                    assert_eq!((x2 as u64, y2 as u64), (x, y));
                }
            }
        }
    }

    #[test]
    fn hilbert_prefix_property() {
        // A level-l cell's children occupy indexes 4i..4i+4 at level l+1.
        for level in 1..=8u8 {
            let side = 1u64 << level;
            for _ in 0..64 {
                // Deterministic pseudo-random sample of cells.
                let i = (level as u64 * 2654435761) % (side * side / 4).max(1);
                let (px, py) = hilbert_coords(level - 1, i);
                let mut child_indexes: Vec<u64> = Vec::new();
                for cx in 0..2u64 {
                    for cy in 0..2u64 {
                        let d = hilbert_index(level, (px as u64) * 2 + cx, (py as u64) * 2 + cy);
                        child_indexes.push(d);
                    }
                }
                child_indexes.sort_unstable();
                assert_eq!(child_indexes, vec![4 * i, 4 * i + 1, 4 * i + 2, 4 * i + 3]);
            }
        }
    }

    #[test]
    fn level_30_roundtrips_at_extremes() {
        let level = MAX_LEVEL;
        let max = (1u64 << level) - 1;
        for (x, y) in [(0, 0), (max, 0), (0, max), (max, max), (max / 2, max / 3)] {
            for kind in [CurveKind::Hilbert, CurveKind::Morton] {
                let d = kind.index(level, x as u32, y as u32);
                assert_eq!(kind.coords(level, d), (x as u32, y as u32));
            }
        }
    }
}
