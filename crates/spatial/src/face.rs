//! Spherical-to-planar mapping via a cube with six faces.
//!
//! §3.2.1: "In the case of the surface of the Earth as 2-D space …, the 2-D
//! surface is first partitioned into six square parts, and Hilbert Curves are
//! employed to each part." This module provides that projection: a lat/lng
//! coordinate is mapped to one of six cube faces plus a `(u, v)` position in
//! that face's unit square, and the face id is prepended to the curve index
//! to form a globally ordered key.
//!
//! The projection is the gnomonic (central) projection onto the unit cube —
//! the same family S2 uses (we use the *linear* variant; S2's quadratic
//! re-parameterisation only evens out cell areas and does not change any
//! algorithmic property MOIST relies on).

use crate::cell::CellId;
use crate::curve::CurveKind;
use crate::point::Point;
use serde::{Deserialize, Serialize};

/// One of the six cube faces. Numbering follows the axis the face is
/// perpendicular to: 0:+X, 1:+Y, 2:+Z, 3:−X, 4:−Y, 5:−Z.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Face(pub u8);

/// A position on the sphere expressed as a face plus in-face unit-square
/// coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FacePoint {
    /// Which cube face the point projects onto.
    pub face: Face,
    /// In-face coordinates in `[0,1]²`.
    pub uv: Point,
}

/// A cell on the sphere: a face plus a planar cell within that face.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FaceCellId {
    /// Cube face (major sort key, mirroring S2's face-major ordering).
    pub face: Face,
    /// Planar cell within the face.
    pub cell: CellId,
}

impl PartialOrd for Face {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Face {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.cmp(&other.0)
    }
}

/// Geographic coordinate in degrees.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatLng {
    /// Latitude in degrees, `[-90, 90]`.
    pub lat_deg: f64,
    /// Longitude in degrees, `[-180, 180]`.
    pub lng_deg: f64,
}

impl LatLng {
    /// Creates a coordinate; values are taken as-is (callers validate range).
    pub const fn new(lat_deg: f64, lng_deg: f64) -> Self {
        LatLng { lat_deg, lng_deg }
    }

    /// Unit direction vector on the sphere.
    fn to_xyz(self) -> [f64; 3] {
        let lat = self.lat_deg.to_radians();
        let lng = self.lng_deg.to_radians();
        [lat.cos() * lng.cos(), lat.cos() * lng.sin(), lat.sin()]
    }

    /// Projects onto the cube: picks the face whose axis has the largest
    /// absolute component, then scales the other two components into `[0,1]`.
    pub fn to_face_point(self) -> FacePoint {
        let [x, y, z] = self.to_xyz();
        let (ax, ay, az) = (x.abs(), y.abs(), z.abs());
        let (face, u, v) = if ax >= ay && ax >= az {
            if x >= 0.0 {
                (0, y / ax, z / ax)
            } else {
                (3, -y / ax, z / ax)
            }
        } else if ay >= ax && ay >= az {
            if y >= 0.0 {
                (1, -x / ay, z / ay)
            } else {
                (4, x / ay, z / ay)
            }
        } else if z >= 0.0 {
            (2, y / az, -x / az)
        } else {
            (5, y / az, x / az)
        };
        FacePoint {
            face: Face(face),
            uv: Point::new((u + 1.0) / 2.0, (v + 1.0) / 2.0),
        }
    }
}

impl FacePoint {
    /// Inverse projection back to geographic coordinates.
    pub fn to_lat_lng(self) -> LatLng {
        let u = self.uv.x * 2.0 - 1.0;
        let v = self.uv.y * 2.0 - 1.0;
        let (x, y, z) = match self.face.0 {
            0 => (1.0, u, v),
            1 => (-u, 1.0, v),
            2 => (-v, u, 1.0),
            3 => (-1.0, -u, v),
            4 => (u, -1.0, v),
            _ => (v, u, -1.0),
        };
        let norm = (x * x + y * y + z * z).sqrt();
        LatLng {
            lat_deg: (z / norm).asin().to_degrees(),
            lng_deg: y.atan2(x).to_degrees(),
        }
    }

    /// The spherical cell containing this point at `level`.
    pub fn cell(self, curve: CurveKind, level: u8) -> FaceCellId {
        FaceCellId {
            face: self.face,
            cell: CellId::from_point(curve, level, &self.uv),
        }
    }
}

impl FaceCellId {
    /// Packs `(face, cell)` into a single sortable `u64` key:
    /// 3 face bits, then the curve index left-aligned at `MAX_LEVEL`
    /// resolution so keys of different levels interleave correctly.
    pub fn to_key(self) -> u64 {
        let shift = 2 * (crate::curve::MAX_LEVEL - self.cell.level) as u64;
        ((self.face.0 as u64) << 61) | (self.cell.index << shift)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_face_is_reachable() {
        let probes = [
            LatLng::new(0.0, 0.0),    // +X
            LatLng::new(0.0, 90.0),   // +Y
            LatLng::new(89.0, 10.0),  // +Z
            LatLng::new(0.0, 179.0),  // −X
            LatLng::new(0.0, -90.0),  // −Y
            LatLng::new(-89.0, 10.0), // −Z
        ];
        let mut faces: Vec<u8> = probes.iter().map(|p| p.to_face_point().face.0).collect();
        faces.sort_unstable();
        faces.dedup();
        assert_eq!(faces, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn projection_roundtrips() {
        for lat in [-80.0, -45.0, -1.0, 0.0, 33.3, 60.0, 85.0] {
            for lng in [-179.0, -90.0, -10.0, 0.0, 45.0, 120.0, 179.0] {
                let ll = LatLng::new(lat, lng);
                let back = ll.to_face_point().to_lat_lng();
                assert!(
                    (back.lat_deg - lat).abs() < 1e-9,
                    "lat {lat} -> {}",
                    back.lat_deg
                );
                let mut dl = (back.lng_deg - lng).abs();
                if dl > 180.0 {
                    dl = 360.0 - dl;
                }
                assert!(dl < 1e-9, "lng {lng} -> {}", back.lng_deg);
            }
        }
    }

    #[test]
    fn uv_is_in_unit_square() {
        for lat in (-89..=89).step_by(7) {
            for lng in (-179..=179).step_by(13) {
                let fp = LatLng::new(lat as f64, lng as f64).to_face_point();
                assert!((0.0..=1.0).contains(&fp.uv.x), "u out of range");
                assert!((0.0..=1.0).contains(&fp.uv.y), "v out of range");
            }
        }
    }

    #[test]
    fn keys_sort_face_major() {
        let a = LatLng::new(0.0, 0.0)
            .to_face_point()
            .cell(CurveKind::Hilbert, 10);
        let b = LatLng::new(0.0, 90.0)
            .to_face_point()
            .cell(CurveKind::Hilbert, 10);
        assert!(a.face < b.face);
        assert!(a.to_key() < b.to_key());
    }

    #[test]
    fn nearby_points_share_coarse_cells() {
        let a = LatLng::new(25.0330, 121.5654); // Taipei (the §5 deployment)
        let b = LatLng::new(25.0340, 121.5660);
        let ca = a.to_face_point().cell(CurveKind::Hilbert, 8);
        let cb = b.to_face_point().cell(CurveKind::Hilbert, 8);
        assert_eq!(ca, cb);
    }
}
