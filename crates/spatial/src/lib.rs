//! # moist-spatial
//!
//! S2Cell-style hierarchical spatial indexing primitives for the MOIST
//! moving-object indexer (Jiang et al., VLDB 2012, §3.2).
//!
//! The crate provides:
//!
//! * [`curve`] — Hilbert and Z-order space-filling curves with the prefix
//!   (hierarchical containment) property MOIST's batch reads depend on;
//! * [`cell`] — hierarchical [`cell::CellId`]s: parent/children, edge
//!   neighbours, bounds, contiguous descendant key ranges, rect covering;
//! * [`point`] — points, velocities, displacements and rectangles;
//! * [`space`] — world ↔ unit-square mapping plus level/size conversions;
//! * [`face`] — the six-cube-face spherical projection of §3.2.1 for
//!   indexing real geographic coordinates.
//!
//! ```
//! use moist_spatial::{CellId, CurveKind, Point, Space};
//!
//! let space = Space::paper_map();
//! let cell = space.leaf_cell(&Point::new(250.0, 750.0));
//! // A coarser "NN cell" is a contiguous range of leaf keys (§3.4.1):
//! let nn_cell = cell.ancestor_at(10).unwrap();
//! let (start, end) = nn_cell.descendant_range(space.leaf_level).unwrap();
//! assert!(start <= cell.index && cell.index < end);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cell;
pub mod curve;
pub mod face;
pub mod point;
pub mod space;

pub use cell::{cells_at_level, cover_rect, CellId};
pub use curve::{CurveKind, MAX_LEVEL};
pub use face::{Face, FaceCellId, FacePoint, LatLng};
pub use point::{Displacement, Point, Rect, Velocity};
pub use space::Space;
