//! Property-based tests for the spatial substrate.
//!
//! These pin down the invariants MOIST's correctness rests on: curve
//! bijectivity, the prefix/containment property that makes cells contiguous
//! key ranges, Hilbert locality, and geometric consistency of cell algebra.

use moist_spatial::{cells_at_level, cover_rect, CellId, CurveKind, Point, Rect, Space};
use proptest::prelude::*;

fn curve_kind() -> impl Strategy<Value = CurveKind> {
    prop_oneof![Just(CurveKind::Hilbert), Just(CurveKind::Morton)]
}

proptest! {
    /// index ∘ coords is the identity for both curves at every level.
    #[test]
    fn curve_roundtrip(kind in curve_kind(), level in 0u8..=30, seed in any::<u64>()) {
        let side = 1u64 << level;
        let x = (seed % side) as u32;
        let y = ((seed >> 32) % side) as u32;
        let d = kind.index(level, x, y);
        prop_assert!(d < cells_at_level(level));
        prop_assert_eq!(kind.coords(level, d), (x, y));
    }

    /// Hilbert: consecutive curve indexes are grid-adjacent (locality).
    #[test]
    fn hilbert_steps_are_adjacent(level in 1u8..=12, seed in any::<u64>()) {
        let n = cells_at_level(level);
        let d = seed % (n - 1);
        let (x0, y0) = CurveKind::Hilbert.coords(level, d);
        let (x1, y1) = CurveKind::Hilbert.coords(level, d + 1);
        let step = (x0 as i64 - x1 as i64).abs() + (y0 as i64 - y1 as i64).abs();
        prop_assert_eq!(step, 1);
    }

    /// A point's cell at level l+1 is a child of its cell at level l,
    /// for the whole ancestry chain.
    #[test]
    fn from_point_is_hierarchical(
        kind in curve_kind(),
        x in 0.0f64..1.0,
        y in 0.0f64..1.0,
        level in 1u8..=20,
    ) {
        let p = Point::new(x, y);
        let fine = CellId::from_point(kind, level, &p);
        let coarse = CellId::from_point(kind, level - 1, &p);
        prop_assert_eq!(fine.parent(), Some(coarse));
        prop_assert!(coarse.contains_cell(&fine));
        prop_assert!(fine.bounds(kind).contains(&p));
    }

    /// descendant_range is exactly the set of leaves whose ancestor is the cell.
    #[test]
    fn descendant_range_matches_ancestry(
        level in 0u8..=8,
        target_extra in 0u8..=4,
        seed in any::<u64>(),
    ) {
        let target = level + target_extra;
        let idx = seed % cells_at_level(level);
        let cell = CellId::new(level, idx).unwrap();
        let (start, end) = cell.descendant_range(target).unwrap();
        prop_assert_eq!(end - start, cells_at_level(target_extra));
        // Spot-check the borders.
        let first = CellId::new(target, start).unwrap();
        let last = CellId::new(target, end - 1).unwrap();
        prop_assert_eq!(first.ancestor_at(level), Some(cell));
        prop_assert_eq!(last.ancestor_at(level), Some(cell));
    }

    /// Edge neighbourhood is symmetric and all neighbours touch the cell.
    #[test]
    fn neighbors_symmetric(kind in curve_kind(), level in 1u8..=10, seed in any::<u64>()) {
        let idx = seed % cells_at_level(level);
        let cell = CellId::new(level, idx).unwrap();
        let b = cell.bounds(kind);
        for n in cell.edge_neighbors(kind) {
            prop_assert!(n.edge_neighbors(kind).contains(&cell));
            // Closed rects of edge-adjacent cells intersect along the shared edge.
            prop_assert!(n.bounds(kind).intersects(&b));
            prop_assert_ne!(n, cell);
        }
    }

    /// Distance from a point to its own cell is zero; to any other same-level
    /// cell it is positive or the cells share a boundary.
    #[test]
    fn cell_distance_lower_bound(
        kind in curve_kind(),
        x in 0.0f64..1.0,
        y in 0.0f64..1.0,
        level in 1u8..=10,
        seed in any::<u64>(),
    ) {
        let p = Point::new(x, y);
        let own = CellId::from_point(kind, level, &p);
        prop_assert_eq!(own.distance_to_point(kind, &p), 0.0);
        let other = CellId::new(level, seed % cells_at_level(level)).unwrap();
        // Distance to any cell never exceeds distance to any point in it:
        // use the centre as a witness.
        let witness = other.center(kind);
        prop_assert!(other.distance_to_point(kind, &p) <= p.distance(&witness) + 1e-12);
    }

    /// cover_rect returns every same-level cell whose interior intersects the
    /// rect, and nothing else (checked against brute force on small levels).
    #[test]
    fn cover_rect_is_exact(
        kind in curve_kind(),
        x0 in 0.0f64..1.0, y0 in 0.0f64..1.0,
        w in 0.0f64..0.5, h in 0.0f64..0.5,
        level in 1u8..=5,
    ) {
        let rect = Rect::new(x0, y0, (x0 + w).min(1.0), (y0 + h).min(1.0));
        let got = cover_rect(kind, level, &rect);
        // Brute force: open-interior intersection test with half-open cells.
        let side = 1u64 << level;
        let mut want = vec![];
        for gx in 0..side {
            for gy in 0..side {
                let cell = CellId::new(level, kind.index(level, gx as u32, gy as u32)).unwrap();
                let b = cell.bounds(kind);
                // A cell is included when the rect's clamped grid span covers it.
                let inc_x = rect.min_x < b.max_x && rect.max_x >= b.min_x;
                let inc_y = rect.min_y < b.max_y && rect.max_y >= b.min_y;
                if inc_x && inc_y {
                    want.push(cell);
                }
            }
        }
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    /// World/unit mapping round-trips inside the world rect.
    #[test]
    fn space_roundtrip(x in 0.0f64..1000.0, y in 0.0f64..1000.0) {
        let s = Space::paper_map();
        let p = Point::new(x, y);
        let back = s.to_world(&s.to_unit(&p));
        prop_assert!((back.x - x).abs() < 1e-6);
        prop_assert!((back.y - y).abs() < 1e-6);
    }
}
