//! Property-based tests of the PPP archiving pipeline: no record loss, no
//! duplication, object/time/region query correctness against an oracle,
//! and placement/ping-pong invariants.

use moist_archive::{DiskProfile, HistoryRecord, PppArchiver, PppConfig, RECORD_BYTES};
use moist_spatial::{Point, Rect, Space, Velocity};
use proptest::prelude::*;
use std::collections::HashMap;

fn config(num_disks: u32, column_records: usize, buffer_records: usize) -> PppConfig {
    PppConfig {
        num_disks,
        total_buffer_bytes: buffer_records.max(1) * RECORD_BYTES * num_disks.max(1) as usize,
        column_records,
        placement_level: 3,
        disk: DiskProfile::default(),
    }
}

#[derive(Debug, Clone)]
struct Ingest {
    oid: u64,
    x: f64,
    y: f64,
    dt_us: u64,
}

fn ingest_strategy(objects: u64) -> impl Strategy<Value = Ingest> {
    (0..objects, 0.0f64..1000.0, 0.0f64..1000.0, 1u64..2_000_000)
        .prop_map(|(oid, x, y, dt_us)| Ingest { oid, x, y, dt_us })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every ingested record is returned by its object query exactly once,
    /// in time order, regardless of buffer/column/disk geometry.
    #[test]
    fn no_loss_no_duplication(
        ingests in prop::collection::vec(ingest_strategy(6), 1..120),
        num_disks in 1u32..6,
        column_records in 1usize..8,
        buffer_records in 1usize..16,
    ) {
        let archiver = PppArchiver::new(
            Space::paper_map(),
            config(num_disks, column_records, buffer_records),
        );
        let mut oracle: HashMap<u64, Vec<u64>> = HashMap::new();
        let mut now = 0u64;
        for (i, ing) in ingests.iter().enumerate() {
            now += ing.dt_us;
            // Unique timestamps per object: now + index disambiguates.
            let ts = now + i as u64;
            archiver.ingest(
                HistoryRecord::new(ing.oid, ts, Point::new(ing.x, ing.y), Velocity::ZERO),
                ts,
            );
            oracle.entry(ing.oid).or_default().push(ts);
        }
        archiver.flush_all();
        for (oid, mut expected) in oracle {
            expected.sort_unstable();
            let (got, cost) = archiver.query_object(oid, 0, u64::MAX);
            let got_ts: Vec<u64> = got.iter().map(|r| r.ts_us).collect();
            prop_assert_eq!(&got_ts, &expected, "object {} history mismatch", oid);
            prop_assert!(cost.disks_touched <= 1);
        }
    }

    /// Time-windowed object queries return exactly the in-window records.
    #[test]
    fn time_window_filtering_is_exact(
        count in 1usize..60,
        lo in 0u64..50,
        span in 1u64..50,
    ) {
        let archiver = PppArchiver::new(Space::paper_map(), config(3, 4, 8));
        for t in 0..count as u64 {
            archiver.ingest(
                HistoryRecord::new(1, t, Point::new(500.0, 500.0), Velocity::ZERO),
                t,
            );
        }
        archiver.flush_all();
        let hi = lo + span;
        let (got, _) = archiver.query_object(1, lo, hi);
        let expected: Vec<u64> = (0..count as u64).filter(|t| (lo..=hi).contains(t)).collect();
        let got_ts: Vec<u64> = got.iter().map(|r| r.ts_us).collect();
        prop_assert_eq!(got_ts, expected);
    }

    /// Region queries return exactly the records whose position is inside
    /// the rect (within the time window), no matter how placement spread
    /// them across disks.
    #[test]
    fn region_queries_match_oracle(
        ingests in prop::collection::vec(ingest_strategy(10), 1..80),
        rx in 0.0f64..800.0,
        ry in 0.0f64..800.0,
        side in 10.0f64..300.0,
    ) {
        let archiver = PppArchiver::new(Space::paper_map(), config(4, 2, 4));
        let mut all = Vec::new();
        let mut now = 0u64;
        for (i, ing) in ingests.iter().enumerate() {
            now += ing.dt_us;
            let ts = now + i as u64;
            let rec = HistoryRecord::new(ing.oid, ts, Point::new(ing.x, ing.y), Velocity::ZERO);
            archiver.ingest(rec, ts);
            all.push(rec);
        }
        archiver.flush_all();
        let rect = Rect::new(rx, ry, rx + side, ry + side);
        // Teleporting objects need the full-drift margin for exactness.
        let (got, _) = archiver.query_region(&rect, 0, u64::MAX, 1500.0);
        let mut expected: Vec<(u64, u64)> = all
            .iter()
            .filter(|r| rect.contains(&r.loc))
            .map(|r| (r.oid, r.ts_us))
            .collect();
        expected.sort_unstable();
        let got_keys: Vec<(u64, u64)> = got.iter().map(|r| (r.oid, r.ts_us)).collect();
        prop_assert_eq!(got_keys, expected);
    }

    /// Placement is a pure function of the initial location and respects
    /// the disk count.
    #[test]
    fn placement_is_stable_and_bounded(
        x in 0.0f64..1000.0,
        y in 0.0f64..1000.0,
        num_disks in 1u32..9,
    ) {
        let archiver = PppArchiver::new(Space::paper_map(), config(num_disks, 4, 8));
        let p = Point::new(x, y);
        let d1 = archiver.disk_for_initial_location(&p);
        let d2 = archiver.disk_for_initial_location(&p);
        prop_assert_eq!(d1, d2);
        prop_assert!(d1 < num_disks as usize);
    }

    /// Conservation: pages on disk + buffered + pending = ingested, and
    /// after flush_all the buffers are empty.
    #[test]
    fn record_conservation(
        ingests in prop::collection::vec(ingest_strategy(5), 1..100),
    ) {
        let archiver = PppArchiver::new(Space::paper_map(), config(3, 3, 6));
        let mut now = 0u64;
        for (i, ing) in ingests.iter().enumerate() {
            now += ing.dt_us;
            archiver.ingest(
                HistoryRecord::new(ing.oid, now + i as u64, Point::new(ing.x, ing.y), Velocity::ZERO),
                now + i as u64,
            );
        }
        archiver.flush_all();
        let on_disk: u64 = archiver
            .disk_stats()
            .iter()
            .map(|s| s.bytes_written / RECORD_BYTES as u64)
            .sum();
        prop_assert_eq!(on_disk, ingests.len() as u64, "records lost or duplicated");
    }
}
