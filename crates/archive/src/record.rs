//! History records: the archived unit of MOIST's aged-data pipeline.

use moist_spatial::{Point, Velocity};
use serde::{Deserialize, Serialize};

/// One archived location fix of one object.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HistoryRecord {
    /// Object id.
    pub oid: u64,
    /// Fix timestamp in microseconds of simulation time.
    pub ts_us: u64,
    /// World-coordinate location.
    pub loc: Point,
    /// Velocity at the fix.
    pub vel: Velocity,
}

/// Fixed on-disk size of one encoded record, bytes.
pub const RECORD_BYTES: usize = 48;

impl HistoryRecord {
    /// Creates a record.
    pub fn new(oid: u64, ts_us: u64, loc: Point, vel: Velocity) -> Self {
        HistoryRecord {
            oid,
            ts_us,
            loc,
            vel,
        }
    }

    /// Fixed-width binary encoding (48 bytes: oid, ts, x, y, vx, vy).
    pub fn encode(&self) -> [u8; RECORD_BYTES] {
        let mut buf = [0u8; RECORD_BYTES];
        buf[0..8].copy_from_slice(&self.oid.to_le_bytes());
        buf[8..16].copy_from_slice(&self.ts_us.to_le_bytes());
        buf[16..24].copy_from_slice(&self.loc.x.to_le_bytes());
        buf[24..32].copy_from_slice(&self.loc.y.to_le_bytes());
        buf[32..40].copy_from_slice(&self.vel.vx.to_le_bytes());
        buf[40..48].copy_from_slice(&self.vel.vy.to_le_bytes());
        buf
    }

    /// Decodes a record written by [`HistoryRecord::encode`].
    pub fn decode(buf: &[u8]) -> Option<HistoryRecord> {
        if buf.len() < RECORD_BYTES {
            return None;
        }
        let f = |r: std::ops::Range<usize>| f64::from_le_bytes(buf[r].try_into().unwrap());
        Some(HistoryRecord {
            oid: u64::from_le_bytes(buf[0..8].try_into().unwrap()),
            ts_us: u64::from_le_bytes(buf[8..16].try_into().unwrap()),
            loc: Point::new(f(16..24), f(24..32)),
            vel: Velocity::new(f(32..40), f(40..48)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        let r = HistoryRecord::new(
            0xDEAD_BEEF,
            1_234_567,
            Point::new(-3.25, 999.75),
            Velocity::new(0.5, -1.5),
        );
        let back = HistoryRecord::decode(&r.encode()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn decode_rejects_short_buffers() {
        assert!(HistoryRecord::decode(&[0u8; RECORD_BYTES - 1]).is_none());
    }
}
