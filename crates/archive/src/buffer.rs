//! Ping-pong (double) buffering.
//!
//! §3.5: "While updates are taking place on one memory buffer, another
//! memory buffer is flushed onto the disk. What we must ensure … is that the
//! time it takes to flush aged data from one buffer onto the disk is less
//! than the time it takes to fill the other buffer in memory":
//! `min T_m ≥ max T_d`.
//!
//! The buffer is written in units of *columns*: an object's in-memory column
//! of `m` records is copied into the aged buffer only when it is full
//! (§3.6.1), so one append is one object's column.

use crate::record::{HistoryRecord, RECORD_BYTES};

/// Outcome of appending a column to the active buffer.
#[derive(Debug)]
pub enum AppendOutcome {
    /// The column fit; nothing to flush.
    Buffered,
    /// The active buffer filled up and roles were swapped: the returned
    /// records must now be flushed to disk while the (new) active buffer
    /// keeps absorbing appends.
    SwapAndFlush {
        /// Contents of the buffer that just went out of service.
        records: Vec<HistoryRecord>,
        /// Fill duration `T_m` of that buffer in seconds (virtual time from
        /// first append to the swap), when timestamps were provided.
        fill_secs: Option<f64>,
    },
}

/// A double buffer of fixed byte capacity.
#[derive(Debug)]
pub struct PingPongBuffer {
    capacity_records: usize,
    active: Vec<HistoryRecord>,
    /// Virtual time the active buffer received its first record.
    fill_start_us: Option<u64>,
    /// Fill durations of completed buffers, for `min T_m` monitoring.
    fill_history_secs: Vec<f64>,
}

impl PingPongBuffer {
    /// Creates a buffer holding `capacity_bytes` per side.
    pub fn new(capacity_bytes: usize) -> Self {
        PingPongBuffer {
            capacity_records: (capacity_bytes / RECORD_BYTES).max(1),
            active: Vec::new(),
            fill_start_us: None,
            fill_history_secs: Vec::new(),
        }
    }

    /// Per-side capacity in records.
    pub fn capacity_records(&self) -> usize {
        self.capacity_records
    }

    /// Per-side capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.capacity_records * RECORD_BYTES
    }

    /// Records currently in the active buffer.
    pub fn len(&self) -> usize {
        self.active.len()
    }

    /// Whether the active buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.active.is_empty()
    }

    /// Appends one object's aged column at virtual time `now_us`.
    ///
    /// When the active side reaches capacity the sides swap and the full
    /// side's contents are handed back for flushing.
    pub fn append_column(
        &mut self,
        column: impl IntoIterator<Item = HistoryRecord>,
        now_us: u64,
    ) -> AppendOutcome {
        if self.active.is_empty() {
            self.fill_start_us = Some(now_us);
        }
        self.active.extend(column);
        if self.active.len() >= self.capacity_records {
            let records = std::mem::take(&mut self.active);
            let fill_secs = self
                .fill_start_us
                .take()
                .map(|start| (now_us.saturating_sub(start)) as f64 / 1e6);
            if let Some(t) = fill_secs {
                self.fill_history_secs.push(t);
            }
            AppendOutcome::SwapAndFlush { records, fill_secs }
        } else {
            AppendOutcome::Buffered
        }
    }

    /// Drains whatever is buffered (end-of-run flush), regardless of fill.
    pub fn drain(&mut self) -> Vec<HistoryRecord> {
        self.fill_start_us = None;
        std::mem::take(&mut self.active)
    }

    /// Smallest observed fill time `min T_m`, if any buffer completed.
    pub fn min_fill_secs(&self) -> Option<f64> {
        self.fill_history_secs
            .iter()
            .copied()
            .fold(None, |acc, t| Some(acc.map_or(t, |a: f64| a.min(t))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moist_spatial::{Point, Velocity};

    fn rec(oid: u64, ts: u64) -> HistoryRecord {
        HistoryRecord::new(oid, ts, Point::new(0.0, 0.0), Velocity::ZERO)
    }

    #[test]
    fn fills_then_swaps() {
        // Capacity: 4 records.
        let mut b = PingPongBuffer::new(4 * RECORD_BYTES);
        assert_eq!(b.capacity_records(), 4);
        assert!(matches!(
            b.append_column(vec![rec(1, 0), rec(1, 1)], 1_000_000),
            AppendOutcome::Buffered
        ));
        match b.append_column(vec![rec(2, 0), rec(2, 1)], 3_000_000) {
            AppendOutcome::SwapAndFlush { records, fill_secs } => {
                assert_eq!(records.len(), 4);
                assert_eq!(fill_secs, Some(2.0));
            }
            AppendOutcome::Buffered => panic!("expected swap"),
        }
        // The new active side is empty and keeps absorbing.
        assert!(b.is_empty());
        assert!(matches!(
            b.append_column(vec![rec(3, 0)], 4_000_000),
            AppendOutcome::Buffered
        ));
        assert_eq!(b.min_fill_secs(), Some(2.0));
    }

    #[test]
    fn oversized_column_still_swaps_once() {
        let mut b = PingPongBuffer::new(2 * RECORD_BYTES);
        match b.append_column((0..5).map(|i| rec(1, i)), 10) {
            AppendOutcome::SwapAndFlush { records, .. } => assert_eq!(records.len(), 5),
            AppendOutcome::Buffered => panic!("expected swap"),
        }
    }

    #[test]
    fn drain_returns_partial_content() {
        let mut b = PingPongBuffer::new(16 * RECORD_BYTES);
        b.append_column(vec![rec(1, 0)], 0);
        let drained = b.drain();
        assert_eq!(drained.len(), 1);
        assert!(b.is_empty());
        assert!(b.min_fill_secs().is_none());
    }

    #[test]
    fn min_fill_tracks_the_fastest_fill() {
        let mut b = PingPongBuffer::new(RECORD_BYTES);
        b.append_column(vec![rec(1, 0)], 0);
        b.append_column(vec![rec(1, 1)], 5_000_000);
        assert_eq!(b.min_fill_secs(), Some(0.0));
    }
}
