//! The §3.6.2 configuration optimiser: choose the number of disks `n_d`.
//!
//! Write-side utilisation falls with more disks (each flush transfers less
//! per mechanical access):
//! `U_d = s_B / (n_d · R_disk · (T_rot + T_seek))`
//!
//! Read-side resolution rises with more disks (fewer irrelevant objects per
//! disk): `R_d = k · n_d / n_o`.
//!
//! The plan maximises `min(U_d, R_d)` subject to the ping-pong safety
//! constraint `min T_m ≥ max T_d`, with
//! `T_d(n_d) = T_rot + T_seek + s_B / (n_d · R_disk)` (Eq. 1) and
//! `T_m = s_B / fill-rate`.

use crate::disk::DiskProfile;
use serde::{Deserialize, Serialize};

/// Inputs to the planner.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PlannerInput {
    /// Total double-buffer size `s_B` in bytes (`s_rec × n_o`, §3.6.2).
    pub buffer_bytes: f64,
    /// Number of indexed objects `n_o`.
    pub objects: u64,
    /// Aggregate aged-data production rate, bytes per second (sets `T_m`).
    pub fill_rate_bytes_per_sec: f64,
    /// Normalisation factor `k` for read resolution (tuned from operational
    /// cost / read-write mix, §3.6.2).
    pub k: f64,
    /// Mechanical disk parameters.
    pub disk: DiskProfile,
    /// Largest admissible `n_d` (rack size).
    pub max_disks: u32,
}

/// Evaluation of one candidate `n_d`.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PlanPoint {
    /// Candidate number of disks.
    pub nd: u32,
    /// Write-side utilisation `U_d`.
    pub ud: f64,
    /// Read-side resolution `R_d`.
    pub rd: f64,
    /// Per-disk flush time `T_d(n_d)` (Eq. 1), seconds.
    pub td: f64,
    /// Buffer fill time `T_m`, seconds.
    pub tm: f64,
    /// Whether `T_m ≥ T_d` holds (ping-pong safe).
    pub feasible: bool,
}

/// The chosen configuration plus the full sweep for plotting.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Plan {
    /// The selected point (best feasible `min(U_d, R_d)`).
    pub best: PlanPoint,
    /// Every candidate `1..=max_disks`, for the ablation bench.
    pub sweep: Vec<PlanPoint>,
}

impl PlannerInput {
    /// Evaluates one candidate disk count.
    pub fn evaluate(&self, nd: u32) -> PlanPoint {
        let nd_f = f64::from(nd.max(1));
        let t0 = self.disk.t_rot + self.disk.t_seek;
        let ud = self.buffer_bytes / (nd_f * self.disk.rate * t0);
        let rd = self.k * nd_f / self.objects.max(1) as f64;
        let td = t0 + self.buffer_bytes / (nd_f * self.disk.rate);
        let tm = if self.fill_rate_bytes_per_sec > 0.0 {
            self.buffer_bytes / self.fill_rate_bytes_per_sec
        } else {
            f64::INFINITY
        };
        PlanPoint {
            nd: nd.max(1),
            ud,
            rd,
            td,
            tm,
            feasible: tm >= td,
        }
    }

    /// The unconstrained optimum `n_d*` where `U_d = R_d`
    /// (`n_d² = s_B · n_o / (R_disk · T_0 · k)`).
    pub fn unconstrained_optimum(&self) -> f64 {
        let t0 = self.disk.t_rot + self.disk.t_seek;
        (self.buffer_bytes * self.objects.max(1) as f64 / (self.disk.rate * t0 * self.k)).sqrt()
    }

    /// Runs the optimisation over `1..=max_disks`.
    pub fn plan(&self) -> Plan {
        let max = self.max_disks.max(1);
        let sweep: Vec<PlanPoint> = (1..=max).map(|nd| self.evaluate(nd)).collect();
        // Among feasible points pick max min(Ud, Rd); fall back to the point
        // with the smallest constraint violation if none is feasible.
        let best = sweep
            .iter()
            .filter(|p| p.feasible)
            .max_by(|a, b| {
                let ka = a.ud.min(a.rd);
                let kb = b.ud.min(b.rd);
                ka.partial_cmp(&kb).unwrap_or(std::cmp::Ordering::Equal)
            })
            .copied()
            .unwrap_or_else(|| {
                sweep
                    .iter()
                    .min_by(|a, b| {
                        let va = a.td - a.tm;
                        let vb = b.td - b.tm;
                        va.partial_cmp(&vb).unwrap_or(std::cmp::Ordering::Equal)
                    })
                    .copied()
                    .expect("sweep is non-empty")
            });
        Plan { best, sweep }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn input() -> PlannerInput {
        PlannerInput {
            buffer_bytes: 64.0 * 1024.0 * 1024.0, // 64 MiB
            objects: 1_000_000,
            fill_rate_bytes_per_sec: 2.0e6,
            k: 1000.0,
            disk: DiskProfile::default(),
            max_disks: 64,
        }
    }

    #[test]
    fn ud_decreases_and_rd_increases_with_nd() {
        let inp = input();
        let a = inp.evaluate(2);
        let b = inp.evaluate(8);
        assert!(a.ud > b.ud, "U_d must fall with n_d");
        assert!(a.rd < b.rd, "R_d must rise with n_d");
        assert!(a.td > b.td, "per-disk flush time falls with n_d");
    }

    #[test]
    fn best_point_balances_ud_and_rd() {
        let inp = input();
        let plan = inp.plan();
        assert!(plan.best.feasible);
        // The best nd is within one step of the analytic optimum clamped to
        // the admissible range (boundaries win when the optimum is outside).
        let star = inp
            .unconstrained_optimum()
            .clamp(1.0, f64::from(inp.max_disks));
        let chosen = f64::from(plan.best.nd);
        if plan.sweep.iter().all(|p| p.feasible) {
            assert!(
                (chosen - star).abs() <= 1.5,
                "chosen {chosen} vs optimum {star}"
            );
        }
        // No feasible point beats it on min(Ud, Rd).
        let score = plan.best.ud.min(plan.best.rd);
        for p in plan.sweep.iter().filter(|p| p.feasible) {
            assert!(p.ud.min(p.rd) <= score + 1e-12);
        }
    }

    #[test]
    fn infeasible_fill_rate_falls_back_to_least_violation() {
        let mut inp = input();
        // Filling so fast no configuration can flush in time.
        inp.fill_rate_bytes_per_sec = 1e15;
        let plan = inp.plan();
        assert!(!plan.best.feasible);
        // Least-violating = largest nd (smallest td).
        assert_eq!(plan.best.nd, inp.max_disks);
    }

    #[test]
    fn zero_fill_rate_is_always_feasible() {
        let mut inp = input();
        inp.fill_rate_bytes_per_sec = 0.0;
        let plan = inp.plan();
        assert!(plan.best.feasible);
        assert!(plan.best.tm.is_infinite());
    }

    #[test]
    fn evaluate_clamps_degenerate_inputs() {
        let mut inp = input();
        inp.objects = 0;
        let p = inp.evaluate(0);
        assert_eq!(p.nd, 1);
        assert!(p.rd.is_finite());
    }
}
