//! # moist-archive
//!
//! Aged-data archiving for MOIST (Jiang et al., VLDB 2012, §3.5–3.6): the
//! **Parallel Ping-Pong (PPP)** scheme.
//!
//! * [`record`] — fixed-width archived location records;
//! * [`disk`] — simulated disks charging the paper's Eq. 1 access time
//!   (`T_rot + T_seek + bytes / R_disk`) and tracking utilisation;
//! * [`buffer`] — ping-pong double buffers with `min T_m ≥ max T_d`
//!   monitoring;
//! * [`ppp`] — the archiver: per-disk buffers, the locality-preserving
//!   placement hash `hash_d(i, loc_{i,0})`, object-based and location-based
//!   history queries, and the in-memory recent window (`m` records/object);
//! * [`planner`] — the §3.6.2 optimiser choosing `n_d` by maximising
//!   `min(U_d, R_d)` under the ping-pong constraint.
//!
//! ```
//! use moist_archive::{HistoryRecord, PppArchiver, PppConfig};
//! use moist_spatial::{Point, Space, Velocity};
//!
//! let archiver = PppArchiver::new(Space::paper_map(), PppConfig::default());
//! for ts in 0..32u64 {
//!     let rec = HistoryRecord::new(7, ts, Point::new(500.0, 500.0), Velocity::ZERO);
//!     archiver.ingest(rec, ts * 1_000_000);
//! }
//! archiver.flush_all();
//! let (history, cost) = archiver.query_object(7, 0, u64::MAX);
//! assert_eq!(history.len(), 32);
//! assert_eq!(cost.disks_touched, 1); // object locality: one disk read
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod buffer;
pub mod disk;
pub mod planner;
pub mod ppp;
pub mod record;

pub use buffer::{AppendOutcome, PingPongBuffer};
pub use disk::{DiskPage, DiskProfile, DiskStats, SimDisk};
pub use planner::{Plan, PlanPoint, PlannerInput};
pub use ppp::{PppArchiver, PppConfig, PppStats, QueryCost};
pub use record::{HistoryRecord, RECORD_BYTES};
