//! Simulated disks with the paper's latency model.
//!
//! §3.6.2, Eq. 1: flushing a buffer of `s_B/n_d` bytes onto one disk costs
//! `T_d = T_rot + T_seek + s_B / (n_d · R_disk)`. Each [`SimDisk`] charges
//! exactly that per page write, records the pages it stores, and tracks
//! cumulative busy time so write-side utilisation `U_d` can be measured as
//! well as computed analytically.

use crate::record::{HistoryRecord, RECORD_BYTES};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// Mechanical parameters of one disk.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct DiskProfile {
    /// Rotational delay per access, seconds.
    pub t_rot: f64,
    /// Seek time per access, seconds.
    pub t_seek: f64,
    /// Sequential transfer rate, bytes per second.
    pub rate: f64,
}

impl Default for DiskProfile {
    fn default() -> Self {
        // 7200 rpm-class 2012 disk: 4.2 ms rotational, 8 ms seek, 50 MB/s.
        DiskProfile {
            t_rot: 0.0042,
            t_seek: 0.008,
            rate: 50.0e6,
        }
    }
}

impl DiskProfile {
    /// Access time for one contiguous transfer of `bytes` (Eq. 1 with the
    /// per-disk share substituted by the caller).
    pub fn access_time(&self, bytes: u64) -> f64 {
        self.t_rot + self.t_seek + bytes as f64 / self.rate
    }
}

/// One flushed buffer page as stored on disk, with the metadata history
/// queries use to skip irrelevant pages.
#[derive(Debug, Clone)]
pub struct DiskPage {
    /// Sequence number on its disk (monotonic flush order).
    pub seq: u64,
    /// Smallest record timestamp in the page.
    pub min_ts_us: u64,
    /// Largest record timestamp in the page.
    pub max_ts_us: u64,
    /// Object ids present (sorted, deduplicated).
    pub objects: Vec<u64>,
    /// The records, in flush order.
    pub records: Vec<HistoryRecord>,
}

impl DiskPage {
    /// Page payload size in bytes.
    pub fn bytes(&self) -> u64 {
        (self.records.len() * RECORD_BYTES) as u64
    }

    /// Whether the page holds any record of `oid`.
    pub fn contains_object(&self, oid: u64) -> bool {
        self.objects.binary_search(&oid).is_ok()
    }
}

/// Counters of one disk's simulated activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct DiskStats {
    /// Pages written.
    pub pages_written: u64,
    /// Bytes written.
    pub bytes_written: u64,
    /// Seconds the disk spent on writes.
    pub write_busy_secs: f64,
    /// Pages read back by history queries.
    pub pages_read: u64,
    /// Bytes read back.
    pub bytes_read: u64,
    /// Seconds the disk spent on reads.
    pub read_busy_secs: f64,
}

/// A simulated disk storing flushed pages.
#[derive(Debug)]
pub struct SimDisk {
    profile: DiskProfile,
    inner: Mutex<DiskInner>,
}

#[derive(Debug, Default)]
struct DiskInner {
    pages: Vec<DiskPage>,
    stats: DiskStats,
    next_seq: u64,
}

impl SimDisk {
    /// Creates an empty disk.
    pub fn new(profile: DiskProfile) -> Self {
        SimDisk {
            profile,
            inner: Mutex::new(DiskInner::default()),
        }
    }

    /// The disk's mechanical profile.
    pub fn profile(&self) -> DiskProfile {
        self.profile
    }

    /// Writes one page; returns the simulated write time `T_d` in seconds.
    pub fn write_page(&self, mut records: Vec<HistoryRecord>) -> f64 {
        if records.is_empty() {
            return 0.0;
        }
        let mut inner = self.inner.lock();
        let bytes = (records.len() * RECORD_BYTES) as u64;
        let t = self.profile.access_time(bytes);
        let mut objects: Vec<u64> = records.iter().map(|r| r.oid).collect();
        objects.sort_unstable();
        objects.dedup();
        records.sort_by_key(|r| (r.oid, r.ts_us));
        let page = DiskPage {
            seq: inner.next_seq,
            min_ts_us: records.iter().map(|r| r.ts_us).min().unwrap_or(0),
            max_ts_us: records.iter().map(|r| r.ts_us).max().unwrap_or(0),
            objects,
            records,
        };
        inner.next_seq += 1;
        inner.stats.pages_written += 1;
        inner.stats.bytes_written += bytes;
        inner.stats.write_busy_secs += t;
        inner.pages.push(page);
        t
    }

    /// Reads every page matching `page_filter`, returning the selected
    /// records (post-filtered by `record_filter`) and the simulated read
    /// time in seconds. Pages that fail the filter cost nothing — that is
    /// precisely the "IO resolution" R_d the placement scheme buys.
    pub fn read_matching(
        &self,
        page_filter: impl Fn(&DiskPage) -> bool,
        record_filter: impl Fn(&HistoryRecord) -> bool,
    ) -> (Vec<HistoryRecord>, f64) {
        let mut inner = self.inner.lock();
        let mut out = Vec::new();
        let mut time = 0.0;
        let mut pages_read = 0u64;
        let mut bytes_read = 0u64;
        for page in &inner.pages {
            if !page_filter(page) {
                continue;
            }
            pages_read += 1;
            bytes_read += page.bytes();
            time += self.profile.access_time(page.bytes());
            out.extend(page.records.iter().copied().filter(&record_filter));
        }
        inner.stats.pages_read += pages_read;
        inner.stats.bytes_read += bytes_read;
        inner.stats.read_busy_secs += time;
        (out, time)
    }

    /// Number of stored pages.
    pub fn page_count(&self) -> usize {
        self.inner.lock().pages.len()
    }

    /// Copy of the activity counters.
    pub fn stats(&self) -> DiskStats {
        self.inner.lock().stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moist_spatial::{Point, Velocity};

    fn rec(oid: u64, ts: u64) -> HistoryRecord {
        HistoryRecord::new(oid, ts, Point::new(0.0, 0.0), Velocity::ZERO)
    }

    #[test]
    fn write_time_follows_eq1() {
        let profile = DiskProfile {
            t_rot: 0.004,
            t_seek: 0.008,
            rate: 48_000.0, // 1000 records/s at 48 B
        };
        let disk = SimDisk::new(profile);
        let t = disk.write_page((0..100).map(|i| rec(i, i)).collect());
        // 100 * 48 = 4800 bytes / 48000 B/s = 0.1 s transfer + 0.012 access.
        assert!((t - 0.112).abs() < 1e-9, "t = {t}");
        assert_eq!(disk.page_count(), 1);
        let s = disk.stats();
        assert_eq!(s.pages_written, 1);
        assert_eq!(s.bytes_written, 4800);
    }

    #[test]
    fn empty_page_writes_are_free() {
        let disk = SimDisk::new(DiskProfile::default());
        assert_eq!(disk.write_page(vec![]), 0.0);
        assert_eq!(disk.page_count(), 0);
    }

    #[test]
    fn page_metadata_indexes_objects_and_time() {
        let disk = SimDisk::new(DiskProfile::default());
        disk.write_page(vec![rec(7, 30), rec(3, 10), rec(7, 20)]);
        let (records, _) = disk.read_matching(|p| p.contains_object(7), |r| r.oid == 7);
        assert_eq!(records.len(), 2);
        // Records within a page are clustered by object then time.
        assert!(records[0].ts_us < records[1].ts_us);
        let (none, t) = disk.read_matching(|p| p.contains_object(99), |_| true);
        assert!(none.is_empty());
        assert_eq!(t, 0.0, "skipped pages must cost nothing");
    }

    #[test]
    fn read_skips_pages_outside_time_range() {
        let disk = SimDisk::new(DiskProfile::default());
        disk.write_page(vec![rec(1, 10), rec(1, 20)]);
        disk.write_page(vec![rec(1, 100), rec(1, 200)]);
        let (records, t) = disk.read_matching(
            |p| p.max_ts_us >= 100 && p.min_ts_us <= 250,
            |r| (100..=250).contains(&r.ts_us),
        );
        assert_eq!(records.len(), 2);
        let one_page_time = disk.profile().access_time(2 * RECORD_BYTES as u64);
        assert!((t - one_page_time).abs() < 1e-12);
    }
}
