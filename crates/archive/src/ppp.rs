//! PPP — the Parallel Ping-Pong archiving scheme (§3.6).
//!
//! Location data is viewed as a matrix of objects × time. Each object's
//! in-memory column is copied into an aged-buffer page only when it is full
//! (§3.6.1); each of the `n_d` disks runs its own ping-pong double buffer of
//! size `s_B / n_d`; and placement is locality-preserving both ways:
//!
//! * **object locality** — an object's archived data always lands on the
//!   same disk (`hash_d(i, loc_{i,0})` is fixed at first sight of `i`);
//! * **spatial locality** — the hash is derived from the object's *initial
//!   location* cell, and nearby cells map to the same disk, because "moving
//!   objects are unlikely to move too far away from their initial position
//!   after only a short period of time".
//!
//! We realise `hash_d` as a *contiguous* mapping of coarse-cell Hilbert
//! indexes onto disks (cell index · n_d / cell count), which preserves
//! proximity rather than scattering it the way a scrambling hash would;
//! load balance then follows from the curve's uniform coverage.

use crate::buffer::{AppendOutcome, PingPongBuffer};
use crate::disk::{DiskProfile, DiskStats, SimDisk};
use crate::record::HistoryRecord;
use moist_spatial::{cells_at_level, cover_rect, Point, Rect, Space};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};

/// Configuration of the archiver.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PppConfig {
    /// Number of parallel disks `n_d`.
    pub num_disks: u32,
    /// Total buffer size `s_B` in bytes, split evenly across disks.
    pub total_buffer_bytes: usize,
    /// In-memory records kept per object (`m`, §3.5) — also the column
    /// length copied to the aged buffer when full.
    pub column_records: usize,
    /// Coarse cell level used by the placement hash.
    pub placement_level: u8,
    /// Mechanical profile shared by all disks.
    pub disk: DiskProfile,
}

impl Default for PppConfig {
    fn default() -> Self {
        PppConfig {
            num_disks: 4,
            total_buffer_bytes: 1 << 20,
            column_records: 16,
            placement_level: 4,
            disk: DiskProfile::default(),
        }
    }
}

/// Cost summary of one history query.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct QueryCost {
    /// Disks that had to be touched.
    pub disks_touched: u32,
    /// Pages transferred.
    pub pages_read: u64,
    /// Wall time of the slowest disk (disks read in parallel), seconds.
    pub parallel_secs: f64,
    /// Sum of all disks' read time (total device occupancy), seconds.
    pub total_device_secs: f64,
}

/// Snapshot of archiver-level counters.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct PppStats {
    /// Records accepted so far.
    pub records_ingested: u64,
    /// Columns copied to aged buffers.
    pub columns_aged: u64,
    /// Buffer flushes performed.
    pub flushes: u64,
    /// Largest observed per-flush disk time `max T_d`, seconds.
    pub max_flush_secs: f64,
}

struct ObjectState {
    disk: usize,
    /// The object's filling in-memory column.
    pending: Vec<HistoryRecord>,
    /// Most recent `m` records for memory-served queries.
    recent: VecDeque<HistoryRecord>,
}

/// The archiver: `n_d` simulated disks fed by per-disk ping-pong buffers.
pub struct PppArchiver {
    config: PppConfig,
    space: Space,
    disks: Vec<SimDisk>,
    buffers: Vec<Mutex<PingPongBuffer>>,
    objects: Mutex<HashMap<u64, ObjectState>>,
    stats: Mutex<PppStats>,
}

impl PppArchiver {
    /// Creates an archiver over `space` with `config`.
    pub fn new(space: Space, config: PppConfig) -> Self {
        let nd = config.num_disks.max(1) as usize;
        let per_disk = (config.total_buffer_bytes / nd).max(crate::record::RECORD_BYTES);
        PppArchiver {
            config,
            space,
            disks: (0..nd).map(|_| SimDisk::new(config.disk)).collect(),
            buffers: (0..nd)
                .map(|_| Mutex::new(PingPongBuffer::new(per_disk)))
                .collect(),
            objects: Mutex::new(HashMap::new()),
            stats: Mutex::new(PppStats::default()),
        }
    }

    /// The archiver's configuration.
    pub fn config(&self) -> &PppConfig {
        &self.config
    }

    /// The locality-preserving placement hash `hash_d(i, loc_{i,0})`:
    /// contiguous coarse-cell index ranges map to one disk each.
    pub fn disk_for_initial_location(&self, loc0: &Point) -> usize {
        let cell = self.space.cell_at(self.config.placement_level, loc0);
        let total = cells_at_level(self.config.placement_level);
        ((cell.index as u128 * self.disks.len() as u128) / total as u128) as usize
    }

    /// Ingests one location record at virtual time `now_us`.
    ///
    /// Returns the flush time charged to a disk when this ingest completed a
    /// buffer (0.0 otherwise).
    pub fn ingest(&self, rec: HistoryRecord, now_us: u64) -> f64 {
        let m = self.config.column_records.max(1);
        let (disk_idx, column) = {
            let mut objects = self.objects.lock();
            let state = objects.entry(rec.oid).or_insert_with(|| ObjectState {
                disk: self.disk_for_initial_location(&rec.loc),
                pending: Vec::with_capacity(m),
                recent: VecDeque::with_capacity(m),
            });
            state.pending.push(rec);
            if state.recent.len() == m {
                state.recent.pop_front();
            }
            state.recent.push_back(rec);
            if state.pending.len() >= m {
                (state.disk, std::mem::take(&mut state.pending))
            } else {
                {
                    let mut stats = self.stats.lock();
                    stats.records_ingested += 1;
                }
                return 0.0;
            }
        };
        {
            let mut stats = self.stats.lock();
            stats.records_ingested += 1;
            stats.columns_aged += 1;
        }
        let outcome = self.buffers[disk_idx].lock().append_column(column, now_us);
        match outcome {
            AppendOutcome::Buffered => 0.0,
            AppendOutcome::SwapAndFlush { records, .. } => {
                let t = self.disks[disk_idx].write_page(records);
                let mut stats = self.stats.lock();
                stats.flushes += 1;
                stats.max_flush_secs = stats.max_flush_secs.max(t);
                t
            }
        }
    }

    /// Force-flushes every buffer and pending column (end of run / shutdown).
    pub fn flush_all(&self) {
        // Move pending columns into buffers first.
        let drained: Vec<(usize, Vec<HistoryRecord>)> = {
            let mut objects = self.objects.lock();
            objects
                .values_mut()
                .filter(|s| !s.pending.is_empty())
                .map(|s| (s.disk, std::mem::take(&mut s.pending)))
                .collect()
        };
        for (disk_idx, column) in drained {
            if let AppendOutcome::SwapAndFlush { records, .. } =
                self.buffers[disk_idx].lock().append_column(column, 0)
            {
                let t = self.disks[disk_idx].write_page(records);
                let mut stats = self.stats.lock();
                stats.flushes += 1;
                stats.max_flush_secs = stats.max_flush_secs.max(t);
            }
        }
        for (disk_idx, buffer) in self.buffers.iter().enumerate() {
            let records = buffer.lock().drain();
            if !records.is_empty() {
                let t = self.disks[disk_idx].write_page(records);
                let mut stats = self.stats.lock();
                stats.flushes += 1;
                stats.max_flush_secs = stats.max_flush_secs.max(t);
            }
        }
    }

    /// The most recent in-memory records of one object (newest last).
    pub fn recent_records(&self, oid: u64) -> Vec<HistoryRecord> {
        self.objects
            .lock()
            .get(&oid)
            .map(|s| s.recent.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Object-based history query: all archived records of `oid` within
    /// `[from_us, to_us]`, merged with the in-memory recent window.
    ///
    /// Thanks to object locality only **one** disk is read, and only its
    /// pages whose object index contains `oid`.
    pub fn query_object(
        &self,
        oid: u64,
        from_us: u64,
        to_us: u64,
    ) -> (Vec<HistoryRecord>, QueryCost) {
        let disk_idx = match self.objects.lock().get(&oid) {
            Some(s) => s.disk,
            None => return (Vec::new(), QueryCost::default()),
        };
        let (mut records, secs) = self.disks[disk_idx].read_matching(
            |p| p.contains_object(oid) && p.max_ts_us >= from_us && p.min_ts_us <= to_us,
            |r| r.oid == oid && (from_us..=to_us).contains(&r.ts_us),
        );
        let pages = self.disks[disk_idx].stats().pages_read;
        // Merge the in-memory window (records not yet aged to disk).
        for r in self.recent_records(oid) {
            if (from_us..=to_us).contains(&r.ts_us) && !records.iter().any(|x| x.ts_us == r.ts_us) {
                records.push(r);
            }
        }
        records.sort_by_key(|r| r.ts_us);
        (
            records,
            QueryCost {
                disks_touched: 1,
                pages_read: pages,
                parallel_secs: secs,
                total_device_secs: secs,
            },
        )
    }

    /// Location-based history query: archived records inside `rect` within
    /// `[from_us, to_us]`.
    ///
    /// Placement locality means only the disks whose coarse-cell ranges
    /// intersect the rect are touched — the read-resolution benefit `R_d`.
    /// Because an object's records live on the disk of its *initial*
    /// location ("moving objects are unlikely to move too far away from
    /// their initial position", §3.6.1), `drift_margin` widens the disk
    /// selection to cover objects that started up to that many world units
    /// outside the rect. Pass the map diameter for exact results on
    /// arbitrary movers.
    pub fn query_region(
        &self,
        rect: &Rect,
        from_us: u64,
        to_us: u64,
        drift_margin: f64,
    ) -> (Vec<HistoryRecord>, QueryCost) {
        let m = drift_margin.max(0.0);
        let widened = Rect::new(
            rect.min_x - m,
            rect.min_y - m,
            rect.max_x + m,
            rect.max_y + m,
        );
        let unit = self.space.rect_to_unit(&widened);
        let cells = cover_rect(self.space.curve, self.config.placement_level, &unit);
        let total = cells_at_level(self.config.placement_level);
        let mut disk_idxs: Vec<usize> = cells
            .iter()
            .map(|c| ((c.index as u128 * self.disks.len() as u128) / total as u128) as usize)
            .collect();
        disk_idxs.sort_unstable();
        disk_idxs.dedup();
        let mut records = Vec::new();
        let mut cost = QueryCost {
            disks_touched: disk_idxs.len() as u32,
            ..QueryCost::default()
        };
        for &d in &disk_idxs {
            let before = self.disks[d].stats().pages_read;
            let (mut recs, secs) = self.disks[d].read_matching(
                |p| p.max_ts_us >= from_us && p.min_ts_us <= to_us,
                |r| (from_us..=to_us).contains(&r.ts_us) && rect.contains(&r.loc),
            );
            cost.pages_read += self.disks[d].stats().pages_read - before;
            cost.parallel_secs = cost.parallel_secs.max(secs);
            cost.total_device_secs += secs;
            records.append(&mut recs);
        }
        records.sort_by_key(|r| (r.oid, r.ts_us));
        (records, cost)
    }

    /// Checks the ping-pong safety condition `min T_m ≥ max T_d` from the
    /// observed fill and flush times. `None` until at least one buffer has
    /// completed a fill.
    pub fn pingpong_safety(&self) -> Option<(f64, f64, bool)> {
        let min_tm = self
            .buffers
            .iter()
            .filter_map(|b| b.lock().min_fill_secs())
            .fold(None, |acc: Option<f64>, t| {
                Some(acc.map_or(t, |a| a.min(t)))
            })?;
        let max_td = self.stats.lock().max_flush_secs;
        Some((min_tm, max_td, min_tm >= max_td))
    }

    /// Archiver counters.
    pub fn stats(&self) -> PppStats {
        *self.stats.lock()
    }

    /// Per-disk device statistics.
    pub fn disk_stats(&self) -> Vec<DiskStats> {
        self.disks.iter().map(|d| d.stats()).collect()
    }

    /// Number of configured disks.
    pub fn num_disks(&self) -> usize {
        self.disks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moist_spatial::Velocity;

    fn space() -> Space {
        Space::paper_map()
    }

    fn config() -> PppConfig {
        PppConfig {
            num_disks: 4,
            total_buffer_bytes: 4 * 8 * crate::record::RECORD_BYTES, // 8 records/disk side
            column_records: 4,
            placement_level: 3,
            disk: DiskProfile::default(),
        }
    }

    fn rec(oid: u64, ts: u64, x: f64, y: f64) -> HistoryRecord {
        HistoryRecord::new(oid, ts, Point::new(x, y), Velocity::ZERO)
    }

    #[test]
    fn placement_is_stable_and_locality_preserving() {
        let a = PppArchiver::new(space(), config());
        // Same location -> same disk; far locations spread across disks.
        let d1 = a.disk_for_initial_location(&Point::new(10.0, 10.0));
        let d2 = a.disk_for_initial_location(&Point::new(11.0, 10.5));
        assert_eq!(d1, d2, "nearby initial locations share a disk");
        let mut seen: Vec<usize> = (0..16)
            .flat_map(|i| (0..16).map(move |j| (i as f64 * 62.0 + 1.0, j as f64 * 62.0 + 1.0)))
            .map(|(x, y)| a.disk_for_initial_location(&Point::new(x, y)))
            .collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 4, "uniform coverage uses all disks");
    }

    #[test]
    fn object_query_reads_one_disk_and_merges_memory() {
        let a = PppArchiver::new(space(), config());
        // 8 records: two full columns -> one page flush on oid's disk.
        for ts in 0..8u64 {
            a.ingest(rec(1, ts, 100.0, 100.0), ts * 1_000_000);
        }
        // A different object on (likely) another disk.
        for ts in 0..4u64 {
            a.ingest(rec(2, ts, 900.0, 900.0), ts * 1_000_000);
        }
        let (records, cost) = a.query_object(1, 0, 100);
        assert_eq!(records.len(), 8, "archived + recent merged, deduplicated");
        assert!(records.windows(2).all(|w| w[0].ts_us < w[1].ts_us));
        assert_eq!(cost.disks_touched, 1);
        // Unknown object: free.
        let (none, c0) = a.query_object(999, 0, 100);
        assert!(none.is_empty());
        assert_eq!(c0, QueryCost::default());
    }

    #[test]
    fn region_query_touches_only_covering_disks() {
        let a = PppArchiver::new(space(), config());
        for oid in 0..32u64 {
            let x = (oid % 8) as f64 * 125.0 + 10.0;
            let y = (oid / 8) as f64 * 250.0 + 10.0;
            for ts in 0..4u64 {
                a.ingest(rec(oid, ts, x, y), ts * 1_000);
            }
        }
        a.flush_all();
        let (records, cost) = a.query_region(&Rect::new(0.0, 0.0, 200.0, 200.0), 0, 10, 0.0);
        assert!(!records.is_empty());
        assert!(
            cost.disks_touched < a.num_disks() as u32,
            "a small region must not touch every disk (R_d locality)"
        );
        for r in &records {
            assert!(r.loc.x <= 200.0 && r.loc.y <= 200.0);
        }
    }

    #[test]
    fn flush_all_persists_partial_columns() {
        let a = PppArchiver::new(space(), config());
        a.ingest(rec(5, 1, 50.0, 50.0), 0); // single record, column not full
        assert_eq!(
            a.disk_stats().iter().map(|s| s.pages_written).sum::<u64>(),
            0
        );
        a.flush_all();
        let (records, _) = a.query_object(5, 0, 10);
        assert_eq!(records.len(), 1);
        assert_eq!(
            a.disk_stats().iter().map(|s| s.pages_written).sum::<u64>(),
            1
        );
    }

    #[test]
    fn recent_window_is_capped_at_m() {
        let a = PppArchiver::new(space(), config());
        for ts in 0..10u64 {
            a.ingest(rec(3, ts, 10.0, 10.0), ts);
        }
        let recent = a.recent_records(3);
        assert_eq!(recent.len(), 4); // m = column_records = 4
        assert_eq!(recent.last().unwrap().ts_us, 9);
    }

    #[test]
    fn pingpong_safety_reports_fill_vs_flush() {
        let a = PppArchiver::new(space(), config());
        assert!(a.pingpong_safety().is_none(), "no fills yet");
        // Fill one disk's buffer slowly (10 s per column batch).
        for ts in 0..8u64 {
            a.ingest(rec(1, ts, 100.0, 100.0), ts * 10_000_000);
        }
        let (min_tm, max_td, ok) = a.pingpong_safety().expect("one fill completed");
        assert!(min_tm > 0.0);
        assert!(max_td > 0.0);
        assert!(ok, "slow fill must satisfy min Tm >= max Td");
    }

    #[test]
    fn stats_count_ingests_columns_flushes() {
        let a = PppArchiver::new(space(), config());
        for ts in 0..8u64 {
            a.ingest(rec(1, ts, 100.0, 100.0), ts);
        }
        let s = a.stats();
        assert_eq!(s.records_ingested, 8);
        assert_eq!(s.columns_aged, 2);
        assert_eq!(s.flushes, 1); // 2 columns of 4 = 8 records = one side
    }
}
