//! Dynamic (virtual-centre) clustering comparator (§2.3.2; Jensen et al.
//! \[16\], Li et al. \[18\]).
//!
//! Objects are grouped into clusters represented by a *virtual centre*
//! moving linearly plus a radius. Every member update adjusts the cluster's
//! centre (an incremental mean) — so unlike MOIST, **each update still
//! reaches the store**: the cluster record is rewritten, and the object
//! departs when its report falls outside the cluster radius around the
//! predicted centre. Re-clustering (merging clusters with similar centres)
//! reads *every member's* moving pattern, which is the `O(n log n)` cost the
//! paper contrasts with school merging (§2.4).

use moist_bigtable::{
    Bigtable, ColumnFamily, Mutation, ReadOptions, Result, RowKey, ScanRange, Session, Table,
    TableSchema, Timestamp,
};
use moist_spatial::{Point, Velocity};
use std::collections::HashMap;
use std::sync::Arc;

/// Comparator statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DynamicClusterStats {
    /// Updates received.
    pub updates: u64,
    /// Cluster-record rewrites caused by updates (never shed).
    pub center_writes: u64,
    /// Departures (object left its cluster's radius).
    pub departures: u64,
    /// Cluster merges performed by re-clustering.
    pub merges: u64,
}

#[derive(Debug, Clone, Copy)]
struct ClusterState {
    center: Point,
    vel: Velocity,
    members: u64,
    updated_secs: f64,
}

/// The dynamic-clustering tracker.
pub struct DynamicClusterIndex {
    radius: f64,
    table: Arc<Table>,
    /// oid → cluster id (client-side membership map, as in \[16\]).
    membership: HashMap<u64, u64>,
    next_cluster: u64,
    stats: DynamicClusterStats,
}

const FAMILY: &str = "cluster";
const QUAL: &str = "c";

impl DynamicClusterIndex {
    /// Creates the tracker; `radius` bounds how far a member may stray from
    /// the predicted virtual centre.
    pub fn new(store: &Arc<Bigtable>, radius: f64, name: &str) -> Result<Self> {
        let table = match store.open_table(name) {
            Ok(t) => t,
            Err(_) => store.create_table(TableSchema::new(
                name,
                vec![ColumnFamily::in_memory(FAMILY, 1)],
            )?)?,
        };
        Ok(DynamicClusterIndex {
            radius: radius.max(f64::MIN_POSITIVE),
            table,
            membership: HashMap::new(),
            next_cluster: 0,
            stats: DynamicClusterStats::default(),
        })
    }

    fn encode(c: &ClusterState) -> Vec<u8> {
        let mut v = Vec::with_capacity(48);
        v.extend_from_slice(&c.center.x.to_le_bytes());
        v.extend_from_slice(&c.center.y.to_le_bytes());
        v.extend_from_slice(&c.vel.vx.to_le_bytes());
        v.extend_from_slice(&c.vel.vy.to_le_bytes());
        v.extend_from_slice(&c.members.to_le_bytes());
        v.extend_from_slice(&c.updated_secs.to_le_bytes());
        v
    }

    fn decode(buf: &[u8]) -> Option<ClusterState> {
        if buf.len() < 48 {
            return None;
        }
        let f = |r: std::ops::Range<usize>| f64::from_le_bytes(buf[r].try_into().unwrap());
        Some(ClusterState {
            center: Point::new(f(0..8), f(8..16)),
            vel: Velocity::new(f(16..24), f(24..32)),
            members: u64::from_le_bytes(buf[32..40].try_into().unwrap()),
            updated_secs: f(40..48),
        })
    }

    fn read_cluster(&self, s: &mut Session, cid: u64) -> Result<Option<ClusterState>> {
        Ok(
            s.get_latest(&self.table, &RowKey::from_u64(cid), FAMILY, QUAL)?
                .and_then(|c| Self::decode(&c.value)),
        )
    }

    fn write_cluster(
        &mut self,
        s: &mut Session,
        cid: u64,
        state: &ClusterState,
        t: Timestamp,
    ) -> Result<()> {
        s.mutate_row(
            &self.table,
            &RowKey::from_u64(cid),
            &[Mutation::put(FAMILY, QUAL, t, Self::encode(state))],
        )?;
        self.stats.center_writes += 1;
        Ok(())
    }

    fn new_cluster(
        &mut self,
        s: &mut Session,
        loc: &Point,
        vel: &Velocity,
        t: Timestamp,
    ) -> Result<u64> {
        let cid = self.next_cluster;
        self.next_cluster += 1;
        let state = ClusterState {
            center: *loc,
            vel: *vel,
            members: 1,
            updated_secs: t.as_secs_f64(),
        };
        self.write_cluster(s, cid, &state, t)?;
        Ok(cid)
    }

    /// Processes one update. Every update writes the cluster record (centre
    /// adjustment) — the store sees O(updates) writes regardless of cluster
    /// size, which is the comparator's key weakness vs. schooling.
    pub fn update(
        &mut self,
        s: &mut Session,
        oid: u64,
        loc: &Point,
        vel: &Velocity,
        t: Timestamp,
    ) -> Result<()> {
        self.stats.updates += 1;
        let now = t.as_secs_f64();
        match self.membership.get(&oid).copied() {
            None => {
                let cid = self.new_cluster(s, loc, vel, t)?;
                self.membership.insert(oid, cid);
            }
            Some(cid) => {
                let state = self.read_cluster(s, cid)?;
                match state {
                    None => {
                        let cid = self.new_cluster(s, loc, vel, t)?;
                        self.membership.insert(oid, cid);
                    }
                    Some(mut state) => {
                        let predicted = state.center.advance(state.vel, now - state.updated_secs);
                        if predicted.distance(loc) > self.radius {
                            // Departure: the object forms its own cluster.
                            self.stats.departures += 1;
                            state.members = state.members.saturating_sub(1).max(1);
                            self.write_cluster(s, cid, &state, t)?;
                            let new_cid = self.new_cluster(s, loc, vel, t)?;
                            self.membership.insert(oid, new_cid);
                        } else {
                            // Incremental centre/velocity adjustment
                            // (weighted toward the existing aggregate).
                            let w = 1.0 / state.members.max(1) as f64;
                            state.center = Point::new(
                                predicted.x * (1.0 - w) + loc.x * w,
                                predicted.y * (1.0 - w) + loc.y * w,
                            );
                            state.vel = Velocity::new(
                                state.vel.vx * (1.0 - w) + vel.vx * w,
                                state.vel.vy * (1.0 - w) + vel.vy * w,
                            );
                            state.updated_secs = now;
                            self.write_cluster(s, cid, &state, t)?;
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Re-clustering: merges clusters whose predicted centres sit within
    /// the radius and whose velocities are similar. Reads **every** cluster
    /// record and sorts — the `O(n log n)` sweep of \[16\]/\[18\].
    pub fn recluster(&mut self, s: &mut Session, t: Timestamp, delta_v: f64) -> Result<usize> {
        let rows = s.scan(
            &self.table,
            &ScanRange::all(),
            &ReadOptions::latest_in(FAMILY),
            None,
        )?;
        let now = t.as_secs_f64();
        let mut clusters: Vec<(u64, ClusterState)> = rows
            .iter()
            .filter_map(|r| {
                let cid = r.key.as_u64()?;
                let st = Self::decode(&r.latest(FAMILY, QUAL)?.value)?;
                Some((cid, st))
            })
            .collect();
        // O(n log n): sort by predicted x then linear merge scan.
        clusters.sort_by(|a, b| {
            let pa = a.1.center.advance(a.1.vel, now - a.1.updated_secs).x;
            let pb = b.1.center.advance(b.1.vel, now - b.1.updated_secs).x;
            pa.total_cmp(&pb)
        });
        let mut merged = 0usize;
        let mut absorbed_into: HashMap<u64, u64> = HashMap::new();
        for i in 0..clusters.len() {
            let (cid_i, si) = clusters[i];
            if absorbed_into.contains_key(&cid_i) {
                continue;
            }
            let pi = si.center.advance(si.vel, now - si.updated_secs);
            for (cid_j, sj) in clusters.iter().skip(i + 1) {
                if absorbed_into.contains_key(cid_j) {
                    continue;
                }
                let pj = sj.center.advance(sj.vel, now - sj.updated_secs);
                if pj.x - pi.x > self.radius {
                    break; // sorted by x: no further candidates
                }
                if pi.distance(&pj) <= self.radius && si.vel.difference(&sj.vel) <= delta_v {
                    absorbed_into.insert(*cid_j, cid_i);
                    merged += 1;
                }
            }
        }
        // Apply: delete absorbed clusters, grow survivors, remap members.
        for (&absorbed, &survivor) in &absorbed_into {
            if let Some(mut surv) = self.read_cluster(s, survivor)? {
                let extra = self
                    .read_cluster(s, absorbed)?
                    .map(|c| c.members)
                    .unwrap_or(1);
                surv.members += extra;
                self.write_cluster(s, survivor, &surv, t)?;
            }
            s.mutate_row(
                &self.table,
                &RowKey::from_u64(absorbed),
                &[Mutation::DeleteRow],
            )?;
            for cid in self.membership.values_mut() {
                if *cid == absorbed {
                    *cid = survivor;
                }
            }
        }
        self.stats.merges += merged as u64;
        Ok(merged)
    }

    /// Number of live clusters (store rows).
    pub fn cluster_count(&self) -> usize {
        self.table.row_count()
    }

    /// Counters.
    pub fn stats(&self) -> DynamicClusterStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moist_bigtable::CostProfile;

    fn setup(radius: f64) -> (Arc<Bigtable>, DynamicClusterIndex, Session) {
        let store = Bigtable::new();
        let idx = DynamicClusterIndex::new(&store, radius, "dyn").unwrap();
        let s = store.session_with(CostProfile::free());
        (store, idx, s)
    }

    #[test]
    fn every_update_writes_even_without_departure() {
        let (_st, mut idx, mut s) = setup(50.0);
        let v = Velocity::new(1.0, 0.0);
        for t in 0..10u64 {
            idx.update(
                &mut s,
                1,
                &Point::new(t as f64, 0.0),
                &v,
                Timestamp::from_secs(t),
            )
            .unwrap();
        }
        let st = idx.stats();
        assert_eq!(st.updates, 10);
        assert_eq!(st.center_writes, 10, "no shedding in dynamic clustering");
        assert_eq!(st.departures, 0);
    }

    #[test]
    fn straying_member_departs_into_its_own_cluster() {
        let (_st, mut idx, mut s) = setup(10.0);
        let v = Velocity::new(1.0, 0.0);
        idx.update(
            &mut s,
            1,
            &Point::new(0.0, 0.0),
            &v,
            Timestamp::from_secs(0),
        )
        .unwrap();
        // Far from the predicted centre → departure.
        idx.update(
            &mut s,
            1,
            &Point::new(500.0, 0.0),
            &v,
            Timestamp::from_secs(1),
        )
        .unwrap();
        assert_eq!(idx.stats().departures, 1);
        assert_eq!(idx.cluster_count(), 2);
    }

    #[test]
    fn recluster_merges_similar_clusters() {
        let (_st, mut idx, mut s) = setup(20.0);
        let v = Velocity::new(1.0, 0.0);
        // Three objects forming three singleton clusters, two of them close.
        idx.update(
            &mut s,
            1,
            &Point::new(100.0, 100.0),
            &v,
            Timestamp::from_secs(0),
        )
        .unwrap();
        idx.update(
            &mut s,
            2,
            &Point::new(105.0, 100.0),
            &v,
            Timestamp::from_secs(0),
        )
        .unwrap();
        idx.update(
            &mut s,
            3,
            &Point::new(800.0, 800.0),
            &v,
            Timestamp::from_secs(0),
        )
        .unwrap();
        assert_eq!(idx.cluster_count(), 3);
        let merged = idx.recluster(&mut s, Timestamp::from_secs(0), 0.5).unwrap();
        assert_eq!(merged, 1);
        assert_eq!(idx.cluster_count(), 2);
        // Members of the absorbed cluster were remapped: next update of
        // object 2 adjusts the surviving cluster rather than a dead row.
        idx.update(
            &mut s,
            2,
            &Point::new(106.0, 100.0),
            &v,
            Timestamp::from_secs(1),
        )
        .unwrap();
        assert_eq!(idx.stats().departures, 0);
        assert_eq!(idx.cluster_count(), 2);
    }

    #[test]
    fn velocity_gate_blocks_merging_opposite_movers() {
        let (_st, mut idx, mut s) = setup(20.0);
        idx.update(
            &mut s,
            1,
            &Point::new(100.0, 100.0),
            &Velocity::new(1.0, 0.0),
            Timestamp::from_secs(0),
        )
        .unwrap();
        idx.update(
            &mut s,
            2,
            &Point::new(105.0, 100.0),
            &Velocity::new(-1.0, 0.0),
            Timestamp::from_secs(0),
        )
        .unwrap();
        let merged = idx.recluster(&mut s, Timestamp::from_secs(0), 0.5).unwrap();
        assert_eq!(merged, 0, "opposite velocities must not merge");
    }
}
