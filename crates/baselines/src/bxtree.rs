//! The Bx-tree comparator (Jensen, Lin, Ooi — VLDB 2004; \[15\] in the MOIST
//! paper).
//!
//! A Bx-tree indexes moving objects in a B+-tree whose keys concatenate a
//! *time partition* with the space-filling-curve value of the object's
//! position linearised at that partition's *label timestamp*:
//!
//! `key = partition ∥ curve(pos at label(t)) ∥ oid`
//!
//! Positions are advanced to the label timestamp under linear motion, so the
//! index stays valid without rewrites until the partition rolls over. A
//! range query at time `t` must, per partition, **enlarge** the query window
//! by `v_max · |t − label|` to catch objects that may have moved in or out,
//! then scan the covering curve ranges. kNN iteratively grows a search
//! radius until `k` candidates are confirmed.
//!
//! The tree runs against the same `moist-bigtable` store and cost model as
//! MOIST (the underlying B+-tree role is played by the sorted row space), so
//! the QPS comparison in the `headline` bench reflects algorithmic cost —
//! update = delete + insert, one object per update, zero shedding — rather
//! than substrate differences.

use moist_bigtable::{
    Bigtable, ColumnFamily, Mutation, ReadOptions, Result, RowKey, ScanRange, Session, Table,
    TableSchema, Timestamp,
};
use moist_spatial::{cover_rect, CellId, Point, Rect, Space, Velocity};
use std::collections::HashMap;
use std::sync::Arc;

/// Bx-tree configuration.
#[derive(Debug, Clone, Copy)]
pub struct BxConfig {
    /// Number of time partitions (classically 2: "half-phase" indexing).
    pub partitions: u64,
    /// Length of one partition in seconds (`Δt`); label timestamps sit at
    /// partition ends.
    pub phase_secs: f64,
    /// Curve level of the linearisation grid (the Bx "grid order").
    pub grid_level: u8,
    /// Maximum object speed `v_max`, world units/s (drives window
    /// enlargement).
    pub v_max: f64,
}

impl Default for BxConfig {
    fn default() -> Self {
        BxConfig {
            partitions: 2,
            phase_secs: 60.0,
            grid_level: 10,
            v_max: 2.0,
        }
    }
}

/// One indexed object as returned by queries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BxEntry {
    /// Object id.
    pub oid: u64,
    /// Position advanced to the query evaluation time.
    pub loc: Point,
    /// Stored velocity.
    pub vel: Velocity,
}

const FAMILY: &str = "o";
const QUAL: &str = "v";

/// The Bx-tree index.
pub struct BxTree {
    cfg: BxConfig,
    space: Space,
    table: Arc<Table>,
    /// oid → current (key, label position/velocity) for the delete half of
    /// updates (the classical implementation keeps this in the client).
    current: HashMap<u64, RowKey>,
}

impl BxTree {
    /// Creates (or opens) the index table.
    pub fn new(store: &Arc<Bigtable>, space: Space, cfg: BxConfig, name: &str) -> Result<Self> {
        let table = match store.open_table(name) {
            Ok(t) => t,
            Err(_) => store.create_table(TableSchema::new(
                name,
                vec![ColumnFamily::in_memory(FAMILY, 1)],
            )?)?,
        };
        Ok(BxTree {
            cfg,
            space,
            table,
            current: HashMap::new(),
        })
    }

    /// The partition index active for an update at `t`.
    fn partition_of(&self, t: Timestamp) -> u64 {
        ((t.as_secs_f64() / self.cfg.phase_secs) as u64) % self.cfg.partitions
    }

    /// Label timestamp of the partition an update at `t` goes into: the end
    /// of its phase.
    fn label_of(&self, t: Timestamp) -> f64 {
        let phase = (t.as_secs_f64() / self.cfg.phase_secs).floor();
        (phase + 1.0) * self.cfg.phase_secs
    }

    fn key(&self, partition: u64, curve_index: u64, oid: u64) -> RowKey {
        let mut v = Vec::with_capacity(24);
        v.extend_from_slice(&partition.to_be_bytes());
        v.extend_from_slice(&curve_index.to_be_bytes());
        v.extend_from_slice(&oid.to_be_bytes());
        RowKey::from_bytes(v)
    }

    fn encode(loc: &Point, vel: &Velocity, label_secs: f64) -> Vec<u8> {
        let mut v = Vec::with_capacity(40);
        v.extend_from_slice(&loc.x.to_le_bytes());
        v.extend_from_slice(&loc.y.to_le_bytes());
        v.extend_from_slice(&vel.vx.to_le_bytes());
        v.extend_from_slice(&vel.vy.to_le_bytes());
        v.extend_from_slice(&label_secs.to_le_bytes());
        v
    }

    fn decode(buf: &[u8]) -> Option<(Point, Velocity, f64)> {
        if buf.len() < 40 {
            return None;
        }
        let f = |r: std::ops::Range<usize>| f64::from_le_bytes(buf[r].try_into().unwrap());
        Some((
            Point::new(f(0..8), f(8..16)),
            Velocity::new(f(16..24), f(24..32)),
            f(32..40),
        ))
    }

    /// Inserts or updates one object: delete the old B+-tree entry, insert
    /// the new one keyed at the current phase's label timestamp. Two write
    /// RPCs — the Bx-tree's fixed per-update cost that schooling avoids.
    pub fn update(
        &mut self,
        s: &mut Session,
        oid: u64,
        loc: &Point,
        vel: &Velocity,
        t: Timestamp,
    ) -> Result<()> {
        let label = self.label_of(t);
        // Linearise the position at the label timestamp.
        let at_label = loc.advance(*vel, label - t.as_secs_f64());
        let clamped = self.space.world.clamp(&at_label);
        let cell = self.space.cell_at(self.cfg.grid_level, &clamped);
        let key = self.key(self.partition_of(t), cell.index, oid);
        if let Some(old_key) = self.current.insert(oid, key.clone()) {
            if old_key != key {
                s.mutate_row(&self.table, &old_key, &[Mutation::DeleteRow])?;
            }
        }
        s.mutate_row(
            &self.table,
            &key,
            &[Mutation::put(
                FAMILY,
                QUAL,
                t,
                Self::encode(loc, vel, label),
            )],
        )?;
        Ok(())
    }

    /// Removes one object.
    pub fn remove(&mut self, s: &mut Session, oid: u64) -> Result<bool> {
        match self.current.remove(&oid) {
            None => Ok(false),
            Some(key) => {
                s.mutate_row(&self.table, &key, &[Mutation::DeleteRow])?;
                Ok(true)
            }
        }
    }

    /// Range query: all objects inside `rect` at time `t`.
    ///
    /// Per partition, the window is enlarged by `v_max · |t − label|` and
    /// the covering curve cells are scanned as merged contiguous key ranges;
    /// candidates are then position-checked at `t`.
    pub fn range_query(&self, s: &mut Session, rect: &Rect, t: Timestamp) -> Result<Vec<BxEntry>> {
        let mut out = Vec::new();
        let now = t.as_secs_f64();
        for partition in 0..self.cfg.partitions {
            // The worst-case label distance within a partition is one full
            // phase; enlarge conservatively like the original.
            let enlarge = self.cfg.v_max * self.cfg.phase_secs.max(0.0)
                + self.cfg.v_max * 0.0_f64.max(now % self.cfg.phase_secs);
            let enlarged = Rect::new(
                rect.min_x - enlarge,
                rect.min_y - enlarge,
                rect.max_x + enlarge,
                rect.max_y + enlarge,
            );
            let unit = self.space.rect_to_unit(&enlarged);
            // Cover at an adaptive level (≤ 16×16 cells), then widen each
            // cover cell to its contiguous grid-level key range: same
            // superset semantics, bounded enumeration cost.
            let mut cover_level = self.cfg.grid_level;
            while cover_level > 0 {
                let side = (1u64 << cover_level) as f64;
                let span_x = (unit.max_x - unit.min_x) * side;
                let span_y = (unit.max_y - unit.min_y) * side;
                if span_x <= 16.0 && span_y <= 16.0 {
                    break;
                }
                cover_level -= 1;
            }
            let cells = cover_rect(self.space.curve, cover_level, &unit);
            for (start, end) in merge_cell_ranges(&cells, self.cfg.grid_level) {
                let rows = s.scan(
                    &self.table,
                    &ScanRange::between(self.key(partition, start, 0), self.key(partition, end, 0)),
                    &ReadOptions::latest_in(FAMILY),
                    None,
                )?;
                for row in rows {
                    let Some(cell) = row.latest(FAMILY, QUAL) else {
                        continue;
                    };
                    let Some((loc, vel, label)) = Self::decode(&cell.value) else {
                        continue;
                    };
                    // Advance from the *update* position: stored loc is the
                    // true position at update time; key was linearised.
                    let pos = loc.advance(vel, now - cell.ts.as_secs_f64());
                    let _ = label;
                    if rect.contains(&pos) {
                        let oid = u64::from_be_bytes(row.key.0[16..24].try_into().unwrap());
                        out.push(BxEntry { oid, loc: pos, vel });
                    }
                }
            }
        }
        out.sort_by_key(|e| e.oid);
        out.dedup_by_key(|e| e.oid);
        Ok(out)
    }

    /// kNN by iterative range enlargement: start from a radius sized for
    /// the expected density and double until `k` confirmed neighbours fit
    /// inside the verified radius.
    pub fn knn(
        &self,
        s: &mut Session,
        center: Point,
        k: usize,
        t: Timestamp,
    ) -> Result<Vec<BxEntry>> {
        if k == 0 || self.current.is_empty() {
            return Ok(Vec::new());
        }
        let total = self.current.len() as f64;
        let area = self.space.world.width() * self.space.world.height();
        // Radius expected to contain ~k objects under uniform density.
        let mut r = (area * k as f64 / (total * std::f64::consts::PI))
            .sqrt()
            .max(self.space.cell_side_world(self.cfg.grid_level));
        let max_r = self.space.world.width() + self.space.world.height();
        loop {
            let rect = Rect::new(center.x - r, center.y - r, center.x + r, center.y + r);
            let mut found = self.range_query(s, &rect, t)?;
            found.sort_by(|a, b| center.distance(&a.loc).total_cmp(&center.distance(&b.loc)));
            // Confirmed when the k-th candidate is within the *inscribed*
            // circle of the query rect (else a nearer object could hide
            // outside the rect corners).
            if found.len() >= k && center.distance(&found[k - 1].loc) <= r {
                found.truncate(k);
                return Ok(found);
            }
            if r >= max_r {
                found.truncate(k);
                return Ok(found);
            }
            r *= 2.0;
        }
    }

    /// Number of live objects.
    pub fn len(&self) -> usize {
        self.current.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.current.is_empty()
    }
}

/// Expands same-level cover cells to their contiguous `grid_level` key
/// ranges and merges adjacent ranges (cells arrive sorted from
/// `cover_rect`, so ranges arrive sorted too).
fn merge_cell_ranges(cells: &[CellId], grid_level: u8) -> Vec<(u64, u64)> {
    let mut ranges: Vec<(u64, u64)> = Vec::new();
    for c in cells {
        let Some((start, end)) = c.descendant_range(grid_level) else {
            continue;
        };
        match ranges.last_mut() {
            Some((_, e)) if *e == start => *e = end,
            _ => ranges.push((start, end)),
        }
    }
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;
    use moist_bigtable::CostProfile;

    fn setup() -> (Arc<Bigtable>, BxTree, Session) {
        let store = Bigtable::new();
        let tree = BxTree::new(&store, Space::paper_map(), BxConfig::default(), "bx").unwrap();
        let s = store.session_with(CostProfile::free());
        (store, tree, s)
    }

    #[test]
    fn merge_cell_ranges_collapses_contiguous_runs() {
        let mk = |i| CellId::new(4, i).unwrap();
        // Same level: ranges are the indexes themselves.
        let ranges = merge_cell_ranges(&[mk(1), mk(2), mk(3), mk(7), mk(9), mk(10)], 4);
        assert_eq!(ranges, vec![(1, 4), (7, 8), (9, 11)]);
        assert!(merge_cell_ranges(&[], 4).is_empty());
        // Coarser cover cells expand to their descendant ranges.
        let ranges = merge_cell_ranges(&[mk(1), mk(2)], 6);
        assert_eq!(ranges, vec![(16, 48)]);
    }

    #[test]
    fn update_then_range_query_finds_static_objects() {
        let (_st, mut tree, mut s) = setup();
        for i in 0..50u64 {
            let p = Point::new(
                10.0 + (i % 10) as f64 * 100.0,
                10.0 + (i / 10) as f64 * 100.0,
            );
            tree.update(&mut s, i, &p, &Velocity::ZERO, Timestamp::from_secs(1))
                .unwrap();
        }
        let hits = tree
            .range_query(
                &mut s,
                &Rect::new(0.0, 0.0, 250.0, 250.0),
                Timestamp::from_secs(1),
            )
            .unwrap();
        // Objects at x ∈ {10,110,210} × y ∈ {10,110,210}: 9 objects.
        assert_eq!(hits.len(), 9);
    }

    #[test]
    fn moving_objects_are_found_at_their_future_positions() {
        let (_st, mut tree, mut s) = setup();
        // Object crossing the map at 2 u/s.
        tree.update(
            &mut s,
            1,
            &Point::new(100.0, 500.0),
            &Velocity::new(2.0, 0.0),
            Timestamp::from_secs(0),
        )
        .unwrap();
        // 50 s later it should appear around x=200.
        let hits = tree
            .range_query(
                &mut s,
                &Rect::new(190.0, 490.0, 210.0, 510.0),
                Timestamp::from_secs(50),
            )
            .unwrap();
        assert_eq!(hits.len(), 1);
        assert!((hits[0].loc.x - 200.0).abs() < 1e-9);
        // And it is NOT found at its stale position.
        let stale = tree
            .range_query(
                &mut s,
                &Rect::new(90.0, 490.0, 110.0, 510.0),
                Timestamp::from_secs(50),
            )
            .unwrap();
        assert!(stale.is_empty());
    }

    #[test]
    fn knn_matches_brute_force() {
        let (_st, mut tree, mut s) = setup();
        let mut pts = Vec::new();
        let mut state = 0xBADC0FFEE0DDF00Du64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        for i in 0..300u64 {
            let p = Point::new(next() * 1000.0, next() * 1000.0);
            pts.push((i, p));
            tree.update(&mut s, i, &p, &Velocity::ZERO, Timestamp::from_secs(1))
                .unwrap();
        }
        let center = Point::new(400.0, 600.0);
        let got = tree
            .knn(&mut s, center, 7, Timestamp::from_secs(1))
            .unwrap();
        let mut brute: Vec<(u64, f64)> =
            pts.iter().map(|&(i, p)| (i, center.distance(&p))).collect();
        brute.sort_by(|a, b| a.1.total_cmp(&b.1));
        let want: Vec<u64> = brute[..7].iter().map(|&(i, _)| i).collect();
        let got_ids: Vec<u64> = got.iter().map(|e| e.oid).collect();
        assert_eq!(got_ids, want);
    }

    #[test]
    fn update_replaces_the_old_entry() {
        let (_st, mut tree, mut s) = setup();
        tree.update(
            &mut s,
            1,
            &Point::new(100.0, 100.0),
            &Velocity::ZERO,
            Timestamp::from_secs(0),
        )
        .unwrap();
        tree.update(
            &mut s,
            1,
            &Point::new(900.0, 900.0),
            &Velocity::ZERO,
            Timestamp::from_secs(1),
        )
        .unwrap();
        let everywhere = tree
            .range_query(
                &mut s,
                &Rect::new(0.0, 0.0, 1000.0, 1000.0),
                Timestamp::from_secs(1),
            )
            .unwrap();
        assert_eq!(everywhere.len(), 1);
        assert_eq!(everywhere[0].loc, Point::new(900.0, 900.0));
        assert!(tree.remove(&mut s, 1).unwrap());
        assert!(!tree.remove(&mut s, 1).unwrap());
        assert!(tree.is_empty());
    }

    #[test]
    fn knn_on_empty_tree_and_k_zero() {
        let (_st, mut tree, mut s) = setup();
        assert!(tree
            .knn(&mut s, Point::new(1.0, 1.0), 3, Timestamp::ZERO)
            .unwrap()
            .is_empty());
        tree.update(
            &mut s,
            1,
            &Point::new(5.0, 5.0),
            &Velocity::ZERO,
            Timestamp::ZERO,
        )
        .unwrap();
        assert!(tree
            .knn(&mut s, Point::new(1.0, 1.0), 0, Timestamp::ZERO)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn knn_with_fewer_objects_than_k_returns_all() {
        let (_st, mut tree, mut s) = setup();
        for i in 0..3u64 {
            tree.update(
                &mut s,
                i,
                &Point::new(100.0 * i as f64 + 50.0, 500.0),
                &Velocity::ZERO,
                Timestamp::ZERO,
            )
            .unwrap();
        }
        let got = tree
            .knn(&mut s, Point::new(0.0, 500.0), 10, Timestamp::ZERO)
            .unwrap();
        assert_eq!(got.len(), 3);
    }
}
