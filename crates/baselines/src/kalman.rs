//! Kalman-filter update shedding (§2.2: "An alternative could be to shed
//! updates using a Kalman Filter \[14\]" — Jain, Chang, Wang, SIGMOD 2004).
//!
//! Server and client each run the same per-axis constant-velocity Kalman
//! filter. The client compares its true position against the filter's
//! prediction and transmits only when the innovation exceeds the precision
//! bound ε; the server coasts on the prediction otherwise. Unlike object
//! schools, shedding here exploits *only* the single object's own motion
//! model — the paper's contrast: "MOIST sheds updates by exploiting
//! relationships between users, rather than making use of the data of just
//! a single user".

use moist_bigtable::{
    Bigtable, ColumnFamily, Mutation, Result, RowKey, Session, Table, TableSchema, Timestamp,
};
use moist_spatial::{Point, Velocity};
use std::collections::HashMap;
use std::sync::Arc;

/// Per-axis constant-velocity Kalman filter state.
#[derive(Debug, Clone, Copy)]
struct Axis {
    /// Position estimate.
    x: f64,
    /// Velocity estimate.
    v: f64,
    /// Covariance (2×2, symmetric): p00, p01, p11.
    p00: f64,
    p01: f64,
    p11: f64,
}

impl Axis {
    fn new(x: f64, v: f64) -> Self {
        Axis {
            x,
            v,
            p00: 1.0,
            p01: 0.0,
            p11: 1.0,
        }
    }

    /// Predict `dt` seconds ahead under the constant-velocity model with
    /// process noise `q`.
    fn predict(&mut self, dt: f64, q: f64) {
        self.x += self.v * dt;
        // P = F P Fᵀ + Q with F = [[1, dt], [0, 1]].
        let p00 = self.p00 + dt * (self.p01 + self.p01) + dt * dt * self.p11;
        let p01 = self.p01 + dt * self.p11;
        self.p00 = p00 + q * dt * dt * dt / 3.0;
        self.p01 = p01 + q * dt * dt / 2.0;
        self.p11 += q * dt;
    }

    /// Measurement update with position observation `z` (noise `r`).
    fn correct(&mut self, z: f64, r: f64) {
        let s = self.p00 + r;
        let k0 = self.p00 / s;
        let k1 = self.p01 / s;
        let innovation = z - self.x;
        self.x += k0 * innovation;
        self.v += k1 * innovation;
        let p00 = (1.0 - k0) * self.p00;
        let p01 = (1.0 - k0) * self.p01;
        let p11 = self.p11 - k1 * self.p01;
        self.p00 = p00;
        self.p01 = p01;
        self.p11 = p11;
    }
}

/// Shared filter state for one object (client and server run identical
/// copies, so the server's prediction equals the client's).
#[derive(Debug, Clone, Copy)]
struct FilterState {
    ax: Axis,
    ay: Axis,
    updated_secs: f64,
}

/// Tracker statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KalmanStats {
    /// Updates observed at clients.
    pub updates: u64,
    /// Updates shed (prediction within ε).
    pub shed: u64,
    /// Updates transmitted and written to the store.
    pub transmitted: u64,
}

impl KalmanStats {
    /// Fraction of updates shed.
    pub fn shed_ratio(&self) -> f64 {
        if self.updates == 0 {
            0.0
        } else {
            self.shed as f64 / self.updates as f64
        }
    }
}

/// The Kalman-shedding tracker over the shared store.
pub struct KalmanIndex {
    epsilon: f64,
    process_noise: f64,
    measurement_noise: f64,
    table: Arc<Table>,
    filters: HashMap<u64, FilterState>,
    stats: KalmanStats,
}

const FAMILY: &str = "kf";
const QUAL: &str = "s";

impl KalmanIndex {
    /// Creates the tracker. `epsilon` is the precision bound; noise terms
    /// tune the filter's trust in model vs measurements.
    pub fn new(
        store: &Arc<Bigtable>,
        epsilon: f64,
        process_noise: f64,
        measurement_noise: f64,
        name: &str,
    ) -> Result<Self> {
        let table = match store.open_table(name) {
            Ok(t) => t,
            Err(_) => store.create_table(TableSchema::new(
                name,
                vec![ColumnFamily::in_memory(FAMILY, 1)],
            )?)?,
        };
        Ok(KalmanIndex {
            epsilon: epsilon.max(0.0),
            process_noise: process_noise.max(1e-9),
            measurement_noise: measurement_noise.max(1e-9),
            table,
            filters: HashMap::new(),
            stats: KalmanStats::default(),
        })
    }

    fn encode(f: &FilterState) -> Vec<u8> {
        let mut v = Vec::with_capacity(40);
        v.extend_from_slice(&f.ax.x.to_le_bytes());
        v.extend_from_slice(&f.ay.x.to_le_bytes());
        v.extend_from_slice(&f.ax.v.to_le_bytes());
        v.extend_from_slice(&f.ay.v.to_le_bytes());
        v.extend_from_slice(&f.updated_secs.to_le_bytes());
        v
    }

    /// Processes one client observation; returns `true` when it was shed.
    pub fn update(
        &mut self,
        s: &mut Session,
        oid: u64,
        loc: &Point,
        vel: &Velocity,
        t: Timestamp,
    ) -> Result<bool> {
        self.stats.updates += 1;
        let now = t.as_secs_f64();
        match self.filters.get_mut(&oid) {
            None => {
                let state = FilterState {
                    ax: Axis::new(loc.x, vel.vx),
                    ay: Axis::new(loc.y, vel.vy),
                    updated_secs: now,
                };
                self.filters.insert(oid, state);
                s.mutate_row(
                    &self.table,
                    &RowKey::from_u64(oid),
                    &[Mutation::put(FAMILY, QUAL, t, Self::encode(&state))],
                )?;
                self.stats.transmitted += 1;
                Ok(false)
            }
            Some(state) => {
                let dt = (now - state.updated_secs).max(0.0);
                state.ax.predict(dt, self.process_noise);
                state.ay.predict(dt, self.process_noise);
                state.updated_secs = now;
                let predicted = Point::new(state.ax.x, state.ay.x);
                if predicted.distance(loc) <= self.epsilon {
                    // Server coasts on the shared prediction: shed.
                    self.stats.shed += 1;
                    Ok(true)
                } else {
                    state.ax.correct(loc.x, self.measurement_noise);
                    state.ay.correct(loc.y, self.measurement_noise);
                    state.ax.v = vel.vx; // reported velocity is authoritative
                    state.ay.v = vel.vy;
                    let snapshot = *state;
                    s.mutate_row(
                        &self.table,
                        &RowKey::from_u64(oid),
                        &[Mutation::put(FAMILY, QUAL, t, Self::encode(&snapshot))],
                    )?;
                    self.stats.transmitted += 1;
                    Ok(false)
                }
            }
        }
    }

    /// The server-side position estimate for `oid` at `t`.
    pub fn position(&self, oid: u64, t: Timestamp) -> Option<Point> {
        self.filters.get(&oid).map(|f| {
            let dt = (t.as_secs_f64() - f.updated_secs).max(0.0);
            Point::new(f.ax.x + f.ax.v * dt, f.ay.x + f.ay.v * dt)
        })
    }

    /// Counters.
    pub fn stats(&self) -> KalmanStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moist_bigtable::CostProfile;

    fn setup(epsilon: f64) -> (Arc<Bigtable>, KalmanIndex, Session) {
        let store = Bigtable::new();
        let idx = KalmanIndex::new(&store, epsilon, 0.1, 0.5, "kf").unwrap();
        let s = store.session_with(CostProfile::free());
        (store, idx, s)
    }

    #[test]
    fn linear_motion_is_shed_after_initialisation() {
        let (_st, mut idx, mut s) = setup(5.0);
        let v = Velocity::new(2.0, 0.0);
        // First update transmits (initialisation).
        assert!(!idx
            .update(
                &mut s,
                1,
                &Point::new(0.0, 0.0),
                &v,
                Timestamp::from_secs(0)
            )
            .unwrap());
        // Constant-velocity motion matches the prediction exactly: all shed.
        for t in 1..=10u64 {
            let p = Point::new(2.0 * t as f64, 0.0);
            assert!(
                idx.update(&mut s, 1, &p, &v, Timestamp::from_secs(t))
                    .unwrap(),
                "update at t={t} should be shed"
            );
        }
        let st = idx.stats();
        assert_eq!(st.transmitted, 1);
        assert_eq!(st.shed, 10);
        assert!(st.shed_ratio() > 0.9);
    }

    #[test]
    fn sharp_turns_force_transmission_then_recovery() {
        let (_st, mut idx, mut s) = setup(3.0);
        let east = Velocity::new(2.0, 0.0);
        idx.update(
            &mut s,
            1,
            &Point::new(0.0, 0.0),
            &east,
            Timestamp::from_secs(0),
        )
        .unwrap();
        for t in 1..=5u64 {
            idx.update(
                &mut s,
                1,
                &Point::new(2.0 * t as f64, 0.0),
                &east,
                Timestamp::from_secs(t),
            )
            .unwrap();
        }
        // 90° turn: the next few fixes deviate and must transmit.
        let north = Velocity::new(0.0, 2.0);
        let shed_on_turn = idx
            .update(
                &mut s,
                1,
                &Point::new(10.0, 8.0),
                &north,
                Timestamp::from_secs(9),
            )
            .unwrap();
        assert!(!shed_on_turn, "a sharp turn must transmit");
        // After the correction, northbound motion is shed again.
        let mut shed_count = 0;
        for t in 10..=15u64 {
            let p = Point::new(10.0, 8.0 + 2.0 * (t - 9) as f64);
            if idx
                .update(&mut s, 1, &p, &north, Timestamp::from_secs(t))
                .unwrap()
            {
                shed_count += 1;
            }
        }
        assert!(
            shed_count >= 4,
            "filter must re-lock after the turn: {shed_count}"
        );
    }

    #[test]
    fn server_position_tracks_within_epsilon_on_shed_stretches() {
        let (_st, mut idx, mut s) = setup(4.0);
        let v = Velocity::new(1.5, -0.5);
        idx.update(
            &mut s,
            7,
            &Point::new(100.0, 100.0),
            &v,
            Timestamp::from_secs(0),
        )
        .unwrap();
        for t in 1..=8u64 {
            let truth = Point::new(100.0 + 1.5 * t as f64, 100.0 - 0.5 * t as f64);
            idx.update(&mut s, 7, &truth, &v, Timestamp::from_secs(t))
                .unwrap();
            let est = idx.position(7, Timestamp::from_secs(t)).unwrap();
            assert!(
                est.distance(&truth) <= 4.0 + 1e-9,
                "t={t}: estimate {est:?} vs truth {truth:?}"
            );
        }
        assert!(idx.position(99, Timestamp::ZERO).is_none());
    }

    #[test]
    fn epsilon_zero_transmits_everything_noisy() {
        let (_st, mut idx, mut s) = setup(0.0);
        let v = Velocity::new(1.0, 0.0);
        for t in 0..5u64 {
            // Alternating noise breaks exact prediction at ε = 0.
            let noise = if t % 2 == 0 { 0.001 } else { -0.001 };
            let p = Point::new(t as f64 + noise, 0.0);
            idx.update(&mut s, 1, &p, &v, Timestamp::from_secs(t))
                .unwrap();
        }
        assert_eq!(idx.stats().shed, 0);
        assert_eq!(idx.stats().transmitted, 5);
    }
}
