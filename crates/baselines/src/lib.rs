//! # moist-baselines
//!
//! Comparator systems the MOIST paper evaluates against or contrasts with:
//!
//! * [`bxtree`] — the Bx-tree of Jensen et al. \[15\]: B+-tree over
//!   `time-partition ∥ space-filling-curve` keys, update = delete+insert,
//!   kNN by iterative window enlargement. The paper's headline "2×/80×"
//!   update-QPS comparisons are against this index.
//! * [`static_cluster`] — prototype-based static clustering (\[12\], \[9\]):
//!   sheds updates while a fixed motion prototype holds, rewrites on every
//!   pattern change (Figure 1a).
//! * [`dynamic_cluster`] — virtual-centre dynamic clustering (\[16\], \[18\]):
//!   every member update adjusts the cluster centre, re-clustering is an
//!   `O(n log n)` sweep over all clusters (Figure 1b).
//! * [`kalman`] — Kalman-filter update shedding (\[14\]): the single-user
//!   shedding alternative §2.2 mentions, contrasting with schools' use of
//!   inter-user relationships.
//! * [`grid`] — a bare cell-grid indexer with no clustering at all: the
//!   "no school" lower bound.
//!
//! All comparators run over the same `moist-bigtable` store and cost model
//! as MOIST, so benchmark gaps reflect algorithmic differences.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bxtree;
pub mod dynamic_cluster;
pub mod grid;
pub mod kalman;
pub mod static_cluster;

pub use bxtree::{BxConfig, BxEntry, BxTree};
pub use dynamic_cluster::{DynamicClusterIndex, DynamicClusterStats};
pub use grid::GridIndex;
pub use kalman::{KalmanIndex, KalmanStats};
pub use static_cluster::{StaticClusterIndex, StaticClusterStats};
