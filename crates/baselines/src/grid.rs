//! Naive grid indexer: the no-schooling comparator.
//!
//! Every object writes its location and its spatial-index entry on every
//! update — no Affiliation Table, no shedding. This isolates what object
//! schooling buys: MOIST with ε=0 still pays the affiliation read/write,
//! whereas this baseline is the leanest possible per-update write path, so
//! it bounds the best any non-shedding indexer can do on the same store.

use moist_bigtable::{
    Bigtable, ColumnFamily, Mutation, ReadOptions, Result, RowKey, RowMutation, ScanRange, Session,
    Table, TableSchema, Timestamp,
};
use moist_spatial::{Point, Space};
use std::collections::HashMap;
use std::sync::Arc;

/// A plain cell-grid index over the shared store.
pub struct GridIndex {
    space: Space,
    table: Arc<Table>,
    /// Last filed leaf per object (in-server cache, as a real front-end
    /// keeps; avoids a read per update).
    last_leaf: HashMap<u64, u64>,
}

const FAMILY: &str = "id";
const QUAL: &str = "p";

impl GridIndex {
    /// Creates the index table (or opens it when it already exists).
    pub fn new(store: &Arc<Bigtable>, space: Space, name: &str) -> Result<Self> {
        let table = match store.open_table(name) {
            Ok(t) => t,
            Err(_) => store.create_table(TableSchema::new(
                name,
                vec![ColumnFamily::in_memory(FAMILY, 1)],
            )?)?,
        };
        Ok(GridIndex {
            space,
            table,
            last_leaf: HashMap::new(),
        })
    }

    fn encode(p: &Point) -> Vec<u8> {
        let mut v = Vec::with_capacity(16);
        v.extend_from_slice(&p.x.to_le_bytes());
        v.extend_from_slice(&p.y.to_le_bytes());
        v
    }

    fn decode(buf: &[u8]) -> Option<Point> {
        if buf.len() < 16 {
            return None;
        }
        Some(Point::new(
            f64::from_le_bytes(buf[0..8].try_into().ok()?),
            f64::from_le_bytes(buf[8..16].try_into().ok()?),
        ))
    }

    /// Updates one object's position (delete old entry + insert new, one
    /// batch RPC).
    pub fn update(&mut self, s: &mut Session, oid: u64, loc: &Point, ts: Timestamp) -> Result<()> {
        let leaf = self.space.leaf_cell(loc).index;
        let put = RowMutation::new(
            RowKey::composite(leaf, oid),
            vec![Mutation::put(FAMILY, QUAL, ts, Self::encode(loc))],
        );
        match self.last_leaf.insert(oid, leaf) {
            Some(old) if old != leaf => {
                let del = RowMutation::new(RowKey::composite(old, oid), vec![Mutation::DeleteRow]);
                s.mutate_rows(&self.table, &[del, put])?;
            }
            _ => {
                s.mutate_rows(&self.table, &[put])?;
            }
        }
        Ok(())
    }

    /// All objects in the given cell range `[start_leaf, end_leaf)`.
    pub fn scan_range(
        &self,
        s: &mut Session,
        start_leaf: u64,
        end_leaf: u64,
    ) -> Result<Vec<(u64, Point)>> {
        let rows = s.scan(
            &self.table,
            &ScanRange::between(
                RowKey::composite(start_leaf, 0),
                RowKey::composite(end_leaf, 0),
            ),
            &ReadOptions::latest_in(FAMILY),
            None,
        )?;
        Ok(rows
            .into_iter()
            .filter_map(|r| {
                let (_, oid) = r.key.split_composite()?;
                let p = Self::decode(&r.latest(FAMILY, QUAL)?.value)?;
                Some((oid, p))
            })
            .collect())
    }

    /// Indexed object count.
    pub fn len(&self) -> usize {
        self.last_leaf.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.last_leaf.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moist_bigtable::CostProfile;

    #[test]
    fn update_moves_exactly_one_entry() {
        let store = Bigtable::new();
        let space = Space::paper_map();
        let mut g = GridIndex::new(&store, space, "grid").unwrap();
        let mut s = store.session_with(CostProfile::free());
        g.update(&mut s, 1, &Point::new(100.0, 100.0), Timestamp(0))
            .unwrap();
        g.update(&mut s, 1, &Point::new(900.0, 900.0), Timestamp(1))
            .unwrap();
        let all = g.scan_range(&mut s, 0, u64::MAX >> 8).unwrap();
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].1, Point::new(900.0, 900.0));
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn reopen_shares_the_table() {
        let store = Bigtable::new();
        let space = Space::paper_map();
        let mut a = GridIndex::new(&store, space, "grid").unwrap();
        let mut s = store.session_with(CostProfile::free());
        a.update(&mut s, 5, &Point::new(10.0, 10.0), Timestamp(0))
            .unwrap();
        let b = GridIndex::new(&store, space, "grid").unwrap();
        let seen = b.scan_range(&mut s, 0, u64::MAX >> 8).unwrap();
        assert_eq!(seen.len(), 1);
    }
}
