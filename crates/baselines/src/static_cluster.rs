//! Static (prototype-based) clustering comparator (§2.3.1; \[12\], \[9\]).
//!
//! A fixed set of motion prototypes (direction × speed class) is chosen up
//! front. Each object is represented by an *anchor* (position + time) plus
//! its assigned prototype velocity; its modelled position is
//! `anchor + prototype · Δt`. An update whose reported position stays within
//! ε of the model is shed; otherwise the object is **re-classified**: a new
//! prototype is picked and the anchor rewritten — one index write.
//!
//! The contrast with object schools (Figure 1): every turn that breaks the
//! prototype forces a write for *every* object individually, whereas a
//! school sheds followers as long as the leader mirrors the turn.

use moist_bigtable::{
    Bigtable, ColumnFamily, Mutation, Result, RowKey, Session, Table, TableSchema, Timestamp,
};
use moist_spatial::{Point, Velocity};
use std::sync::Arc;

/// The comparator's statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StaticClusterStats {
    /// Updates received.
    pub updates: u64,
    /// Updates shed (model matched within ε).
    pub shed: u64,
    /// Re-classifications (anchor rewrites).
    pub reclassified: u64,
}

/// Static-prototype tracker over the shared store.
pub struct StaticClusterIndex {
    prototypes: Vec<Velocity>,
    epsilon: f64,
    table: Arc<Table>,
    stats: StaticClusterStats,
}

const FAMILY: &str = "anchor";
const QUAL: &str = "a";

impl StaticClusterIndex {
    /// Builds the standard prototype set: `directions` headings at each of
    /// `speeds`, plus the zero prototype for stationary objects.
    pub fn prototype_set(directions: usize, speeds: &[f64]) -> Vec<Velocity> {
        let mut protos = vec![Velocity::ZERO];
        for &speed in speeds {
            for d in 0..directions.max(1) {
                let theta = d as f64 * std::f64::consts::TAU / directions.max(1) as f64;
                protos.push(Velocity::new(speed * theta.cos(), speed * theta.sin()));
            }
        }
        protos
    }

    /// Creates the tracker with the given prototypes and deviation bound ε.
    pub fn new(
        store: &Arc<Bigtable>,
        prototypes: Vec<Velocity>,
        epsilon: f64,
        name: &str,
    ) -> Result<Self> {
        let table = match store.open_table(name) {
            Ok(t) => t,
            Err(_) => store.create_table(TableSchema::new(
                name,
                vec![ColumnFamily::in_memory(FAMILY, 1)],
            )?)?,
        };
        Ok(StaticClusterIndex {
            prototypes: if prototypes.is_empty() {
                vec![Velocity::ZERO]
            } else {
                prototypes
            },
            epsilon: epsilon.max(0.0),
            table,
            stats: StaticClusterStats::default(),
        })
    }

    fn encode(anchor: &Point, proto_idx: usize, anchor_secs: f64) -> Vec<u8> {
        let mut v = Vec::with_capacity(28);
        v.extend_from_slice(&anchor.x.to_le_bytes());
        v.extend_from_slice(&anchor.y.to_le_bytes());
        v.extend_from_slice(&(proto_idx as u32).to_le_bytes());
        v.extend_from_slice(&anchor_secs.to_le_bytes());
        v
    }

    fn decode(buf: &[u8]) -> Option<(Point, usize, f64)> {
        if buf.len() < 28 {
            return None;
        }
        Some((
            Point::new(
                f64::from_le_bytes(buf[0..8].try_into().ok()?),
                f64::from_le_bytes(buf[8..16].try_into().ok()?),
            ),
            u32::from_le_bytes(buf[16..20].try_into().ok()?) as usize,
            f64::from_le_bytes(buf[20..28].try_into().ok()?),
        ))
    }

    fn best_prototype(&self, vel: &Velocity) -> usize {
        let mut best = 0usize;
        let mut best_d = f64::INFINITY;
        for (i, p) in self.prototypes.iter().enumerate() {
            let d = p.difference(vel);
            if d < best_d {
                best_d = d;
                best = i;
            }
        }
        best
    }

    /// Processes one update: shed when the prototype model still matches,
    /// re-classify otherwise. Returns `true` when the update was shed.
    pub fn update(
        &mut self,
        s: &mut Session,
        oid: u64,
        loc: &Point,
        vel: &Velocity,
        t: Timestamp,
    ) -> Result<bool> {
        self.stats.updates += 1;
        let key = RowKey::from_u64(oid);
        if let Some(cell) = s.get_latest(&self.table, &key, FAMILY, QUAL)? {
            if let Some((anchor, proto_idx, anchor_secs)) = Self::decode(&cell.value) {
                let proto = self.prototypes[proto_idx.min(self.prototypes.len() - 1)];
                let modelled = anchor.advance(proto, t.as_secs_f64() - anchor_secs);
                if modelled.distance(loc) <= self.epsilon {
                    self.stats.shed += 1;
                    return Ok(true);
                }
            }
        }
        // Re-classification: new anchor + nearest prototype, one write.
        let proto_idx = self.best_prototype(vel);
        s.mutate_row(
            &self.table,
            &key,
            &[Mutation::put(
                FAMILY,
                QUAL,
                t,
                Self::encode(loc, proto_idx, t.as_secs_f64()),
            )],
        )?;
        self.stats.reclassified += 1;
        Ok(false)
    }

    /// Modelled current position of an object.
    pub fn position(&self, s: &mut Session, oid: u64, t: Timestamp) -> Result<Option<Point>> {
        match s.get_latest(&self.table, &RowKey::from_u64(oid), FAMILY, QUAL)? {
            None => Ok(None),
            Some(cell) => Ok(Self::decode(&cell.value).map(|(anchor, idx, secs)| {
                let proto = self.prototypes[idx.min(self.prototypes.len() - 1)];
                anchor.advance(proto, t.as_secs_f64() - secs)
            })),
        }
    }

    /// Counters.
    pub fn stats(&self) -> StaticClusterStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moist_bigtable::CostProfile;

    fn setup(epsilon: f64) -> (Arc<Bigtable>, StaticClusterIndex, Session) {
        let store = Bigtable::new();
        let protos = StaticClusterIndex::prototype_set(8, &[1.0, 2.0]);
        let idx = StaticClusterIndex::new(&store, protos, epsilon, "static").unwrap();
        let s = store.session_with(CostProfile::free());
        (store, idx, s)
    }

    #[test]
    fn prototype_set_covers_directions_and_zero() {
        let protos = StaticClusterIndex::prototype_set(4, &[1.0]);
        assert_eq!(protos.len(), 5);
        assert_eq!(protos[0], Velocity::ZERO);
        // All four unit headings present.
        assert!(protos.iter().any(|v| (v.vx - 1.0).abs() < 1e-9));
        assert!(protos.iter().any(|v| (v.vy - 1.0).abs() < 1e-9));
    }

    #[test]
    fn straight_motion_is_shed_until_a_turn() {
        let (_st, mut idx, mut s) = setup(5.0);
        let v = Velocity::new(1.0, 0.0);
        // First update classifies (write).
        assert!(!idx
            .update(
                &mut s,
                1,
                &Point::new(0.0, 0.0),
                &v,
                Timestamp::from_secs(0)
            )
            .unwrap());
        // Straight-line motion matching the east prototype: shed.
        for t in 1..=5u64 {
            let p = Point::new(t as f64, 0.0);
            assert!(idx
                .update(&mut s, 1, &p, &v, Timestamp::from_secs(t))
                .unwrap());
        }
        // A 90° turn breaks the model → reclassify.
        let turned = Point::new(5.0, 30.0);
        assert!(!idx
            .update(
                &mut s,
                1,
                &turned,
                &Velocity::new(0.0, 1.0),
                Timestamp::from_secs(6)
            )
            .unwrap());
        let st = idx.stats();
        assert_eq!(st.updates, 7);
        assert_eq!(st.shed, 5);
        assert_eq!(st.reclassified, 2);
    }

    #[test]
    fn position_follows_the_prototype_model() {
        let (_st, mut idx, mut s) = setup(5.0);
        idx.update(
            &mut s,
            1,
            &Point::new(10.0, 10.0),
            &Velocity::new(1.0, 0.0),
            Timestamp::from_secs(0),
        )
        .unwrap();
        let p = idx
            .position(&mut s, 1, Timestamp::from_secs(4))
            .unwrap()
            .unwrap();
        assert!((p.x - 14.0).abs() < 1e-9);
        assert!(idx.position(&mut s, 9, Timestamp::ZERO).unwrap().is_none());
    }

    #[test]
    fn off_prototype_speed_triggers_more_reclassification() {
        // Speed 1.5 sits between prototypes 1.0 and 2.0: the model drifts
        // 0.5 u/s, so with ε=2 a reclassification happens every ~4 s.
        let (_st, mut idx, mut s) = setup(2.0);
        let v = Velocity::new(1.5, 0.0);
        for t in 0..=20u64 {
            let p = Point::new(1.5 * t as f64, 0.0);
            idx.update(&mut s, 1, &p, &v, Timestamp::from_secs(t))
                .unwrap();
        }
        let st = idx.stats();
        assert!(st.reclassified >= 4, "drift must force rewrites: {st:?}");
        assert!(st.shed > 0, "some updates still shed: {st:?}");
    }
}
