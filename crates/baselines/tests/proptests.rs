//! Property-based tests for the comparator indexes: Bx-tree queries against
//! a brute-force oracle, and shedding-baseline accounting invariants.

use moist_baselines::{BxConfig, BxTree, DynamicClusterIndex, KalmanIndex, StaticClusterIndex};
use moist_bigtable::{Bigtable, CostProfile, Timestamp};
use moist_spatial::{Point, Rect, Space, Velocity};
use proptest::prelude::*;

#[derive(Debug, Clone, Copy)]
struct Obj {
    oid: u64,
    x: f64,
    y: f64,
    vx: f64,
    vy: f64,
}

fn objects(n: usize) -> impl Strategy<Value = Vec<Obj>> {
    prop::collection::vec(
        (0.0f64..1000.0, 0.0f64..1000.0, -2.0f64..2.0, -2.0f64..2.0),
        1..n,
    )
    .prop_map(|v| {
        v.into_iter()
            .enumerate()
            .map(|(i, (x, y, vx, vy))| Obj {
                oid: i as u64,
                x,
                y,
                vx,
                vy,
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Bx-tree range queries are a superset-free match of the oracle:
    /// exactly the objects whose extrapolated position lies in the rect.
    #[test]
    fn bxtree_range_matches_oracle(
        objs in objects(60),
        rx in 0.0f64..800.0,
        ry in 0.0f64..800.0,
        side in 20.0f64..300.0,
        query_dt in 0.0f64..30.0,
    ) {
        let store = Bigtable::new();
        let mut tree = BxTree::new(
            &store,
            Space::paper_map(),
            BxConfig { v_max: 3.0, ..BxConfig::default() },
            "bx",
        )
        .unwrap();
        let mut s = store.session_with(CostProfile::free());
        let t0 = Timestamp::from_secs(1);
        for o in &objs {
            tree.update(&mut s, o.oid, &Point::new(o.x, o.y), &Velocity::new(o.vx, o.vy), t0)
                .unwrap();
        }
        let at = t0.plus_secs(query_dt);
        let rect = Rect::new(rx, ry, rx + side, ry + side);
        let got = tree.range_query(&mut s, &rect, at).unwrap();
        let mut got_ids: Vec<u64> = got.iter().map(|e| e.oid).collect();
        got_ids.sort_unstable();
        // Timestamp quantisation (whole µs) can flip membership for objects
        // within ~v·1e-6 of the rect border; treat those as "either way".
        let eps = 1e-4;
        let inner = Rect::new(rect.min_x + eps, rect.min_y + eps, rect.max_x - eps, rect.max_y - eps);
        let outer = Rect::new(rect.min_x - eps, rect.min_y - eps, rect.max_x + eps, rect.max_y + eps);
        for o in &objs {
            let p = Point::new(o.x + o.vx * query_dt, o.y + o.vy * query_dt);
            if inner.contains(&p) {
                prop_assert!(got_ids.contains(&o.oid), "missing object {}", o.oid);
            } else if !outer.contains(&p) {
                prop_assert!(!got_ids.contains(&o.oid), "spurious object {}", o.oid);
            }
        }
    }

    /// Bx-tree kNN equals brute force at any query time within the phase.
    #[test]
    fn bxtree_knn_matches_oracle(
        objs in objects(80),
        qx in 0.0f64..1000.0,
        qy in 0.0f64..1000.0,
        k in 1usize..8,
        query_dt in 0.0f64..20.0,
    ) {
        let store = Bigtable::new();
        let mut tree = BxTree::new(
            &store,
            Space::paper_map(),
            BxConfig { v_max: 3.0, ..BxConfig::default() },
            "bx",
        )
        .unwrap();
        let mut s = store.session_with(CostProfile::free());
        let t0 = Timestamp::from_secs(1);
        for o in &objs {
            tree.update(&mut s, o.oid, &Point::new(o.x, o.y), &Velocity::new(o.vx, o.vy), t0)
                .unwrap();
        }
        let at = t0.plus_secs(query_dt);
        let center = Point::new(qx, qy);
        let got = tree.knn(&mut s, center, k, at).unwrap();
        let mut brute: Vec<(f64, u64)> = objs
            .iter()
            .map(|o| {
                let p = Point::new(o.x + o.vx * query_dt, o.y + o.vy * query_dt);
                (center.distance(&p), o.oid)
            })
            .collect();
        brute.sort_by(|a, b| a.0.total_cmp(&b.0));
        let kk = k.min(objs.len());
        prop_assert_eq!(got.len(), kk);
        for (g, w) in got.iter().zip(brute.iter()) {
            // Timestamps quantise to whole microseconds, so extrapolated
            // positions can differ from the f64 oracle by ~v·1e-6 s.
            prop_assert!(
                (center.distance(&g.loc) - w.0).abs() < 1e-4,
                "kNN distance mismatch: {} vs {}",
                center.distance(&g.loc),
                w.0
            );
        }
    }

    /// Shedding baselines never lose accounting: updates = shed +
    /// transmitted/reclassified, and their served positions respect ε on
    /// shed stretches of exactly linear motion.
    #[test]
    fn shedding_baselines_account_consistently(
        v in 0.2f64..2.0,
        steps in 2u64..20,
        epsilon in 1.0f64..20.0,
    ) {
        let store = Bigtable::new();
        let mut kalman = KalmanIndex::new(&store, epsilon, 0.1, 0.5, "kf").unwrap();
        let protos = StaticClusterIndex::prototype_set(8, &[0.5, 1.0, 1.5, 2.0]);
        let mut stat = StaticClusterIndex::new(&store, protos, epsilon, "st").unwrap();
        let mut s = store.session_with(CostProfile::free());
        let vel = Velocity::new(v, 0.0);
        for t in 0..steps {
            let p = Point::new(v * t as f64, 100.0);
            let ts = Timestamp::from_secs(t);
            let shed_k = kalman.update(&mut s, 1, &p, &vel, ts).unwrap();
            if shed_k {
                let est = kalman.position(1, ts).unwrap();
                prop_assert!(est.distance(&p) <= epsilon + 1e-9);
            }
            let shed_s = stat.update(&mut s, 1, &p, &vel, ts).unwrap();
            if shed_s {
                let est = stat.position(&mut s, 1, ts).unwrap().unwrap();
                prop_assert!(est.distance(&p) <= epsilon + 1e-9);
            }
        }
        let ks = kalman.stats();
        prop_assert_eq!(ks.updates, ks.shed + ks.transmitted);
        let ss = stat.stats();
        prop_assert_eq!(ss.updates, ss.shed + ss.reclassified);
    }

    /// Dynamic clustering conserves membership: every object maps to a live
    /// cluster and member counts stay positive.
    #[test]
    fn dynamic_clustering_membership_is_consistent(
        objs in objects(30),
        radius in 10.0f64..200.0,
    ) {
        let store = Bigtable::new();
        let mut idx = DynamicClusterIndex::new(&store, radius, "dy").unwrap();
        let mut s = store.session_with(CostProfile::free());
        for o in &objs {
            idx.update(&mut s, o.oid, &Point::new(o.x, o.y), &Velocity::new(o.vx, o.vy), Timestamp::from_secs(0))
                .unwrap();
        }
        let merged = idx.recluster(&mut s, Timestamp::from_secs(0), 1.0).unwrap();
        let clusters_after_merge = idx.cluster_count();
        prop_assert!(clusters_after_merge + merged <= objs.len());
        // Post-recluster updates may legitimately depart (a merge shifts the
        // weighted centre), but they must never resurrect dead cluster rows:
        // the live-cluster count only changes by the departures that create
        // fresh singleton clusters.
        let departures_before = idx.stats().departures;
        for o in &objs {
            idx.update(&mut s, o.oid, &Point::new(o.x, o.y), &Velocity::new(o.vx, o.vy), Timestamp::from_secs(0))
                .unwrap();
        }
        let new_departures = (idx.stats().departures - departures_before) as usize;
        prop_assert_eq!(
            idx.cluster_count(),
            clusters_after_merge + new_departures,
            "cluster rows out of sync with membership"
        );
        prop_assert!(idx.cluster_count() >= 1);
    }
}
