//! # moist-workload
//!
//! Synthetic moving-object workloads reproducing the MOIST paper's §4.1
//! experiment setup:
//!
//! * [`roadnet`] — the road-network simulation: rectangular buildings with
//!   entrances, pedestrians (0–1 u/s) and cars (1–2 u/s), equal-probability
//!   turns at crossroads, 5% building entry/exit, noisy reports, 0–5 s
//!   update intervals;
//! * [`uniform`] — uniform random objects for the BigTable stress tests
//!   (400k–1M objects);
//! * [`driver`] — multi-threaded client pools and per-second QPS timelines.
//!
//! All generators are deterministic under a fixed seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod driver;
pub mod roadnet;
pub mod uniform;

pub use driver::{ClientPool, QpsSample, QpsTimeline};
pub use roadnet::{
    Agent, AgentKind, Building, RoadMap, RoadMapConfig, RoadNetSim, SimConfig, SimUpdate,
};
pub use uniform::UniformSim;
