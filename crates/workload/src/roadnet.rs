//! The §4.1 road-network workload.
//!
//! "We used a road-networked map that had rectangular buildings surrounded
//! by roads. Each building was given an entrance. Moving objects were
//! divided into two types: pedestrians and cars. … Velocity was chosen
//! between 0 and 1 units/second for pedestrians and between 1 and 2
//! units/second for cars. The locations and velocities in each update
//! message were randomly perturbed to simulate noise, and the update
//! interval was randomly chosen between zero and five seconds. When an
//! object reached a crossroad, it chose a turn with equal probability.
//! When a pedestrian was near an entrance to a building, they chose to
//! enter it with 5% probability. Once inside a building, a pedestrian
//! exited the building with a 5% probability also. During the time a
//! pedestrian was inside of a building, each update would assign a position
//! to the pedestrian within the building uniformly, at random."

use moist_spatial::{Point, Rect, Velocity};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Map geometry: a `blocks × blocks` grid of buildings with roads between.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct RoadMapConfig {
    /// Side length of the (square) map in world units.
    pub map_size: f64,
    /// Number of blocks per axis.
    pub blocks: u32,
    /// Margin between a road centreline and the building wall.
    pub road_margin: f64,
}

impl Default for RoadMapConfig {
    fn default() -> Self {
        RoadMapConfig {
            map_size: 1000.0,
            blocks: 10,
            road_margin: 5.0,
        }
    }
}

/// A building: its footprint plus the entrance on its south wall.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Building {
    /// Footprint rectangle.
    pub rect: Rect,
    /// Entrance point (on the road grid, at the wall).
    pub entrance: Point,
}

/// The generated road map.
#[derive(Debug, Clone)]
pub struct RoadMap {
    cfg: RoadMapConfig,
    buildings: Vec<Building>,
}

impl RoadMap {
    /// Builds the map: roads run along `x = i·spacing` and `y = j·spacing`;
    /// each block holds one building with a south-wall entrance.
    pub fn new(cfg: RoadMapConfig) -> Self {
        let spacing = cfg.map_size / cfg.blocks.max(1) as f64;
        let m = cfg.road_margin.min(spacing / 4.0);
        let mut buildings = Vec::with_capacity((cfg.blocks * cfg.blocks) as usize);
        for i in 0..cfg.blocks {
            for j in 0..cfg.blocks {
                let x0 = i as f64 * spacing + m;
                let y0 = j as f64 * spacing + m;
                let rect = Rect::new(x0, y0, x0 + spacing - 2.0 * m, y0 + spacing - 2.0 * m);
                let entrance = Point::new((rect.min_x + rect.max_x) / 2.0, j as f64 * spacing);
                buildings.push(Building { rect, entrance });
            }
        }
        RoadMap { cfg, buildings }
    }

    /// Road spacing (distance between parallel road centrelines).
    pub fn spacing(&self) -> f64 {
        self.cfg.map_size / self.cfg.blocks.max(1) as f64
    }

    /// Map side length.
    pub fn size(&self) -> f64 {
        self.cfg.map_size
    }

    /// All buildings.
    pub fn buildings(&self) -> &[Building] {
        &self.buildings
    }

    /// The building whose entrance is nearest to `p`, with the distance.
    pub fn nearest_entrance(&self, p: &Point) -> Option<(usize, f64)> {
        self.buildings
            .iter()
            .enumerate()
            .map(|(i, b)| (i, b.entrance.distance(p)))
            .min_by(|a, b| a.1.total_cmp(&b.1))
    }
}

/// Agent kind with the paper's speed ranges.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AgentKind {
    /// 0–1 units/s; may enter buildings.
    Pedestrian,
    /// 1–2 units/s; stays on roads.
    Car,
}

/// Heading along the road grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Heading {
    North,
    South,
    East,
    West,
}

impl Heading {
    fn unit(self) -> (f64, f64) {
        match self {
            Heading::North => (0.0, 1.0),
            Heading::South => (0.0, -1.0),
            Heading::East => (1.0, 0.0),
            Heading::West => (-1.0, 0.0),
        }
    }
}

/// Where an agent currently is.
#[derive(Debug, Clone, Copy, PartialEq)]
enum AgentState {
    /// On the road grid, moving toward the next intersection.
    OnRoad { heading: Heading },
    /// Inside a building (pedestrians only).
    InBuilding { building: usize },
}

/// One simulated moving object.
#[derive(Debug, Clone)]
pub struct Agent {
    /// Object id.
    pub oid: u64,
    /// Kind (speed class).
    pub kind: AgentKind,
    /// True position.
    pub loc: Point,
    /// Scalar speed, units/s.
    pub speed: f64,
    state: AgentState,
    /// Next time this agent sends an update, seconds.
    pub next_update_secs: f64,
    /// Last time this agent's true position was advanced (lazy movement).
    last_move_secs: f64,
}

impl Agent {
    /// True (noise-free) velocity vector.
    pub fn velocity(&self) -> Velocity {
        match self.state {
            AgentState::OnRoad { heading } => {
                let (dx, dy) = heading.unit();
                Velocity::new(dx * self.speed, dy * self.speed)
            }
            AgentState::InBuilding { .. } => Velocity::ZERO,
        }
    }

    /// Whether the agent is inside a building.
    pub fn indoors(&self) -> bool {
        matches!(self.state, AgentState::InBuilding { .. })
    }
}

/// Simulation parameters beyond map geometry.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SimConfig {
    /// Number of agents.
    pub agents: u64,
    /// Fraction of agents that are cars (rest are pedestrians).
    pub car_fraction: f64,
    /// Std-dev of location noise added to update messages, world units.
    pub location_noise: f64,
    /// Std-dev of velocity noise added to update messages, units/s.
    pub velocity_noise: f64,
    /// Maximum update interval, seconds (drawn uniformly from `[0, max]`).
    pub max_update_interval_secs: f64,
    /// Probability a pedestrian near an entrance enters the building.
    pub enter_probability: f64,
    /// Probability an indoor pedestrian exits per update.
    pub exit_probability: f64,
    /// "Near an entrance" threshold, world units.
    pub entrance_radius: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            agents: 100,
            car_fraction: 0.5,
            location_noise: 0.5,
            velocity_noise: 0.05,
            max_update_interval_secs: 5.0,
            enter_probability: 0.05,
            exit_probability: 0.05,
            entrance_radius: 3.0,
            seed: 42,
        }
    }
}

/// One emitted update message (the 4-tuple of Algorithm 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimUpdate {
    /// Object id.
    pub oid: u64,
    /// Reported (noisy) location.
    pub loc: Point,
    /// Reported (noisy) velocity.
    pub vel: Velocity,
    /// Emission time, seconds.
    pub at_secs: f64,
}

/// Min-heap event: the next update deadline of one agent.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Event {
    due: f64,
    idx: usize,
}

impl Eq for Event {}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse: BinaryHeap is a max-heap, we want the earliest deadline.
        other
            .due
            .total_cmp(&self.due)
            .then_with(|| other.idx.cmp(&self.idx))
    }
}

/// The road-network simulator: deterministic under a fixed seed.
pub struct RoadNetSim {
    map: RoadMap,
    cfg: SimConfig,
    rng: StdRng,
    agents: Vec<Agent>,
    queue: std::collections::BinaryHeap<Event>,
    now_secs: f64,
}

impl RoadNetSim {
    /// Creates the simulator with agents placed on random road positions,
    /// each "initially mov\[ing\] along a randomly selected road".
    pub fn new(map: RoadMap, cfg: SimConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let spacing = map.spacing();
        let lines = map.size() / spacing;
        let agents: Vec<Agent> = (0..cfg.agents)
            .map(|oid| {
                let kind = if (rng.gen::<f64>()) < cfg.car_fraction {
                    AgentKind::Car
                } else {
                    AgentKind::Pedestrian
                };
                let speed = match kind {
                    AgentKind::Pedestrian => rng.gen::<f64>(),
                    AgentKind::Car => 1.0 + rng.gen::<f64>(),
                };
                // Random road line (vertical or horizontal) and offset.
                let line = (rng.gen::<f64>() * lines).floor() * spacing;
                let offset = rng.gen::<f64>() * map.size();
                let (loc, heading) = if rng.gen::<bool>() {
                    // Vertical road.
                    (
                        Point::new(line, offset),
                        if rng.gen::<bool>() {
                            Heading::North
                        } else {
                            Heading::South
                        },
                    )
                } else {
                    (
                        Point::new(offset, line),
                        if rng.gen::<bool>() {
                            Heading::East
                        } else {
                            Heading::West
                        },
                    )
                };
                Agent {
                    oid,
                    kind,
                    loc,
                    speed: speed.max(0.05),
                    state: AgentState::OnRoad { heading },
                    next_update_secs: rng.gen::<f64>() * cfg.max_update_interval_secs,
                    last_move_secs: 0.0,
                }
            })
            .collect();
        let mut queue = std::collections::BinaryHeap::with_capacity(cfg.agents as usize);
        for a in &agents {
            queue.push(Event {
                due: a.next_update_secs,
                idx: a.oid as usize,
            });
        }
        RoadNetSim {
            map,
            cfg,
            rng,
            agents,
            queue,
            now_secs: 0.0,
        }
    }

    /// Current simulation time, seconds.
    pub fn now_secs(&self) -> f64 {
        self.now_secs
    }

    /// The agents (true state, for assertions and oracles).
    pub fn agents(&self) -> &[Agent] {
        &self.agents
    }

    /// The map.
    pub fn map(&self) -> &RoadMap {
        &self.map
    }

    fn gaussian(rng: &mut StdRng, sigma: f64) -> f64 {
        // Box–Muller; two uniforms per draw keeps it simple.
        let u1: f64 = rng.gen::<f64>().max(1e-12);
        let u2: f64 = rng.gen::<f64>();
        sigma * (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Advances one agent's true position by `dt` seconds.
    fn move_agent(map: &RoadMap, cfg: &SimConfig, rng: &mut StdRng, agent: &mut Agent, dt: f64) {
        match agent.state {
            AgentState::InBuilding { building } => {
                // Indoor pedestrians teleport uniformly within the building
                // per update; exit with 5% probability.
                if rng.gen::<f64>() < cfg.exit_probability {
                    agent.state = AgentState::OnRoad {
                        heading: if rng.gen::<bool>() {
                            Heading::East
                        } else {
                            Heading::West
                        },
                    };
                    agent.loc = map.buildings()[building].entrance;
                } else {
                    let b = &map.buildings()[building].rect;
                    agent.loc = Point::new(
                        b.min_x + rng.gen::<f64>() * b.width(),
                        b.min_y + rng.gen::<f64>() * b.height(),
                    );
                }
            }
            AgentState::OnRoad { mut heading } => {
                let spacing = map.spacing();
                let size = map.size();
                let mut remaining = agent.speed * dt;
                let mut guard = 0;
                while remaining > 1e-9 && guard < 64 {
                    guard += 1;
                    let (dx, dy) = heading.unit();
                    // Distance to the next intersection along the heading.
                    let along = if dx != 0.0 { agent.loc.x } else { agent.loc.y };
                    let dir = if dx + dy > 0.0 { 1.0 } else { -1.0 };
                    let next_line = if dir > 0.0 {
                        ((along / spacing).floor() + 1.0) * spacing
                    } else {
                        ((along / spacing).ceil() - 1.0) * spacing
                    };
                    let dist_to_cross = (next_line - along).abs();
                    let step = remaining.min(dist_to_cross);
                    agent.loc = Point::new(agent.loc.x + dx * step, agent.loc.y + dy * step);
                    remaining -= step;
                    if remaining > 1e-9 {
                        // At a crossroad: equal-probability turn among the
                        // headings that stay on the map.
                        let choices =
                            [Heading::North, Heading::South, Heading::East, Heading::West];
                        let valid: Vec<Heading> = choices
                            .into_iter()
                            .filter(|h| {
                                let (dx, dy) = h.unit();
                                let nx = agent.loc.x + dx * spacing * 0.5;
                                let ny = agent.loc.y + dy * spacing * 0.5;
                                (0.0..=size).contains(&nx) && (0.0..=size).contains(&ny)
                            })
                            .collect();
                        if !valid.is_empty() {
                            heading = valid[rng.gen_range(0..valid.len())];
                        }
                    }
                }
                // Clamp onto the map just in case of boundary rounding.
                agent.loc = Point::new(agent.loc.x.clamp(0.0, size), agent.loc.y.clamp(0.0, size));
                agent.state = AgentState::OnRoad { heading };
                // Pedestrians near an entrance may step inside.
                if agent.kind == AgentKind::Pedestrian {
                    if let Some((b, d)) = map.nearest_entrance(&agent.loc) {
                        if d <= cfg.entrance_radius && rng.gen::<f64>() < cfg.enter_probability {
                            agent.state = AgentState::InBuilding { building: b };
                            let rect = &map.buildings()[b].rect;
                            agent.loc = rect.center();
                        }
                    }
                }
            }
        }
    }

    /// Advances the simulation to `until_secs`, emitting every update due
    /// in `(now, until_secs]` in time order.
    ///
    /// Movement is lazy: an agent's true position only advances when it is
    /// observed (its update fires, or [`RoadNetSim::sync_all`] runs), so the
    /// cost per update is O(log n) regardless of population.
    pub fn advance_until(&mut self, until_secs: f64) -> Vec<SimUpdate> {
        let mut out = Vec::new();
        while let Some(&Event { due, idx }) = self.queue.peek() {
            if due > until_secs {
                break;
            }
            self.queue.pop();
            if (self.agents[idx].next_update_secs - due).abs() > 1e-12 {
                continue; // stale heap entry
            }
            // Lazily move only the due agent.
            let dt = (due - self.agents[idx].last_move_secs).max(0.0);
            let mut agent = self.agents[idx].clone();
            Self::move_agent(&self.map, &self.cfg, &mut self.rng, &mut agent, dt);
            agent.last_move_secs = due;
            // Emit the noisy update.
            let v = agent.velocity();
            out.push(SimUpdate {
                oid: agent.oid,
                loc: Point::new(
                    agent.loc.x + Self::gaussian(&mut self.rng, self.cfg.location_noise),
                    agent.loc.y + Self::gaussian(&mut self.rng, self.cfg.location_noise),
                ),
                vel: Velocity::new(
                    v.vx + Self::gaussian(&mut self.rng, self.cfg.velocity_noise),
                    v.vy + Self::gaussian(&mut self.rng, self.cfg.velocity_noise),
                ),
                at_secs: due,
            });
            let next = due + self.rng.gen::<f64>() * self.cfg.max_update_interval_secs.max(1e-3);
            agent.next_update_secs = next;
            self.agents[idx] = agent;
            self.queue.push(Event { due: next, idx });
            self.now_secs = due;
        }
        self.now_secs = until_secs.max(self.now_secs);
        out
    }

    /// Advances every agent's true position to the current simulation time
    /// (call before inspecting [`RoadNetSim::agents`] as an oracle).
    pub fn sync_all(&mut self) {
        let now = self.now_secs;
        for i in 0..self.agents.len() {
            let dt = (now - self.agents[i].last_move_secs).max(0.0);
            if dt > 0.0 {
                let mut a = self.agents[i].clone();
                Self::move_agent(&self.map, &self.cfg, &mut self.rng, &mut a, dt);
                a.last_move_secs = now;
                self.agents[i] = a;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim(agents: u64, seed: u64) -> RoadNetSim {
        RoadNetSim::new(
            RoadMap::new(RoadMapConfig::default()),
            SimConfig {
                agents,
                seed,
                ..SimConfig::default()
            },
        )
    }

    #[test]
    fn map_has_one_building_per_block_with_entrances_on_roads() {
        let map = RoadMap::new(RoadMapConfig::default());
        assert_eq!(map.buildings().len(), 100);
        for b in map.buildings() {
            // Entrance sits on a horizontal road line.
            let y = b.entrance.y;
            assert!((y / map.spacing()).fract().abs() < 1e-9);
            // Building is inside the map.
            assert!(b.rect.min_x >= 0.0 && b.rect.max_x <= map.size());
        }
    }

    #[test]
    fn simulation_is_deterministic_under_a_seed() {
        let mut a = sim(50, 7);
        let mut b = sim(50, 7);
        let ua = a.advance_until(30.0);
        let ub = b.advance_until(30.0);
        assert_eq!(ua.len(), ub.len());
        for (x, y) in ua.iter().zip(&ub) {
            assert_eq!(x, y);
        }
        // Different seeds diverge.
        let mut c = sim(50, 8);
        let uc = c.advance_until(30.0);
        assert_ne!(ua, uc);
    }

    #[test]
    fn updates_arrive_in_time_order_with_bounded_intervals() {
        let mut s = sim(40, 3);
        let updates = s.advance_until(60.0);
        assert!(!updates.is_empty());
        assert!(updates.windows(2).all(|w| w[0].at_secs <= w[1].at_secs));
        // Every agent respects the ≤5 s interval: each sends ≥ ~12 updates
        // in 60 s on average; check a weaker bound.
        for oid in 0..40u64 {
            let n = updates.iter().filter(|u| u.oid == oid).count();
            assert!(n >= 6, "agent {oid} sent only {n} updates in 60 s");
        }
    }

    #[test]
    fn agents_stay_on_the_map_and_speeds_match_their_class() {
        let mut s = sim(60, 11);
        s.advance_until(120.0);
        s.sync_all();
        for a in s.agents() {
            assert!(a.loc.x >= -1e-6 && a.loc.x <= 1000.0 + 1e-6, "{a:?}");
            assert!(a.loc.y >= -1e-6 && a.loc.y <= 1000.0 + 1e-6, "{a:?}");
            match a.kind {
                AgentKind::Pedestrian => assert!(a.speed <= 1.0),
                AgentKind::Car => assert!(a.speed >= 1.0 && a.speed <= 2.0),
            }
        }
    }

    #[test]
    fn on_road_agents_sit_on_road_lines() {
        let mut s = sim(60, 13);
        s.advance_until(45.0);
        s.sync_all();
        let spacing = s.map().spacing();
        for a in s.agents() {
            if !a.indoors() {
                let on_v = (a.loc.x / spacing).fract().abs() < 1e-6
                    || ((a.loc.x / spacing).fract() - 1.0).abs() < 1e-6;
                let on_h = (a.loc.y / spacing).fract().abs() < 1e-6
                    || ((a.loc.y / spacing).fract() - 1.0).abs() < 1e-6;
                assert!(on_v || on_h, "agent off-road at {:?}", a.loc);
            }
        }
    }

    #[test]
    fn pedestrians_do_enter_buildings_eventually() {
        let mut s = RoadNetSim::new(
            RoadMap::new(RoadMapConfig::default()),
            SimConfig {
                agents: 100,
                car_fraction: 0.0,
                enter_probability: 0.5,
                entrance_radius: 10.0,
                seed: 5,
                ..SimConfig::default()
            },
        );
        s.advance_until(200.0);
        s.sync_all();
        let indoor = s.agents().iter().filter(|a| a.indoors()).count();
        assert!(indoor > 0, "no pedestrian ever entered a building");
        // Cars never go indoors (none exist here; assert kind logic holds).
        for a in s.agents() {
            if a.indoors() {
                assert_eq!(a.kind, AgentKind::Pedestrian);
            }
        }
    }
}
