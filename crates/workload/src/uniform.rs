//! Uniform random workloads (§4.1's BigTable stress setting: "updates and
//! queries applied to a population of 400k to 1m objects with randomly
//! chosen positions and velocities").

use crate::roadnet::SimUpdate;
use moist_spatial::{Point, Rect, Velocity};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BinaryHeap;

#[derive(Debug, Clone, Copy)]
struct Obj {
    loc: Point,
    vel: Velocity,
    next_due: f64,
    last_move: f64,
}

/// Min-heap event keyed by due time.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Event {
    due: f64,
    idx: usize,
}

impl Eq for Event {}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .due
            .total_cmp(&self.due)
            .then_with(|| other.idx.cmp(&self.idx))
    }
}

/// Generator of uniformly distributed objects moving linearly with random
/// velocities, each updating on its own random cadence (events fire in
/// global time order).
pub struct UniformSim {
    world: Rect,
    max_speed: f64,
    max_interval: f64,
    rng: StdRng,
    objects: Vec<Obj>,
    queue: BinaryHeap<Event>,
    now_secs: f64,
    velocity_walk: f64,
}

impl UniformSim {
    /// Creates `n` objects uniformly placed in `world` with speeds in
    /// `[-max_speed, max_speed]` per axis.
    pub fn new(world: Rect, n: u64, max_speed: f64, max_interval: f64, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let max_interval = max_interval.max(1e-3);
        let mut queue = BinaryHeap::with_capacity(n as usize);
        let objects: Vec<Obj> = (0..n)
            .map(|i| {
                let obj = Obj {
                    loc: Point::new(
                        world.min_x + rng.gen::<f64>() * world.width(),
                        world.min_y + rng.gen::<f64>() * world.height(),
                    ),
                    vel: Velocity::new(
                        (rng.gen::<f64>() * 2.0 - 1.0) * max_speed,
                        (rng.gen::<f64>() * 2.0 - 1.0) * max_speed,
                    ),
                    next_due: rng.gen::<f64>() * max_interval,
                    last_move: 0.0,
                };
                queue.push(Event {
                    due: obj.next_due,
                    idx: i as usize,
                });
                obj
            })
            .collect();
        UniformSim {
            world,
            max_speed,
            max_interval,
            rng,
            objects,
            queue,
            now_secs: 0.0,
            velocity_walk: 0.0,
        }
    }

    /// Enables a per-update velocity random walk: each emitted update
    /// perturbs the object's velocity by N(0, sigma) per axis (clamped to
    /// the configured speed range). Urban objects turn constantly; without
    /// this, perfectly linear movers never change their Bx-tree
    /// label-time position and the comparison flatters the Bx-tree.
    pub fn with_velocity_walk(mut self, sigma: f64) -> Self {
        self.velocity_walk = sigma.max(0.0);
        self
    }

    /// Number of objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Whether the generator is empty.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Current simulation time in seconds.
    pub fn now_secs(&self) -> f64 {
        self.now_secs
    }

    /// Snapshot of all current positions (e.g. to bulk-load an index).
    pub fn positions(&self) -> Vec<(u64, Point, Velocity)> {
        self.objects
            .iter()
            .enumerate()
            .map(|(i, o)| (i as u64, o.loc, o.vel))
            .collect()
    }

    /// Generates the next `count` updates in global time order; every
    /// object moves linearly between its own updates, bouncing off the
    /// world edges.
    pub fn next_updates(&mut self, count: usize) -> Vec<SimUpdate> {
        let mut out = Vec::with_capacity(count);
        while out.len() < count {
            let Some(Event { due, idx }) = self.queue.pop() else {
                break;
            };
            if (self.objects[idx].next_due - due).abs() > 1e-12 {
                continue; // stale entry
            }
            let obj = self.objects[idx];
            let dt = (due - obj.last_move).max(0.0);
            let mut p = obj.loc.advance(obj.vel, dt);
            let mut v = obj.vel;
            if p.x < self.world.min_x || p.x > self.world.max_x {
                v.vx = -v.vx;
                p.x = p.x.clamp(self.world.min_x, self.world.max_x);
            }
            if p.y < self.world.min_y || p.y > self.world.max_y {
                v.vy = -v.vy;
                p.y = p.y.clamp(self.world.min_y, self.world.max_y);
            }
            if self.velocity_walk > 0.0 {
                // Box–Muller off two uniforms: objects keep turning, as
                // urban movers do.
                let sigma = self.velocity_walk;
                let (u1, u2): (f64, f64) = (self.rng.gen::<f64>().max(1e-12), self.rng.gen());
                let r = sigma * (-2.0 * u1.ln()).sqrt();
                v = Velocity::new(
                    (v.vx + r * (std::f64::consts::TAU * u2).cos())
                        .clamp(-self.max_speed, self.max_speed),
                    (v.vy + r * (std::f64::consts::TAU * u2).sin())
                        .clamp(-self.max_speed, self.max_speed),
                );
            }
            {
                let o = &mut self.objects[idx];
                o.loc = p;
                o.vel = v;
                o.last_move = due;
            }
            self.now_secs = due;
            out.push(SimUpdate {
                oid: idx as u64,
                loc: p,
                vel: v,
                at_secs: due,
            });
            let next = due + self.rng.gen::<f64>() * self.max_interval;
            self.objects[idx].next_due = next;
            self.queue.push(Event { due: next, idx });
        }
        out
    }

    /// Random query point inside the world.
    pub fn random_point(&mut self) -> Point {
        Point::new(
            self.world.min_x + self.rng.gen::<f64>() * self.world.width(),
            self.world.min_y + self.rng.gen::<f64>() * self.world.height(),
        )
    }

    /// Maximum per-axis speed (for Bx-tree `v_max` configuration).
    pub fn max_speed(&self) -> f64 {
        self.max_speed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn objects_stay_in_the_world() {
        let world = Rect::new(0.0, 0.0, 100.0, 100.0);
        let mut sim = UniformSim::new(world, 50, 5.0, 5.0, 1);
        for _ in 0..40 {
            for u in sim.next_updates(50) {
                assert!(world.contains(&u.loc), "escaped: {:?}", u.loc);
            }
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let world = Rect::new(0.0, 0.0, 100.0, 100.0);
        let mut a = UniformSim::new(world, 20, 2.0, 5.0, 9);
        let mut b = UniformSim::new(world, 20, 2.0, 5.0, 9);
        assert_eq!(a.next_updates(100), b.next_updates(100));
    }

    #[test]
    fn update_times_are_monotonic_and_objects_actually_move() {
        let world = Rect::new(0.0, 0.0, 1000.0, 1000.0);
        let mut sim = UniformSim::new(world, 100, 2.0, 5.0, 3);
        let before = sim.positions();
        let ups = sim.next_updates(500);
        assert!(ups.windows(2).all(|w| w[0].at_secs <= w[1].at_secs));
        // The regression this test pins down: nearly every update must move
        // its object (dt > 0), not report a frozen position.
        let moved = ups
            .iter()
            .filter(|u| {
                let (_, old, _) = before[u.oid as usize];
                old.distance(&u.loc) > 1e-6
            })
            .count();
        assert!(
            moved as f64 > 0.95 * ups.len() as f64,
            "only {moved}/{} updates moved their object",
            ups.len()
        );
    }

    #[test]
    fn each_object_updates_repeatedly() {
        let world = Rect::new(0.0, 0.0, 100.0, 100.0);
        let mut sim = UniformSim::new(world, 10, 1.0, 1.0, 3);
        let ups = sim.next_updates(200);
        for oid in 0..10u64 {
            let n = ups.iter().filter(|u| u.oid == oid).count();
            assert!(n >= 5, "object {oid} updated only {n} times");
        }
    }

    #[test]
    fn empty_generator_yields_nothing() {
        let world = Rect::new(0.0, 0.0, 1.0, 1.0);
        let mut sim = UniformSim::new(world, 0, 1.0, 5.0, 3);
        assert!(sim.is_empty());
        assert!(sim.next_updates(5).is_empty());
    }
}
