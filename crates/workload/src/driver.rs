//! Multi-client load driving and QPS measurement.
//!
//! The paper's load tests run "up to 20,000 virtual machines, each running
//! 50 threads" against 1–10 front-end servers (§4.1). Here a
//! [`ClientPool`] drives any per-thread worker over OS threads (real lock
//! contention on the shared store), and [`QpsTimeline`] aggregates
//! virtual-time throughput into the per-second series Figure 13(b,c) plots.

use serde::{Deserialize, Serialize};

/// Runs one worker closure per thread and collects their outputs.
///
/// Workers receive their thread index. Panics in workers propagate.
pub struct ClientPool;

impl ClientPool {
    /// Spawns `threads` scoped workers and returns their results in thread
    /// order.
    pub fn run<T, F>(threads: usize, worker: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|i| {
                    let worker = &worker;
                    scope.spawn(move || worker(i))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect()
        })
    }
}

/// One measured point of a throughput timeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QpsSample {
    /// Second index on the timeline.
    pub second: u64,
    /// Completed queries in that second.
    pub qps: f64,
    /// Queries that failed / were rejected in that second.
    pub failed: f64,
}

/// A per-second throughput series with the paper's summary statistics.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct QpsTimeline {
    /// Samples in time order.
    pub samples: Vec<QpsSample>,
}

impl QpsTimeline {
    /// Builds a timeline by bucketing (time, ok) completion events into
    /// whole seconds.
    pub fn from_events(events: impl IntoIterator<Item = (f64, bool)>) -> Self {
        use std::collections::BTreeMap;
        let mut ok: BTreeMap<u64, u64> = BTreeMap::new();
        let mut bad: BTreeMap<u64, u64> = BTreeMap::new();
        for (t, success) in events {
            let sec = t.max(0.0) as u64;
            *(if success { &mut ok } else { &mut bad })
                .entry(sec)
                .or_default() += 1;
        }
        let last = ok.keys().chain(bad.keys()).copied().max().unwrap_or(0);
        let samples = (0..=last)
            .map(|second| QpsSample {
                second,
                qps: *ok.get(&second).unwrap_or(&0) as f64,
                failed: *bad.get(&second).unwrap_or(&0) as f64,
            })
            .collect();
        QpsTimeline { samples }
    }

    /// Mean successful QPS over the whole run.
    pub fn average(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().map(|s| s.qps).sum::<f64>() / self.samples.len() as f64
    }

    /// Peak successful QPS.
    pub fn peak(&self) -> f64 {
        self.samples.iter().map(|s| s.qps).fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn pool_runs_all_workers_and_orders_results() {
        let counter = AtomicU64::new(0);
        let results = ClientPool::run(8, |i| {
            counter.fetch_add(1, Ordering::Relaxed);
            i * 10
        });
        assert_eq!(counter.load(Ordering::Relaxed), 8);
        assert_eq!(results, vec![0, 10, 20, 30, 40, 50, 60, 70]);
    }

    #[test]
    fn timeline_buckets_and_summarises() {
        let events = vec![
            (0.1, true),
            (0.9, true),
            (1.5, true),
            (1.6, false),
            (3.2, true),
        ];
        let tl = QpsTimeline::from_events(events);
        assert_eq!(tl.samples.len(), 4);
        assert_eq!(tl.samples[0].qps, 2.0);
        assert_eq!(tl.samples[1].qps, 1.0);
        assert_eq!(tl.samples[1].failed, 1.0);
        assert_eq!(tl.samples[2].qps, 0.0);
        assert_eq!(tl.peak(), 2.0);
        assert!((tl.average() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_timeline_is_zeroed() {
        let tl = QpsTimeline::from_events(Vec::<(f64, bool)>::new());
        assert_eq!(tl.average(), 0.0);
        assert_eq!(tl.peak(), 0.0);
    }
}
