//! Property-based tests for the workload generators: determinism, physical
//! plausibility and the §4.1 contract under arbitrary configurations.

use moist_spatial::Rect;
use moist_workload::{QpsTimeline, RoadMap, RoadMapConfig, RoadNetSim, SimConfig, UniformSim};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Same seed → identical traces; different seeds diverge (almost surely).
    #[test]
    fn roadnet_is_deterministic(seed in any::<u64>(), agents in 5u64..40, horizon in 10.0f64..60.0) {
        let make = |s: u64| {
            RoadNetSim::new(
                RoadMap::new(RoadMapConfig::default()),
                SimConfig { agents, seed: s, ..SimConfig::default() },
            )
        };
        let a = make(seed).advance_until(horizon);
        let b = make(seed).advance_until(horizon);
        prop_assert_eq!(a, b);
    }

    /// Every roadnet update is on-map (up to reporting noise), in time
    /// order, with per-agent gaps bounded by the max interval.
    #[test]
    fn roadnet_updates_obey_the_contract(
        seed in any::<u64>(),
        agents in 5u64..30,
        max_interval in 0.5f64..5.0,
    ) {
        let mut sim = RoadNetSim::new(
            RoadMap::new(RoadMapConfig::default()),
            SimConfig {
                agents,
                seed,
                max_update_interval_secs: max_interval,
                location_noise: 0.5,
                ..SimConfig::default()
            },
        );
        let updates = sim.advance_until(60.0);
        prop_assert!(updates.windows(2).all(|w| w[0].at_secs <= w[1].at_secs));
        let noise_slack = 5.0; // ~10σ of reporting noise
        for u in &updates {
            prop_assert!(u.loc.x >= -noise_slack && u.loc.x <= 1000.0 + noise_slack);
            prop_assert!(u.loc.y >= -noise_slack && u.loc.y <= 1000.0 + noise_slack);
            prop_assert!(u.oid < agents);
        }
        // Per-agent inter-update gaps respect the configured bound.
        for oid in 0..agents {
            let times: Vec<f64> = updates
                .iter()
                .filter(|u| u.oid == oid)
                .map(|u| u.at_secs)
                .collect();
            for w in times.windows(2) {
                prop_assert!(
                    w[1] - w[0] <= max_interval + 1e-9,
                    "agent {oid} waited {} > {max_interval}",
                    w[1] - w[0]
                );
            }
        }
    }

    /// Uniform objects never leave the world and every update moves its
    /// object consistently with its velocity (within bounce effects).
    #[test]
    fn uniform_sim_is_physical(seed in any::<u64>(), n in 1u64..50, speed in 0.1f64..5.0) {
        let world = Rect::new(0.0, 0.0, 500.0, 500.0);
        let mut sim = UniformSim::new(world, n, speed, 3.0, seed);
        let ups = sim.next_updates(300);
        prop_assert!(ups.windows(2).all(|w| w[0].at_secs <= w[1].at_secs));
        for u in &ups {
            prop_assert!(world.contains(&u.loc), "escaped at {:?}", u.loc);
            prop_assert!(u.vel.vx.abs() <= speed + 1e-9 && u.vel.vy.abs() <= speed + 1e-9);
        }
    }

    /// QPS timelines conserve events: bucket sums equal the input count.
    #[test]
    fn timeline_conserves_events(times in prop::collection::vec(0.0f64..30.0, 0..200)) {
        let n_ok = times.len();
        let events: Vec<(f64, bool)> = times.iter().map(|&t| (t, true)).collect();
        let tl = QpsTimeline::from_events(events);
        let total: f64 = tl.samples.iter().map(|s| s.qps).sum();
        prop_assert_eq!(total as usize, n_ok);
        let failed: f64 = tl.samples.iter().map(|s| s.failed).sum();
        prop_assert_eq!(failed, 0.0);
    }
}
