//! Vendored stand-in for the `rand` crate. This build environment has
//! no crates.io access, so the workspace vendors the API slice it uses:
//! [`rngs::StdRng`] seeded via [`SeedableRng::seed_from_u64`], and the
//! [`Rng`] extension methods `gen`, `gen_range` and `gen_bool`.
//!
//! The generator is SplitMix64 — statistically strong enough for
//! synthetic-workload generation and fully deterministic per seed
//! (the workspace's workloads promise "deterministic under a fixed
//! seed", which this preserves; streams differ from the real crate's
//! ChaCha-based `StdRng`, which only changes *which* deterministic
//! workload a seed denotes).

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Returns the next uniformly-distributed 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Returns the next uniformly-distributed 32-bit value.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly from an `RngCore` — the stub's
/// analogue of sampling from the `Standard` distribution.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that can be sampled from, mirroring `rand`'s `SampleRange`.
pub trait SampleRange<T> {
    /// Draws one value from the range. Panics on an empty range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Modulo bias is < 2^-64 per draw at these spans; fine
                // for synthetic workloads.
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = f64::sample(rng) as $t;
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let unit = f64::sample(rng) as $t;
                lo + unit * (hi - lo)
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// High-level convenience methods, blanket-implemented for every
/// [`RngCore`] (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples a value of type `T` uniformly (the `Standard` distribution).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from a range.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seeding interface (the `seed_from_u64` slice of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (SplitMix64).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn unit_interval_floats() {
        let mut r = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn ranges_hit_bounds_only() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = r.gen_range(3usize..7);
            assert!((3..7).contains(&v));
            let f = r.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
            let i = r.gen_range(0u8..=3);
            assert!(i <= 3);
        }
    }

    #[test]
    fn gen_bool_probability() {
        let mut r = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
    }
}
