//! Functional serialization half of the vendored mini-serde.

use std::collections::{BTreeMap, HashMap};
use std::fmt::Display;

/// Errors produced during serialization.
pub trait Error: Sized {
    /// Builds an error from a message.
    fn custom<T: Display>(msg: T) -> Self;
}

/// A serializable type (mirrors `serde::Serialize`).
pub trait Serialize {
    /// Serializes `self` into the given serializer.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// Returned by [`Serializer::serialize_struct`]; receives the fields.
pub trait SerializeStruct {
    /// Value produced when serialization succeeds.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Serializes one named field.
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        name: &'static str,
        value: &T,
    ) -> Result<(), Self::Error>;
    /// Finishes the struct.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Returned by [`Serializer::serialize_seq`]; receives the elements.
pub trait SerializeSeq {
    /// Value produced when serialization succeeds.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Serializes one element.
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finishes the sequence.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Returned by [`Serializer::serialize_tuple`]; receives the elements.
pub trait SerializeTuple {
    /// Value produced when serialization succeeds.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Serializes one element.
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finishes the tuple.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Returned by [`Serializer::serialize_map`]; receives the entries.
pub trait SerializeMap {
    /// Value produced when serialization succeeds.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Serializes one key/value entry.
    fn serialize_entry<K: Serialize + ?Sized, V: Serialize + ?Sized>(
        &mut self,
        key: &K,
        value: &V,
    ) -> Result<(), Self::Error>;
    /// Finishes the map.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// A data format that can serialize values (mirrors `serde::Serializer`).
pub trait Serializer: Sized {
    /// Value produced when serialization succeeds.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Compound serializer for structs.
    type SerializeStruct: SerializeStruct<Ok = Self::Ok, Error = Self::Error>;
    /// Compound serializer for sequences.
    type SerializeSeq: SerializeSeq<Ok = Self::Ok, Error = Self::Error>;
    /// Compound serializer for tuples.
    type SerializeTuple: SerializeTuple<Ok = Self::Ok, Error = Self::Error>;
    /// Compound serializer for maps.
    type SerializeMap: SerializeMap<Ok = Self::Ok, Error = Self::Error>;

    /// Serializes a `bool`.
    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error>;
    /// Serializes a signed integer.
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error>;
    /// Serializes an unsigned integer.
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error>;
    /// Serializes a float.
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error>;
    /// Serializes a string.
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;
    /// Serializes a byte buffer.
    fn serialize_bytes(self, v: &[u8]) -> Result<Self::Ok, Self::Error>;
    /// Serializes a unit / null value.
    fn serialize_unit(self) -> Result<Self::Ok, Self::Error>;
    /// Serializes `None`.
    fn serialize_none(self) -> Result<Self::Ok, Self::Error>;
    /// Serializes `Some(value)`.
    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<Self::Ok, Self::Error>;
    /// Serializes a newtype struct (as its inner value).
    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        name: &'static str,
        value: &T,
    ) -> Result<Self::Ok, Self::Error>;
    /// Serializes a dataless enum variant (as the variant name).
    fn serialize_unit_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
    ) -> Result<Self::Ok, Self::Error>;
    /// Begins a struct.
    fn serialize_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStruct, Self::Error>;
    /// Begins a variable-length sequence.
    fn serialize_seq(self, len: Option<usize>) -> Result<Self::SerializeSeq, Self::Error>;
    /// Begins a fixed-length tuple.
    fn serialize_tuple(self, len: usize) -> Result<Self::SerializeTuple, Self::Error>;
    /// Begins a map.
    fn serialize_map(self, len: Option<usize>) -> Result<Self::SerializeMap, Self::Error>;
}

// ---- Serialize impls for std types ----------------------------------------

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_bool(*self)
    }
}

macro_rules! impl_serialize_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                s.serialize_i64(*self as i64)
            }
        }
    )*};
}
impl_serialize_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_serialize_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                s.serialize_u64(*self as u64)
            }
        }
    )*};
}
impl_serialize_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_f64(*self)
    }
}

impl Serialize for f32 {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_f64(f64::from(*self))
    }
}

impl Serialize for char {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_str(&self.to_string())
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_str(self)
    }
}

impl Serialize for () {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_unit()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(s)
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(s)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(v) => s.serialize_some(v),
            None => s.serialize_none(),
        }
    }
}

fn serialize_slice<T: Serialize, S: Serializer>(slice: &[T], s: S) -> Result<S::Ok, S::Error> {
    let mut seq = s.serialize_seq(Some(slice.len()))?;
    for item in slice {
        seq.serialize_element(item)?;
    }
    seq.end()
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        serialize_slice(self, s)
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        serialize_slice(self, s)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        serialize_slice(self, s)
    }
}

macro_rules! impl_serialize_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                let mut t = s.serialize_tuple(count!($($name)+))?;
                $( t.serialize_element(&self.$idx)?; )+
                t.end()
            }
        }
    )*};
}
macro_rules! count {
    () => { 0usize };
    ($head:ident $($tail:ident)*) => { 1usize + count!($($tail)*) };
}
impl_serialize_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        let mut m = s.serialize_map(Some(self.len()))?;
        for (k, v) in self {
            m.serialize_entry(k, v)?;
        }
        m.end()
    }
}

impl<K: Serialize, V: Serialize, H> Serialize for HashMap<K, V, H> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        let mut m = s.serialize_map(Some(self.len()))?;
        for (k, v) in self {
            m.serialize_entry(k, v)?;
        }
        m.end()
    }
}
