//! Vendored mini-serde. This build environment has no crates.io access,
//! so the workspace vendors an API-compatible slice of serde:
//!
//! * the [`Serialize`] / [`Serializer`] side is **functional** — derived
//!   impls drive any `Serializer` (the vendored `serde_json` uses this
//!   to produce real JSON);
//! * the [`Deserialize`] / [`Deserializer`] side is **compile-only** —
//!   the workspace derives `Deserialize` widely but never invokes it,
//!   so derived impls type-check and return an "unsupported" error if
//!   ever called at runtime.
//!
//! The `#[derive(Serialize, Deserialize)]` macros come from the sibling
//! vendored `serde_derive`, which supports the shapes this workspace
//! uses: named-field structs, newtype structs, unit-variant enums, and
//! the `#[serde(with = "module")]` field attribute.

pub use serde_derive::{Deserialize, Serialize};

pub mod ser;

pub use ser::{Serialize, SerializeMap, SerializeSeq, SerializeStruct, SerializeTuple, Serializer};

/// Deserialization half: compile-only (see crate docs).
pub mod de {
    use std::fmt::Display;

    /// Errors produced during deserialization.
    pub trait Error: Sized {
        /// Builds an error from a message.
        fn custom<T: Display>(msg: T) -> Self;
    }

    /// A data format that can deserialize values. The vendored build
    /// declares the trait (so bounds and signatures type-check) but no
    /// format implements a working deserializer.
    pub trait Deserializer<'de>: Sized {
        /// The error type produced on failure.
        type Error: Error;
    }

    /// A type deserializable from any supported format.
    pub trait Deserialize<'de>: Sized {
        /// Deserializes the value.
        fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
    }

    macro_rules! impl_stub_deserialize {
        ($($t:ty),*) => {$(
            impl<'de> Deserialize<'de> for $t {
                fn deserialize<D: Deserializer<'de>>(_d: D) -> Result<Self, D::Error> {
                    Err(D::Error::custom(concat!(
                        "vendored mini-serde cannot deserialize ",
                        stringify!($t),
                    )))
                }
            }
        )*};
    }
    impl_stub_deserialize!(
        bool, char, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64, String
    );

    impl<'de, T> Deserialize<'de> for Vec<T> {
        fn deserialize<D: Deserializer<'de>>(_d: D) -> Result<Self, D::Error> {
            Err(D::Error::custom(
                "vendored mini-serde cannot deserialize sequences",
            ))
        }
    }

    impl<'de, T> Deserialize<'de> for Option<T> {
        fn deserialize<D: Deserializer<'de>>(_d: D) -> Result<Self, D::Error> {
            Err(D::Error::custom(
                "vendored mini-serde cannot deserialize options",
            ))
        }
    }
}

pub use de::{Deserialize, Deserializer};
