//! Vendored JSON serializer over the vendored mini-serde: enough of the
//! `serde_json` API to dump any `Serialize` type as (pretty) JSON.
//! Deserialization is intentionally absent — the workspace never parses
//! JSON (see the vendored `serde` crate docs).

use serde::ser::Error as SerError;
use serde::{Serialize, SerializeMap, SerializeSeq, SerializeStruct, SerializeTuple, Serializer};
use std::fmt;

/// Serialization error.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl SerError for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

/// An in-memory JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

/// A JSON number (integer or float).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Signed integer.
    I(i64),
    /// Unsigned integer.
    U(u64),
    /// Floating point.
    F(f64),
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Number::I(v) => write!(f, "{v}"),
            Number::U(v) => write!(f, "{v}"),
            Number::F(v) => {
                if v.is_finite() {
                    // Like serde_json: round-trippable shortest form; keep
                    // integral floats distinguishable with a trailing `.0`.
                    if v.fract() == 0.0 && v.abs() < 1e15 {
                        write!(f, "{v:.1}")
                    } else {
                        write!(f, "{v}")
                    }
                } else {
                    // serde_json rejects non-finite floats; we print null.
                    write!(f, "null")
                }
            }
        }
    }
}

/// Serializes `value` as a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    value.serialize(ValueSerializer)
}

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &to_value(value)?, None, 0);
    Ok(out)
}

/// Serializes `value` as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &to_value(value)?, Some(2), 0);
    Ok(out)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => out.push_str(&n.to_string()),
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- Serializer producing Value --------------------------------------------

struct ValueSerializer;

/// Builder for arrays/tuples.
struct SeqBuilder(Vec<Value>);
/// Builder for objects from structs/maps.
struct ObjBuilder(Vec<(String, Value)>);

impl Serializer for ValueSerializer {
    type Ok = Value;
    type Error = Error;
    type SerializeStruct = ObjBuilder;
    type SerializeSeq = SeqBuilder;
    type SerializeTuple = SeqBuilder;
    type SerializeMap = ObjBuilder;

    fn serialize_bool(self, v: bool) -> Result<Value, Error> {
        Ok(Value::Bool(v))
    }
    fn serialize_i64(self, v: i64) -> Result<Value, Error> {
        Ok(Value::Number(Number::I(v)))
    }
    fn serialize_u64(self, v: u64) -> Result<Value, Error> {
        Ok(Value::Number(Number::U(v)))
    }
    fn serialize_f64(self, v: f64) -> Result<Value, Error> {
        Ok(Value::Number(Number::F(v)))
    }
    fn serialize_str(self, v: &str) -> Result<Value, Error> {
        Ok(Value::String(v.to_string()))
    }
    fn serialize_bytes(self, v: &[u8]) -> Result<Value, Error> {
        Ok(Value::Array(
            v.iter()
                .map(|&b| Value::Number(Number::U(b as u64)))
                .collect(),
        ))
    }
    fn serialize_unit(self) -> Result<Value, Error> {
        Ok(Value::Null)
    }
    fn serialize_none(self) -> Result<Value, Error> {
        Ok(Value::Null)
    }
    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<Value, Error> {
        value.serialize(ValueSerializer)
    }
    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        value: &T,
    ) -> Result<Value, Error> {
        value.serialize(ValueSerializer)
    }
    fn serialize_unit_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
    ) -> Result<Value, Error> {
        Ok(Value::String(variant.to_string()))
    }
    fn serialize_struct(self, _name: &'static str, len: usize) -> Result<ObjBuilder, Error> {
        Ok(ObjBuilder(Vec::with_capacity(len)))
    }
    fn serialize_seq(self, len: Option<usize>) -> Result<SeqBuilder, Error> {
        Ok(SeqBuilder(Vec::with_capacity(len.unwrap_or(0))))
    }
    fn serialize_tuple(self, len: usize) -> Result<SeqBuilder, Error> {
        Ok(SeqBuilder(Vec::with_capacity(len)))
    }
    fn serialize_map(self, len: Option<usize>) -> Result<ObjBuilder, Error> {
        Ok(ObjBuilder(Vec::with_capacity(len.unwrap_or(0))))
    }
}

impl SerializeStruct for ObjBuilder {
    type Ok = Value;
    type Error = Error;
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        name: &'static str,
        value: &T,
    ) -> Result<(), Error> {
        self.0.push((name.to_string(), to_value(value)?));
        Ok(())
    }
    fn end(self) -> Result<Value, Error> {
        Ok(Value::Object(self.0))
    }
}

impl SerializeMap for ObjBuilder {
    type Ok = Value;
    type Error = Error;
    fn serialize_entry<K: Serialize + ?Sized, V: Serialize + ?Sized>(
        &mut self,
        key: &K,
        value: &V,
    ) -> Result<(), Error> {
        let key = match to_value(key)? {
            Value::String(s) => s,
            Value::Number(n) => n.to_string(),
            Value::Bool(b) => b.to_string(),
            other => return Err(Error::custom(format!("unsupported map key: {other:?}"))),
        };
        self.0.push((key, to_value(value)?));
        Ok(())
    }
    fn end(self) -> Result<Value, Error> {
        Ok(Value::Object(self.0))
    }
}

impl SerializeSeq for SeqBuilder {
    type Ok = Value;
    type Error = Error;
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Error> {
        self.0.push(to_value(value)?);
        Ok(())
    }
    fn end(self) -> Result<Value, Error> {
        Ok(Value::Array(self.0))
    }
}

impl SerializeTuple for SeqBuilder {
    type Ok = Value;
    type Error = Error;
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Error> {
        self.0.push(to_value(value)?);
        Ok(())
    }
    fn end(self) -> Result<Value, Error> {
        Ok(Value::Array(self.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&-3i32).unwrap(), "-3");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string("a\"b\n").unwrap(), "\"a\\\"b\\n\"");
        assert_eq!(to_string(&Option::<u32>::None).unwrap(), "null");
    }

    #[test]
    fn containers() {
        assert_eq!(to_string(&vec![1u32, 2, 3]).unwrap(), "[1,2,3]");
        assert_eq!(to_string(&(1u32, 2.5f64)).unwrap(), "[1,2.5]");
        let m: std::collections::BTreeMap<String, u32> =
            [("a".to_string(), 1)].into_iter().collect();
        assert_eq!(to_string(&m).unwrap(), "{\"a\":1}");
    }

    #[test]
    fn pretty_layout() {
        let v = vec![vec![1u8], vec![]];
        assert_eq!(
            to_string_pretty(&v).unwrap(),
            "[\n  [\n    1\n  ],\n  []\n]"
        );
    }
}
