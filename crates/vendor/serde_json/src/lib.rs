//! Vendored JSON serializer over the vendored mini-serde: enough of the
//! `serde_json` API to dump any `Serialize` type as (pretty) JSON.
//! Typed deserialization is intentionally absent (see the vendored
//! `serde` crate docs); the stub instead exposes a [`Value`]-level parser
//! ([`from_str_value`]) plus accessors, which is all the workspace's
//! JSON-reading tools (the bench trend report) need.

use serde::ser::Error as SerError;
use serde::{Serialize, SerializeMap, SerializeSeq, SerializeStruct, SerializeTuple, Serializer};
use std::fmt;

/// Serialization error.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl SerError for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

/// An in-memory JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

/// A JSON number (integer or float).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Signed integer.
    I(i64),
    /// Unsigned integer.
    U(u64),
    /// Floating point.
    F(f64),
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Number::I(v) => write!(f, "{v}"),
            Number::U(v) => write!(f, "{v}"),
            Number::F(v) => {
                if v.is_finite() {
                    // Like serde_json: round-trippable shortest form; keep
                    // integral floats distinguishable with a trailing `.0`.
                    if v.fract() == 0.0 && v.abs() < 1e15 {
                        write!(f, "{v:.1}")
                    } else {
                        write!(f, "{v}")
                    }
                } else {
                    // serde_json rejects non-finite floats; we print null.
                    write!(f, "null")
                }
            }
        }
    }
}

impl Value {
    /// Object field lookup (`None` on non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(Number::I(v)) => Some(*v as f64),
            Value::Number(Number::U(v)) => Some(*v as f64),
            Value::Number(Number::F(v)) => Some(*v),
            _ => None,
        }
    }

    /// The string slice, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The element slice, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses JSON text into a [`Value`] tree — the stub's stand-in for the
/// real crate's `from_str` (no typed `Deserialize`; callers walk the
/// `Value`). Accepts exactly the JSON this crate's serializer emits, plus
/// standard escapes and whitespace.
pub fn from_str_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing input at byte {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected {:?} at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error(format!("bad literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.bytes.get(self.pos) {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.bytes.get(self.pos) == Some(&b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.bytes.get(self.pos) {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(Error(format!("bad array at byte {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.bytes.get(self.pos) == Some(&b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    entries.push((key, self.value()?));
                    self.skip_ws();
                    match self.bytes.get(self.pos) {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(entries));
                        }
                        _ => return Err(Error(format!("bad object at byte {}", self.pos))),
                    }
                }
            }
            Some(_) => self.number(),
            None => Err(Error("unexpected end of input".into())),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error("unterminated escape".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error("short \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            self.pos += 4;
                            // Surrogate pairs are out of scope for the stub;
                            // lone surrogates map to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        other => {
                            return Err(Error(format!("bad escape \\{}", *other as char)));
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error("invalid UTF-8".into()))?;
                    let c = rest
                        .chars()
                        .next()
                        .ok_or_else(|| Error("unterminated string".into()))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error("unterminated string".into())),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        while matches!(
            self.bytes.get(self.pos),
            Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if let Ok(v) = text.parse::<u64>() {
            return Ok(Value::Number(Number::U(v)));
        }
        if let Ok(v) = text.parse::<i64>() {
            return Ok(Value::Number(Number::I(v)));
        }
        text.parse::<f64>()
            .map(|v| Value::Number(Number::F(v)))
            .map_err(|_| Error(format!("bad number {text:?} at byte {start}")))
    }
}

/// Serializes `value` as a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    value.serialize(ValueSerializer)
}

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &to_value(value)?, None, 0);
    Ok(out)
}

/// Serializes `value` as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &to_value(value)?, Some(2), 0);
    Ok(out)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => out.push_str(&n.to_string()),
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- Serializer producing Value --------------------------------------------

struct ValueSerializer;

/// Builder for arrays/tuples.
struct SeqBuilder(Vec<Value>);
/// Builder for objects from structs/maps.
struct ObjBuilder(Vec<(String, Value)>);

impl Serializer for ValueSerializer {
    type Ok = Value;
    type Error = Error;
    type SerializeStruct = ObjBuilder;
    type SerializeSeq = SeqBuilder;
    type SerializeTuple = SeqBuilder;
    type SerializeMap = ObjBuilder;

    fn serialize_bool(self, v: bool) -> Result<Value, Error> {
        Ok(Value::Bool(v))
    }
    fn serialize_i64(self, v: i64) -> Result<Value, Error> {
        Ok(Value::Number(Number::I(v)))
    }
    fn serialize_u64(self, v: u64) -> Result<Value, Error> {
        Ok(Value::Number(Number::U(v)))
    }
    fn serialize_f64(self, v: f64) -> Result<Value, Error> {
        Ok(Value::Number(Number::F(v)))
    }
    fn serialize_str(self, v: &str) -> Result<Value, Error> {
        Ok(Value::String(v.to_string()))
    }
    fn serialize_bytes(self, v: &[u8]) -> Result<Value, Error> {
        Ok(Value::Array(
            v.iter()
                .map(|&b| Value::Number(Number::U(b as u64)))
                .collect(),
        ))
    }
    fn serialize_unit(self) -> Result<Value, Error> {
        Ok(Value::Null)
    }
    fn serialize_none(self) -> Result<Value, Error> {
        Ok(Value::Null)
    }
    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<Value, Error> {
        value.serialize(ValueSerializer)
    }
    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        value: &T,
    ) -> Result<Value, Error> {
        value.serialize(ValueSerializer)
    }
    fn serialize_unit_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
    ) -> Result<Value, Error> {
        Ok(Value::String(variant.to_string()))
    }
    fn serialize_struct(self, _name: &'static str, len: usize) -> Result<ObjBuilder, Error> {
        Ok(ObjBuilder(Vec::with_capacity(len)))
    }
    fn serialize_seq(self, len: Option<usize>) -> Result<SeqBuilder, Error> {
        Ok(SeqBuilder(Vec::with_capacity(len.unwrap_or(0))))
    }
    fn serialize_tuple(self, len: usize) -> Result<SeqBuilder, Error> {
        Ok(SeqBuilder(Vec::with_capacity(len)))
    }
    fn serialize_map(self, len: Option<usize>) -> Result<ObjBuilder, Error> {
        Ok(ObjBuilder(Vec::with_capacity(len.unwrap_or(0))))
    }
}

impl SerializeStruct for ObjBuilder {
    type Ok = Value;
    type Error = Error;
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        name: &'static str,
        value: &T,
    ) -> Result<(), Error> {
        self.0.push((name.to_string(), to_value(value)?));
        Ok(())
    }
    fn end(self) -> Result<Value, Error> {
        Ok(Value::Object(self.0))
    }
}

impl SerializeMap for ObjBuilder {
    type Ok = Value;
    type Error = Error;
    fn serialize_entry<K: Serialize + ?Sized, V: Serialize + ?Sized>(
        &mut self,
        key: &K,
        value: &V,
    ) -> Result<(), Error> {
        let key = match to_value(key)? {
            Value::String(s) => s,
            Value::Number(n) => n.to_string(),
            Value::Bool(b) => b.to_string(),
            other => return Err(Error::custom(format!("unsupported map key: {other:?}"))),
        };
        self.0.push((key, to_value(value)?));
        Ok(())
    }
    fn end(self) -> Result<Value, Error> {
        Ok(Value::Object(self.0))
    }
}

impl SerializeSeq for SeqBuilder {
    type Ok = Value;
    type Error = Error;
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Error> {
        self.0.push(to_value(value)?);
        Ok(())
    }
    fn end(self) -> Result<Value, Error> {
        Ok(Value::Array(self.0))
    }
}

impl SerializeTuple for SeqBuilder {
    type Ok = Value;
    type Error = Error;
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Error> {
        self.0.push(to_value(value)?);
        Ok(())
    }
    fn end(self) -> Result<Value, Error> {
        Ok(Value::Array(self.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&-3i32).unwrap(), "-3");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string("a\"b\n").unwrap(), "\"a\\\"b\\n\"");
        assert_eq!(to_string(&Option::<u32>::None).unwrap(), "null");
    }

    #[test]
    fn containers() {
        assert_eq!(to_string(&vec![1u32, 2, 3]).unwrap(), "[1,2,3]");
        assert_eq!(to_string(&(1u32, 2.5f64)).unwrap(), "[1,2.5]");
        let m: std::collections::BTreeMap<String, u32> =
            [("a".to_string(), 1)].into_iter().collect();
        assert_eq!(to_string(&m).unwrap(), "{\"a\":1}");
    }

    #[test]
    fn parser_round_trips_serializer_output() {
        // The shape the bench figures serialize: a map with strings,
        // nested point arrays and numbers.
        let mut fig: std::collections::BTreeMap<String, Vec<(f64, f64)>> =
            std::collections::BTreeMap::new();
        fig.insert("qps".into(), vec![(1.0, 13541.5), (2.0, -2.5e3)]);
        fig.insert("empty".into(), vec![]);
        let expected = Value::Object(vec![
            ("empty".into(), Value::Array(vec![])),
            (
                "qps".into(),
                Value::Array(vec![
                    Value::Array(vec![
                        Value::Number(Number::F(1.0)),
                        Value::Number(Number::F(13541.5)),
                    ]),
                    Value::Array(vec![
                        Value::Number(Number::F(2.0)),
                        Value::Number(Number::F(-2500.0)),
                    ]),
                ]),
            ),
        ]);
        for text in [to_string(&fig).unwrap(), to_string_pretty(&fig).unwrap()] {
            let parsed = from_str_value(&text).unwrap();
            assert_eq!(parsed, expected, "round-trip of {text}");
        }
        assert_eq!(
            expected.get("qps").unwrap().as_array().unwrap()[0]
                .as_array()
                .unwrap()[1]
                .as_f64(),
            Some(13541.5)
        );
        assert!(expected.get("missing").is_none());
        // Escapes, literals and integer forms.
        let v = from_str_value(
            "{\"s\": \"a\\n\\\"b\\u0041\", \"t\": true, \"z\": null, \"n\": 42, \"m\": -7}",
        )
        .unwrap();
        assert_eq!(v.get("s").unwrap().as_str(), Some("a\n\"bA"));
        assert_eq!(v.get("t"), Some(&Value::Bool(true)));
        assert_eq!(v.get("z"), Some(&Value::Null));
        assert_eq!(v.get("n").unwrap().as_f64(), Some(42.0));
        assert_eq!(v.get("m").unwrap().as_f64(), Some(-7.0));
    }

    #[test]
    fn parser_rejects_garbage() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "tru", "1 2", "\"unterminated"] {
            assert!(from_str_value(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn pretty_layout() {
        let v = vec![vec![1u8], vec![]];
        assert_eq!(
            to_string_pretty(&v).unwrap(),
            "[\n  [\n    1\n  ],\n  []\n]"
        );
    }
}
