//! Vendored stand-in for the `parking_lot` crate, implemented over
//! `std::sync`. This build environment has no crates.io access, so the
//! workspace vendors the tiny API slice it uses: non-poisoning
//! [`Mutex`] and [`RwLock`] whose `lock`/`read`/`write` return guards
//! directly instead of a `Result`.
//!
//! Poisoning is deliberately swallowed (`parking_lot` has no poisoning):
//! a panic while holding a lock leaves the data as-is for the next
//! holder, matching the real crate's semantics closely enough for this
//! workspace's usage.

use std::sync::{self, TryLockError};

pub use sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual exclusion primitive, API-compatible with `parking_lot::Mutex`.
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock, API-compatible with `parking_lot::RwLock`.
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new rwlock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access. Never poisons.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access. Never poisons.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts shared read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts exclusive write access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1]);
        assert_eq!(l.read().len(), 1);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }

    #[test]
    fn try_variants() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
