//! Vendored stand-in for the `bytes` crate: a cheaply-cloneable,
//! immutable byte buffer backed by `Arc<[u8]>`. This build environment
//! has no crates.io access, so the workspace vendors the API slice it
//! uses. Unlike the real crate, `slice()` copies; at this workspace's
//! volumes that is irrelevant.

use std::borrow::Borrow;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable chunk of contiguous memory.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    /// Creates an empty `Bytes`.
    pub fn new() -> Self {
        Bytes(Arc::from(&[][..]))
    }

    /// Creates `Bytes` by copying the given slice.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(Arc::from(data))
    }

    /// Creates `Bytes` from a static slice (copies here, unlike the real
    /// crate, which borrows — equivalent observable behaviour).
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes::copy_from_slice(data)
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Copies the contents into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.to_vec()
    }

    /// Returns a sub-buffer (copying; the real crate shares the backing
    /// allocation, which only changes performance, not behaviour).
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Self {
        use std::ops::Bound;
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.0.len(),
        };
        Bytes::copy_from_slice(&self.0[start..end])
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(Arc::from(v.into_boxed_slice()))
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(v: Box<[u8]>) -> Self {
        Bytes(Arc::from(v))
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl<const N: usize> From<&[u8; N]> for Bytes {
    fn from(v: &[u8; N]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl From<&str> for Bytes {
    fn from(s: &str) -> Self {
        Bytes::copy_from_slice(s.as_bytes())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_ref() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_ref() == other.as_slice()
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.0.iter() {
            // Matches the real crate's Debug: printable ASCII as-is,
            // common escapes, everything else as \xNN.
            match b {
                b'"' => write!(f, "\\\"")?,
                b'\\' => write!(f, "\\\\")?,
                b'\n' => write!(f, "\\n")?,
                b'\r' => write!(f, "\\r")?,
                b'\t' => write!(f, "\\t")?,
                0x20..=0x7E => write!(f, "{}", b as char)?,
                _ => write!(f, "\\x{b:02x}")?,
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_eq() {
        let b = Bytes::from(vec![1, 2, 3]);
        assert_eq!(b.len(), 3);
        assert_eq!(b.as_ref(), &[1, 2, 3][..]);
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
        assert_eq!(Bytes::from("hi").as_ref(), b"hi");
        assert!(Bytes::new().is_empty());
    }

    #[test]
    fn cheap_clone_shares() {
        let a = Bytes::from(vec![9; 1024]);
        let b = a.clone();
        assert_eq!(a, b);
        assert!(std::ptr::eq(a.as_ref().as_ptr(), b.as_ref().as_ptr()));
    }

    #[test]
    fn slice_ranges() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4]);
        assert_eq!(b.slice(1..3).as_ref(), &[1, 2][..]);
        assert_eq!(b.slice(..).as_ref(), &[0, 1, 2, 3, 4][..]);
        assert_eq!(b.slice(3..).as_ref(), &[3, 4][..]);
    }

    #[test]
    fn debug_is_bytes_literal() {
        assert_eq!(format!("{:?}", Bytes::from("a\n\x01")), "b\"a\\n\\x01\"");
    }
}
