//! Vendored stand-in for the `proptest` crate. This build environment
//! has no crates.io access, so the workspace vendors the API slice its
//! property tests use: the [`proptest!`] macro, [`Strategy`] with
//! `prop_map`/`boxed`, range and tuple strategies, [`Just`],
//! `prop_oneof!` (optionally weighted), `prop::collection::vec`,
//! [`any`], `prop_assert*` and [`ProptestConfig`].
//!
//! Differences from the real crate, chosen deliberately:
//!
//! * **no shrinking** — a failing case panics with the generated inputs
//!   baked into the assertion message instead of being minimised;
//! * **deterministic seeding** — each test function derives its RNG
//!   stream from its own name, so failures reproduce across runs;
//! * **`PROPTEST_CASES`** overrides the per-suite case count from the
//!   environment (matching the real crate), which is how CI keeps the
//!   suites to seconds.

/// Deterministic SplitMix64 generator driving all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for one `(test name, case index)` pair: deterministic across
    /// runs, decorrelated across tests and cases.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            state: h ^ ((case as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// Next uniform 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// Failure of a single test case. Test bodies (and helpers they call
/// with `?`) may return `Err(TestCaseError)`; the runner panics with
/// the message, as the no-shrinking analogue of the real crate.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Builds a failure with a reason.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Result of a single test case (mirrors `proptest::test_runner`).
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration (the slice of `proptest::test_runner::Config`
/// this workspace uses).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real crate defaults to 256; the workspace's suites all set
        // explicit counts, so this only covers config-less blocks.
        ProptestConfig { cases: 64 }
    }
}

/// Effective case count: `PROPTEST_CASES` env var wins over the
/// in-source config, so CI can pin suites to a fast budget.
pub fn resolve_cases(config: &ProptestConfig) -> u32 {
    match std::env::var("PROPTEST_CASES") {
        Ok(v) => v
            .trim()
            .parse()
            .unwrap_or_else(|_| panic!("PROPTEST_CASES must be a number, got {v:?}")),
        Err(_) => config.cases,
    }
}

/// A generator of values of type `Value` (mirrors `proptest::Strategy`,
/// minus shrinking).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

// ---- range strategies ------------------------------------------------------

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                lo + (rng.unit_f64() as $t) * (hi - lo)
            }
        }
    )*};
}
impl_float_range_strategy!(f32, f64);

// ---- tuple strategies ------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}

// ---- any / Arbitrary -------------------------------------------------------

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite values only: a sign, a broad exponent and a unit mantissa.
        let sign = if rng.next_u64() & 1 == 0 { 1.0 } else { -1.0 };
        let exp = (rng.below(61) as i32) - 30;
        sign * rng.unit_f64() * 2f64.powi(exp)
    }
}

/// Strategy produced by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T` (`any::<u64>()` etc.).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

// ---- union (prop_oneof!) ---------------------------------------------------

/// Weighted choice between boxed strategies (backs `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    /// Builds a union; weights must not all be zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! needs at least one positive weight");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (w, s) in &self.arms {
            if pick < *w as u64 {
                return s.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weights covered the whole range")
    }
}

// ---- collections -----------------------------------------------------------

/// Length specification for collection strategies.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_exclusive: n + 1,
        }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi_exclusive: r.end,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi_exclusive: *r.end() + 1,
        }
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_exclusive - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

// ---- macros ----------------------------------------------------------------

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running the body over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr); $(
        $(#[$attr:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$attr])*
        fn $name() {
            let __config = $cfg;
            let __cases = $crate::resolve_cases(&__config);
            for __case in 0..__cases {
                let mut __rng = $crate::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)+
                // The body runs in a closure returning `TestCaseResult`
                // so helpers can propagate failures with `?` (as in the
                // real crate); a failure panics the test with its reason.
                #[allow(clippy::redundant_closure_call)]
                let __outcome: $crate::TestCaseResult = (move || {
                    $body
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(e) = __outcome {
                    panic!("proptest case {} failed: {}", __case, e);
                }
            }
        }
    )*};
}

/// Weighted (`w => strategy`) or uniform choice between strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $((1u32, $crate::Strategy::boxed($strat))),+
        ])
    };
}

/// Asserts within a property (no shrinking: delegates to `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Equality assertion within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Inequality assertion within a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestCaseResult, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = TestRng::for_case("t", 0);
        for _ in 0..200 {
            let v = (1u8..=5, 0.0f64..2.0).generate(&mut rng);
            assert!((1..=5).contains(&v.0));
            assert!((0.0..2.0).contains(&v.1));
        }
    }

    #[test]
    fn union_respects_weights() {
        let s = prop_oneof![9 => Just(true), 1 => Just(false)];
        let mut rng = TestRng::for_case("w", 1);
        let trues = (0..1000).filter(|_| s.generate(&mut rng)).count();
        assert!(trues > 800, "trues {trues}");
    }

    #[test]
    fn vec_strategy_lengths() {
        let s = prop::collection::vec(0u64..10, 2..5);
        let mut rng = TestRng::for_case("v", 2);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn deterministic_per_name_and_case() {
        let draw = |name, case| {
            let mut rng = TestRng::for_case(name, case);
            std::array::from_fn::<u64, 4, _>(|_| rng.next_u64())
        };
        assert_eq!(draw("x", 3), draw("x", 3));
        // Different case index or test name → different stream.
        assert_ne!(draw("x", 3), draw("x", 4));
        assert_ne!(draw("x", 3), draw("y", 3));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn macro_end_to_end(x in 0u32..10, ys in prop::collection::vec(any::<u8>(), 0..4)) {
            prop_assert!(x < 10);
            prop_assert!(ys.len() < 4);
        }
    }

    #[test]
    fn env_override_cases() {
        // resolve_cases honours the config when the env var is unset.
        if std::env::var("PROPTEST_CASES").is_err() {
            assert_eq!(super::resolve_cases(&ProptestConfig::with_cases(7)), 7);
        }
    }
}
