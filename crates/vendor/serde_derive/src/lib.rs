//! Hand-rolled `#[derive(Serialize, Deserialize)]` for the vendored
//! mini-serde. No `syn`/`quote` (this build environment has no registry
//! access), so the input item is parsed directly from the proc-macro
//! token stream and the generated impl is assembled as source text.
//!
//! Supported shapes — exactly what this workspace uses:
//!
//! * structs with named fields (including `#[serde(with = "module")]`
//!   on individual fields);
//! * newtype structs (`struct Key(Vec<u8>);`);
//! * enums whose variants all carry no data.
//!
//! `Serialize` impls are fully functional. `Deserialize` impls are
//! compile-only stubs (the workspace never deserializes; see the
//! vendored `serde` crate docs).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What we learned about the item being derived for.
enum Shape {
    /// Named-field struct: `(field_name, field_type_src, with_module)`.
    NamedStruct(Vec<(String, String, Option<String>)>),
    /// Tuple struct with exactly one field.
    Newtype,
    /// Enum with only unit variants (variant names in order).
    UnitEnum(Vec<String>),
}

struct Item {
    name: String,
    shape: Shape,
}

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_serialize(&item),
        Err(msg) => compile_error(&msg),
    }
}

/// Derives `serde::Deserialize` (compile-only stub impl).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_deserialize(&item),
        Err(msg) => compile_error(&msg),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({:?});", msg).parse().unwrap()
}

// ---- parsing ---------------------------------------------------------------

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut toks = input.into_iter().peekable();

    // Skip outer attributes and visibility.
    loop {
        match toks.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                toks.next();
                toks.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                toks.next();
                if let Some(TokenTree::Group(g)) = toks.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        toks.next(); // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }

    let kind = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, got {other:?}")),
    };
    let name = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, got {other:?}")),
    };

    match toks.next() {
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => Err(format!(
            "mini-serde derive does not support generics on `{name}`"
        )),
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => match kind.as_str() {
            "struct" => Ok(Item {
                name,
                shape: Shape::NamedStruct(parse_named_fields(g.stream())?),
            }),
            "enum" => Ok(Item {
                name,
                shape: Shape::UnitEnum(parse_unit_variants(g.stream())?),
            }),
            _ => Err(format!("cannot derive for `{kind}`")),
        },
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            if kind != "struct" {
                return Err(format!("unexpected parenthesised body on `{kind} {name}`"));
            }
            let types = parse_tuple_fields(g.stream())?;
            if types.len() != 1 {
                return Err(format!(
                    "mini-serde derive supports tuple structs with exactly 1 field; \
                     `{name}` has {}",
                    types.len()
                ));
            }
            Ok(Item {
                name,
                shape: Shape::Newtype,
            })
        }
        other => Err(format!("unexpected token after `{kind} {name}`: {other:?}")),
    }
}

/// Parses `field: Type, ...`, honouring `#[serde(with = "module")]`.
fn parse_named_fields(body: TokenStream) -> Result<Vec<(String, String, Option<String>)>, String> {
    let mut fields = Vec::new();
    let mut toks = body.into_iter().peekable();
    loop {
        // Attributes before the field.
        let mut with_module = None;
        loop {
            match toks.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    toks.next();
                    if let Some(TokenTree::Group(g)) = toks.next() {
                        if let Some(m) = extract_serde_with(g.stream()) {
                            with_module = Some(m);
                        }
                    }
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    toks.next();
                    if let Some(TokenTree::Group(g)) = toks.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            toks.next();
                        }
                    }
                }
                _ => break,
            }
        }
        let fname = match toks.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("expected field name, got {other:?}")),
        };
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("expected `:` after `{fname}`, got {other:?}")),
        }
        // Type: tokens until a comma at angle-bracket depth 0.
        let mut ty = String::new();
        let mut depth = 0i32;
        while let Some(tt) = toks.peek() {
            if let TokenTree::Punct(p) = tt {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => {
                        toks.next();
                        break;
                    }
                    _ => {}
                }
            }
            ty.push_str(&toks.next().unwrap().to_string());
            ty.push(' ');
        }
        fields.push((fname, ty.trim().to_string(), with_module));
    }
    Ok(fields)
}

/// Parses the inside of `#[serde(...)]`, returning the `with` module.
fn extract_serde_with(attr_body: TokenStream) -> Option<String> {
    let mut toks = attr_body.into_iter();
    match toks.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return None,
    }
    let inner = match toks.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g.stream(),
        _ => return None,
    };
    let mut it = inner.into_iter();
    while let Some(tt) = it.next() {
        if let TokenTree::Ident(id) = &tt {
            if id.to_string() == "with" {
                // Expect `= "module::path"`.
                match (it.next(), it.next()) {
                    (Some(TokenTree::Punct(eq)), Some(TokenTree::Literal(lit)))
                        if eq.as_char() == '=' =>
                    {
                        let s = lit.to_string();
                        return Some(s.trim_matches('"').to_string());
                    }
                    _ => return None,
                }
            }
        }
    }
    None
}

/// Parses tuple-struct field types (attrs/vis stripped).
fn parse_tuple_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let mut types = Vec::new();
    let mut current = String::new();
    let mut depth = 0i32;
    let mut toks = body.into_iter().peekable();
    loop {
        match toks.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                toks.next();
                toks.next();
                continue;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" && current.is_empty() => {
                toks.next();
                if let Some(TokenTree::Group(g)) = toks.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        toks.next();
                    }
                }
                continue;
            }
            None => break,
            _ => {}
        }
        let tt = toks.next().unwrap();
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    if !current.trim().is_empty() {
                        types.push(current.trim().to_string());
                    }
                    current = String::new();
                    continue;
                }
                _ => {}
            }
        }
        current.push_str(&tt.to_string());
        current.push(' ');
    }
    if !current.trim().is_empty() {
        types.push(current.trim().to_string());
    }
    Ok(types)
}

/// Parses enum variants, requiring every variant to be dataless.
fn parse_unit_variants(body: TokenStream) -> Result<Vec<String>, String> {
    let mut variants = Vec::new();
    let mut toks = body.into_iter().peekable();
    loop {
        // Skip attributes (e.g. doc comments).
        while let Some(TokenTree::Punct(p)) = toks.peek() {
            if p.as_char() == '#' {
                toks.next();
                toks.next();
            } else {
                break;
            }
        }
        let vname = match toks.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("expected variant name, got {other:?}")),
        };
        // Anything up to the next top-level comma must be a discriminant
        // (`= expr`), not a payload.
        if let Some(TokenTree::Group(_)) = toks.peek() {
            return Err(format!(
                "mini-serde derive supports only dataless enum variants; \
                 `{vname}` carries data"
            ));
        }
        while let Some(tt) = toks.peek() {
            if matches!(tt, TokenTree::Punct(p) if p.as_char() == ',') {
                toks.next();
                break;
            }
            toks.next();
        }
        variants.push(vname);
    }
    Ok(variants)
}

// ---- code generation -------------------------------------------------------

fn gen_serialize(item: &Item) -> TokenStream {
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let mut src = format!(
                "let mut __st = serde::Serializer::serialize_struct(__s, {name:?}, {})?;\n",
                fields.len()
            );
            for (fname, fty, with) in fields {
                match with {
                    None => src.push_str(&format!(
                        "serde::ser::SerializeStruct::serialize_field(&mut __st, {fname:?}, \
                         &self.{fname})?;\n"
                    )),
                    Some(module) => src.push_str(&format!(
                        "{{\n\
                         struct __SerdeWith<'a>(&'a {fty});\n\
                         impl<'a> serde::Serialize for __SerdeWith<'a> {{\n\
                             fn serialize<__S2: serde::Serializer>(&self, __s2: __S2)\n\
                                 -> core::result::Result<__S2::Ok, __S2::Error> {{\n\
                                 {module}::serialize(self.0, __s2)\n\
                             }}\n\
                         }}\n\
                         serde::ser::SerializeStruct::serialize_field(&mut __st, {fname:?}, \
                         &__SerdeWith(&self.{fname}))?;\n\
                         }}\n"
                    )),
                }
            }
            src.push_str("serde::ser::SerializeStruct::end(__st)\n");
            src
        }
        Shape::Newtype => {
            format!("serde::Serializer::serialize_newtype_struct(__s, {name:?}, &self.0)\n")
        }
        Shape::UnitEnum(variants) => {
            let mut src = String::from("match self {\n");
            for (i, v) in variants.iter().enumerate() {
                src.push_str(&format!(
                    "{name}::{v} => serde::Serializer::serialize_unit_variant(__s, {name:?}, \
                     {i}u32, {v:?}),\n"
                ));
            }
            src.push_str("}\n");
            src
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl serde::Serialize for {name} {{\n\
             fn serialize<__S: serde::Serializer>(&self, __s: __S)\n\
                 -> core::result::Result<__S::Ok, __S::Error> {{\n\
                 {body}\n\
             }}\n\
         }}\n"
    )
    .parse()
    .expect("mini-serde derive generated invalid Serialize impl")
}

fn gen_deserialize(item: &Item) -> TokenStream {
    let name = &item.name;
    // Fields with `#[serde(with = "module")]` still reference the
    // module's `deserialize` fn, so its signature stays checked (and the
    // fn is not dead code) even though the stub impl never runs it.
    let mut with_refs = String::new();
    if let Shape::NamedStruct(fields) = &item.shape {
        for (_, _, with) in fields {
            if let Some(module) = with {
                with_refs.push_str(&format!("let _ = {module}::deserialize::<__D>;\n"));
            }
        }
    }
    format!(
        "#[automatically_derived]\n\
         impl<'de> serde::Deserialize<'de> for {name} {{\n\
             fn deserialize<__D: serde::Deserializer<'de>>(_d: __D)\n\
                 -> core::result::Result<Self, __D::Error> {{\n\
                 {with_refs}\
                 Err(<__D::Error as serde::de::Error>::custom(\n\
                     \"vendored mini-serde: Deserialize is compile-only\"))\n\
             }}\n\
         }}\n"
    )
    .parse()
    .expect("mini-serde derive generated invalid Deserialize impl")
}
