//! Vendored stand-in for the `criterion` crate. This build environment
//! has no crates.io access, so the workspace vendors the API slice its
//! benches use: `Criterion::bench_function`, benchmark groups with
//! `sample_size`/`throughput`, `Bencher::iter`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! Instead of criterion's full statistical machinery, each benchmark is
//! warmed up once and then timed over a fixed wall-clock budget; the
//! mean iteration time is printed. Good enough to compare orders of
//! magnitude and to keep every bench target compiling and runnable.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-iteration timer handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f`, running it repeatedly within the harness's budget.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warmup iteration, untimed.
        black_box(f());
        let budget = Duration::from_millis(200);
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < budget && iters < 1_000_000 {
            black_box(f());
            iters += 1;
        }
        self.iters = iters.max(1);
        self.elapsed = start.elapsed();
    }
}

/// Throughput annotation (recorded, echoed in the report line).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into(), None, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Accepted for CLI compatibility; the stub has no arguments.
    pub fn configure_from_args(self) -> Self {
        self
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub uses a time budget
    /// rather than a sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one named benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id.into()), self.throughput, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, throughput: Option<Throughput>, mut f: F) {
    let mut b = Bencher {
        iters: 0,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    if b.iters == 0 {
        // The closure never called `iter`; nothing to report.
        println!("{id:<50} (no measurement)");
        return;
    }
    let per_iter = b.elapsed.as_secs_f64() / b.iters as f64;
    let mut line = format!("{id:<50} {:>12}/iter", fmt_time(per_iter));
    match throughput {
        Some(Throughput::Elements(n)) => {
            let rate = n as f64 / per_iter;
            line += &format!("  {:>14.0} elem/s", rate);
        }
        Some(Throughput::Bytes(n)) => {
            let rate = n as f64 / per_iter;
            line += &format!("  {:>14.0} B/s", rate);
        }
        None => {}
    }
    println!("{line}");
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.2} s")
    }
}

/// Declares a function that runs the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_reports() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn group_api_chains() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(10).throughput(Throughput::Elements(4));
        g.bench_function("add", |b| b.iter(|| black_box(2) * 2));
        g.finish();
    }

    #[test]
    fn time_formatting() {
        assert!(fmt_time(5e-9).ends_with("ns"));
        assert!(fmt_time(5e-6).ends_with("µs"));
        assert!(fmt_time(5e-3).ends_with("ms"));
        assert!(fmt_time(5.0).ends_with("s"));
    }
}
