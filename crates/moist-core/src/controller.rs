//! The self-tuning elasticity controller: the loop that makes the fleet
//! operator-free.
//!
//! The paper's scalability story (§6.4's scale-out experiments) assumes
//! someone grows and shrinks the fleet as demand moves. Everywhere else
//! in this tier the "someone" is already a measurement — placement
//! weights, hot-cell splits and fan-out slice prices all derive from the
//! load layer — but *fleet size* was still a driver schedule
//! (`fig14_scaleout --elastic` joins shards at hard-coded instants).
//! [`AutoController`] closes that last loop: it windows the tier's own
//! [`ClusterStats`] signals and decides
//! [`add_shard`](crate::MoistCluster::add_shard) /
//! [`remove_shard`](crate::MoistCluster::remove_shard) /
//! [`rebalance`](crate::MoistCluster::rebalance) itself.
//!
//! # Discipline: virtual time, client ticks
//!
//! Like [`LoadTracker`](crate::load::LoadTracker), the controller runs
//! on **virtual time** — the timestamps the workload carries — and is
//! driven by client calls to
//! [`controller_tick`](crate::MoistCluster::controller_tick), not by a
//! background thread. A given workload therefore produces the same
//! scaling decisions on every run, which is what lets the
//! `fig20_autoscale` bench assert recovery behaviour and the chaos tests
//! assert non-oscillation deterministically.
//!
//! # Signals
//!
//! Each closed window (`window_secs` of virtual time) the controller
//! reads, as *deltas against the previous window*:
//!
//! * per-shard **busy time** — virtual µs of store time consumed per
//!   virtual second; the busiest shard is compared against
//!   `target_shard_busy_us` (the knee of one shard's capacity);
//! * **refusals** — [`ClusterStats::refused`] growth (ingest
//!   backpressure + overload sheds) means clients are already being
//!   turned away, the strongest possible "too small" signal. School
//!   sheds are deliberately *not* in this signal: a school-shed update
//!   was served (absorbed by the school model), so steady shedding is
//!   MOIST working, not the fleet drowning;
//! * **ingest queue depth** — a queue holding more than
//!   `queue_pressure` of its cap is a surge the flush path is losing;
//! * **split-table pressure** — a full
//!   [`SplitTable`](crate::cluster::SplitTable) while utilization is
//!   still skewed means finer ownership ran out of room and only more
//!   capacity helps.
//!
//! # Hysteresis
//!
//! Three mechanisms keep the controller from oscillating:
//!
//! * a **dead-band** between `scale_up_utilization` and
//!   `scale_down_utilization` (scale-down projects the load onto `n − 1`
//!   shards and requires it to stay *well below* where scale-up would
//!   trigger);
//! * a **cool-down** of `cooldown_secs` between scaling actions, in
//!   virtual time — after an add (or remove) the fleet gets a full
//!   measurement quiet period before the opposite action is even
//!   considered;
//! * **min/max fleet clamps** (`min_shards`/`max_shards`).
//!
//! Rebalance runs on its own cadence (`rebalance_every_secs`) outside
//! the cool-down: re-placing load inside the current fleet is cheap and
//! self-limiting (it has its own dead-bands), so it never waits on
//! scaling hysteresis.

use crate::cluster_tier::ClusterStats;
use moist_bigtable::Timestamp;
use std::collections::HashMap;

/// Knobs for [`AutoController`]. Construct with struct-update syntax
/// over [`Default::default`], then hand to
/// [`ClusterBuilder::controller`](crate::ClusterBuilder::controller).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ControllerConfig {
    /// The controller never shrinks the fleet below this.
    pub min_shards: usize,
    /// The controller never grows the fleet above this.
    pub max_shards: usize,
    /// Evaluation window in virtual seconds: signals are measured as
    /// deltas over one window and at most one scaling decision is made
    /// per window.
    pub window_secs: f64,
    /// Quiet period in virtual seconds after any add/remove before the
    /// next scaling action (either direction) is considered.
    pub cooldown_secs: f64,
    /// Cadence of controller-driven [`rebalance`] calls, in virtual
    /// seconds. Not subject to the scaling cool-down.
    ///
    /// [`rebalance`]: crate::MoistCluster::rebalance
    pub rebalance_every_secs: f64,
    /// The knee of one shard's capacity: virtual µs of store time a
    /// shard can comfortably consume per virtual second. Utilization
    /// thresholds are fractions of this.
    pub target_shard_busy_us: f64,
    /// Scale up when the busiest shard's busy time exceeds this fraction
    /// of `target_shard_busy_us`.
    pub scale_up_utilization: f64,
    /// Scale down only when the fleet's total busy time, projected onto
    /// `n − 1` shards, stays below this fraction of
    /// `target_shard_busy_us`. Must sit below `scale_up_utilization` —
    /// the gap is the dead-band.
    pub scale_down_utilization: f64,
    /// Scale up when any shard's ingest queue holds more than this
    /// fraction of its cap.
    pub queue_pressure: f64,
    /// Most shards added by a single scaling decision (removal is always
    /// one at a time — it migrates cells).
    pub max_step_shards: usize,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        ControllerConfig {
            min_shards: 1,
            max_shards: 16,
            window_secs: 10.0,
            cooldown_secs: 30.0,
            rebalance_every_secs: 10.0,
            // Half a virtual second of store time per virtual second:
            // 50% headroom before the shard's mutex becomes the limit.
            target_shard_busy_us: 500_000.0,
            scale_up_utilization: 0.9,
            scale_down_utilization: 0.5,
            queue_pressure: 0.5,
            max_step_shards: 2,
        }
    }
}

impl ControllerConfig {
    /// Clamps degenerate values into a workable configuration:
    /// `1 ≤ min ≤ max`, positive window/target, and a real dead-band
    /// (`scale_down < scale_up`).
    pub fn normalized(mut self) -> Self {
        self.min_shards = self.min_shards.max(1);
        self.max_shards = self.max_shards.max(self.min_shards);
        self.window_secs = self.window_secs.max(1e-3);
        self.cooldown_secs = self.cooldown_secs.max(0.0);
        self.rebalance_every_secs = self.rebalance_every_secs.max(1e-3);
        self.target_shard_busy_us = self.target_shard_busy_us.max(1.0);
        self.scale_up_utilization = self.scale_up_utilization.max(1e-6);
        self.scale_down_utilization = self
            .scale_down_utilization
            .clamp(0.0, self.scale_up_utilization * 0.9);
        self.queue_pressure = self.queue_pressure.clamp(1e-6, 1.0);
        self.max_step_shards = self.max_step_shards.max(1);
        self
    }
}

/// One action the controller took, as recorded in its event log.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ControllerAction {
    /// A shard was added.
    AddShard {
        /// The joiner's stable id.
        id: u64,
    },
    /// A shard was removed.
    RemoveShard {
        /// The removed shard's stable id.
        id: u64,
    },
    /// A rebalance step ran.
    Rebalance {
        /// The membership epoch after the step.
        epoch: u64,
    },
}

impl ControllerAction {
    /// Whether this action changed the fleet size (rebalances do not).
    pub fn is_scaling(&self) -> bool {
        !matches!(self, ControllerAction::Rebalance { .. })
    }
}

/// One entry of the controller's decision log — the observable trace the
/// chaos tests assert hysteresis on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ControllerEvent {
    /// Virtual time of the decision, in seconds.
    pub at_secs: f64,
    /// What was done.
    pub action: ControllerAction,
    /// Live fleet size right after the action.
    pub shards_after: usize,
    /// The signal that triggered the action.
    pub reason: &'static str,
}

/// A decision the controller wants the tier to execute. Produced by
/// [`AutoController::plan`]; the tier executes it and reports back
/// through [`AutoController::note_action`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum Plan {
    /// Run a rebalance step.
    Rebalance,
    /// Add `count` shards.
    Add { count: usize, reason: &'static str },
    /// Remove the shard with stable id `victim` (the least-busy shard
    /// of the closed window).
    Remove { victim: u64, reason: &'static str },
}

/// The windowed decision state. Owned by
/// [`MoistCluster`](crate::MoistCluster) (attach via
/// [`ClusterBuilder::controller`](crate::ClusterBuilder::controller))
/// and driven through
/// [`controller_tick`](crate::MoistCluster::controller_tick).
#[derive(Debug)]
pub struct AutoController {
    cfg: ControllerConfig,
    /// Start of the currently-open measurement window (virtual secs);
    /// `None` until the first tick seeds the baselines.
    window_start_secs: Option<f64>,
    /// Per-shard cumulative busy µs at the window start.
    busy_baseline: HashMap<u64, f64>,
    /// Cumulative refusal count (backpressure + overload sheds) at the
    /// window start.
    refused_baseline: u64,
    /// Virtual time of the last add/remove (cool-down anchor).
    last_scale_secs: Option<f64>,
    /// Virtual time of the last controller-driven rebalance.
    last_rebalance_secs: Option<f64>,
    events: Vec<ControllerEvent>,
}

impl AutoController {
    /// Builds a controller from (normalized) `cfg`.
    pub fn new(cfg: ControllerConfig) -> Self {
        AutoController {
            cfg: cfg.normalized(),
            window_start_secs: None,
            busy_baseline: HashMap::new(),
            refused_baseline: 0,
            last_scale_secs: None,
            last_rebalance_secs: None,
            events: Vec::new(),
        }
    }

    /// The (normalized) configuration this controller runs under.
    pub fn config(&self) -> ControllerConfig {
        self.cfg
    }

    /// The decision log so far, oldest first.
    pub fn events(&self) -> &[ControllerEvent] {
        &self.events
    }

    /// Cheap pre-filter: is there anything to evaluate at `now`? Lets
    /// the per-tick fast path skip the [`ClusterStats`] rollup entirely
    /// between window boundaries.
    pub(crate) fn due(&self, now: Timestamp) -> bool {
        let now_secs = now.0 as f64 / 1e6;
        let window_due = match self.window_start_secs {
            None => true,
            Some(start) => now_secs - start >= self.cfg.window_secs,
        };
        let rebalance_due = match self.last_rebalance_secs {
            None => true,
            Some(last) => now_secs - last >= self.cfg.rebalance_every_secs,
        };
        window_due || rebalance_due
    }

    /// Evaluates the controller at `now` against the tier's current
    /// stats and returns the actions to execute. `queue_cap` is the
    /// ingest queue capacity the per-shard depths are measured against.
    ///
    /// The first call only seeds the baselines; afterwards, each elapsed
    /// window yields at most one scaling plan (plus rebalances on their
    /// own cadence). The window then rolls forward whether or not
    /// anything triggered.
    pub(crate) fn plan(
        &mut self,
        now: Timestamp,
        stats: &ClusterStats,
        queue_cap: usize,
        split_table_full: bool,
    ) -> Vec<Plan> {
        let now_secs = now.0 as f64 / 1e6;
        let mut plans = Vec::new();

        // Rebalance cadence, independent of scaling hysteresis. The
        // first tick anchors the timer instead of firing: rebalancing a
        // fleet with no measurements yet is a no-op anyway.
        match self.last_rebalance_secs {
            None => self.last_rebalance_secs = Some(now_secs),
            Some(last) if now_secs - last >= self.cfg.rebalance_every_secs => {
                self.last_rebalance_secs = Some(now_secs);
                plans.push(Plan::Rebalance);
            }
            Some(_) => {}
        }

        let Some(start) = self.window_start_secs else {
            self.window_start_secs = Some(now_secs);
            self.reset_baselines(stats);
            return plans;
        };
        let dt = now_secs - start;
        if dt < self.cfg.window_secs {
            return plans;
        }

        // ---- measure the closed window (deltas over dt) ----
        let busy: Vec<(u64, f64)> = stats
            .shards
            .iter()
            .map(|s| {
                let base = self.busy_baseline.get(&s.id).copied().unwrap_or(0.0);
                (s.id, (s.elapsed_us - base).max(0.0) / dt)
            })
            .collect();
        let total_busy: f64 = busy.iter().map(|&(_, b)| b).sum();
        let busiest = busy.iter().map(|&(_, b)| b).fold(0.0f64, f64::max);
        let refused_delta = stats.refused().saturating_sub(self.refused_baseline);
        let max_queue = stats
            .shards
            .iter()
            .map(|s| s.queue_depth)
            .max()
            .unwrap_or(0);
        let n = stats.shards.len();

        // Roll the window forward before deciding: a cool-down-blocked
        // window must not smear into the next one.
        self.window_start_secs = Some(now_secs);
        self.reset_baselines(stats);

        let cooled = self
            .last_scale_secs
            .is_none_or(|at| now_secs - at >= self.cfg.cooldown_secs);
        if !cooled {
            return plans;
        }

        let target = self.cfg.target_shard_busy_us;
        let queue_hot =
            queue_cap > 0 && max_queue as f64 >= self.cfg.queue_pressure * queue_cap as f64;
        let up_reason = if busiest > self.cfg.scale_up_utilization * target {
            Some("busiest shard over utilization target")
        } else if refused_delta > 0 {
            Some("overload refusals observed")
        } else if queue_hot {
            Some("ingest queue pressure")
        } else if split_table_full && stats.utilization_skew() > 2.0 {
            Some("split table exhausted under skew")
        } else {
            None
        };

        if let Some(reason) = up_reason {
            if n < self.cfg.max_shards {
                // Jump toward the fleet size the measured load asks for,
                // a bounded step at a time.
                let desired =
                    ((total_busy / target).ceil() as usize).clamp(n + 1, self.cfg.max_shards);
                let count = (desired - n).min(self.cfg.max_step_shards);
                plans.push(Plan::Add { count, reason });
            }
        } else if n > self.cfg.min_shards
            && refused_delta == 0
            && max_queue == 0
            && total_busy / (n as f64 - 1.0) < self.cfg.scale_down_utilization * target
        {
            // The least-busy shard of the window is the cheapest to
            // drain (ties break toward the highest id — retire the
            // youngest of equals).
            let victim = busy
                .iter()
                .min_by(|a, b| {
                    a.1.partial_cmp(&b.1)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(b.0.cmp(&a.0))
                })
                .map(|&(id, _)| id);
            if let Some(victim) = victim {
                plans.push(Plan::Remove {
                    victim,
                    reason: "fleet idle below scale-down band",
                });
            }
        }
        plans
    }

    /// Records an executed action in the event log; scaling actions also
    /// anchor the cool-down.
    pub(crate) fn note_action(
        &mut self,
        now: Timestamp,
        action: ControllerAction,
        shards_after: usize,
        reason: &'static str,
    ) {
        let at_secs = now.0 as f64 / 1e6;
        if action.is_scaling() {
            self.last_scale_secs = Some(at_secs);
        }
        self.events.push(ControllerEvent {
            at_secs,
            action,
            shards_after,
            reason,
        });
    }

    fn reset_baselines(&mut self, stats: &ClusterStats) {
        self.busy_baseline = stats.shards.iter().map(|s| (s.id, s.elapsed_us)).collect();
        self.refused_baseline = stats.refused();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster_tier::ShardLoadStats;

    fn at(secs: f64) -> Timestamp {
        Timestamp::from_secs_f64(secs)
    }

    fn cfg() -> ControllerConfig {
        ControllerConfig {
            min_shards: 2,
            max_shards: 8,
            window_secs: 5.0,
            cooldown_secs: 20.0,
            rebalance_every_secs: 10.0,
            target_shard_busy_us: 10_000.0,
            ..ControllerConfig::default()
        }
    }

    /// A stats rollup with the given per-shard cumulative busy µs, queue
    /// depths and refusal count; everything else quiet.
    fn stats(busy_us: &[(u64, f64)], queue: usize, refused: u64) -> ClusterStats {
        let shards = busy_us
            .iter()
            .map(|&(id, elapsed_us)| ShardLoadStats {
                id,
                weight: 1.0,
                elapsed_us,
                update_rate: 0.0,
                query_rate: 0.0,
                primary_keys: 0,
                follower_keys: 0,
                replica_reads: 0,
                scatter_slices: 0,
                scatter_slice_us: 0.0,
                queue_depth: queue,
            })
            .collect();
        let mut s = ClusterStats {
            epoch: 0,
            shards,
            split_cells: Vec::new(),
            epoch_migrations: 0,
            split_migrations: 0,
            replicas: 1,
            promotions: 0,
            replica_reads: 0,
            ingest: Default::default(),
            ops: Default::default(),
        };
        s.ingest.backpressure = refused;
        s
    }

    #[test]
    fn normalization_enforces_a_dead_band_and_sane_clamps() {
        let c = ControllerConfig {
            min_shards: 0,
            max_shards: 0,
            window_secs: -1.0,
            scale_up_utilization: 0.5,
            scale_down_utilization: 0.9,
            max_step_shards: 0,
            ..ControllerConfig::default()
        }
        .normalized();
        assert_eq!(c.min_shards, 1);
        assert!(c.max_shards >= c.min_shards);
        assert!(c.window_secs > 0.0);
        assert!(c.scale_down_utilization < c.scale_up_utilization);
        assert_eq!(c.max_step_shards, 1);
    }

    #[test]
    fn first_tick_seeds_then_surge_plans_an_add() {
        let mut ctl = AutoController::new(cfg());
        // Seed tick: no scaling, rebalance timer anchored.
        let plans = ctl.plan(at(0.0), &stats(&[(0, 0.0), (1, 0.0)], 0, 0), 1024, false);
        assert!(plans.is_empty());
        // A quiet window: nothing.
        let plans = ctl.plan(
            at(5.0),
            &stats(&[(0, 1000.0), (1, 900.0)], 0, 0),
            1024,
            false,
        );
        assert!(!plans.iter().any(|p| matches!(p, Plan::Add { .. })));
        // Surge: busiest shard consumes 12_000 µs/s > 0.9 × 10_000.
        let plans = ctl.plan(
            at(10.0),
            &stats(&[(0, 61_000.0), (1, 30_900.0)], 0, 0),
            1024,
            false,
        );
        match plans.as_slice() {
            [Plan::Rebalance, Plan::Add { count, .. }] => {
                // total busy 18_000 µs/s → desired ceil(1.8) clamps to
                // n+1 = 3 → one join (max_step allows 2).
                assert_eq!(*count, 1);
            }
            other => panic!("expected rebalance + add, got {other:?}"),
        }
    }

    #[test]
    fn cooldown_blocks_the_opposite_action_until_it_expires() {
        let mut ctl = AutoController::new(cfg());
        ctl.plan(
            at(0.0),
            &stats(&[(0, 0.0), (1, 0.0), (2, 0.0)], 0, 0),
            1024,
            false,
        );
        // Surge window → add.
        let plans = ctl.plan(
            at(5.0),
            &stats(&[(0, 50_000.0), (1, 1000.0), (2, 1000.0)], 0, 0),
            1024,
            false,
        );
        assert!(plans.iter().any(|p| matches!(p, Plan::Add { .. })));
        ctl.note_action(at(5.0), ControllerAction::AddShard { id: 3 }, 4, "test");
        // The fleet goes idle immediately — but the cool-down holds the
        // remove back for 20 virtual seconds.
        let idle = stats(&[(0, 50_100.0), (1, 1100.0), (2, 1100.0), (3, 10.0)], 0, 0);
        let plans = ctl.plan(at(10.0), &idle, 1024, false);
        assert!(
            !plans.iter().any(|p| matches!(p, Plan::Remove { .. })),
            "cool-down must hold: {plans:?}"
        );
        // After the cool-down expires the remove goes through, and the
        // victim is the least-busy shard (the idle joiner).
        let plans = ctl.plan(at(30.0), &idle, 1024, false);
        assert!(
            plans
                .iter()
                .any(|p| matches!(p, Plan::Remove { victim: 3, .. })),
            "expected remove of idle joiner: {plans:?}"
        );
    }

    #[test]
    fn refusals_and_queue_pressure_trigger_adds_even_when_utilization_is_low() {
        let mut ctl = AutoController::new(cfg());
        ctl.plan(at(0.0), &stats(&[(0, 0.0), (1, 0.0)], 0, 0), 1024, false);
        let plans = ctl.plan(at(5.0), &stats(&[(0, 10.0), (1, 10.0)], 0, 7), 1024, false);
        assert!(plans
            .iter()
            .any(|p| matches!(p, Plan::Add { reason, .. } if reason.contains("refusals"))));
        ctl.note_action(at(5.0), ControllerAction::AddShard { id: 2 }, 3, "t");
        let mut ctl2 = AutoController::new(cfg());
        ctl2.plan(at(0.0), &stats(&[(0, 0.0), (1, 0.0)], 0, 0), 1024, false);
        let plans = ctl2.plan(
            at(5.0),
            &stats(&[(0, 10.0), (1, 10.0)], 600, 0),
            1024,
            false,
        );
        assert!(plans
            .iter()
            .any(|p| matches!(p, Plan::Add { reason, .. } if reason.contains("queue"))));
    }

    #[test]
    fn fleet_clamps_are_respected() {
        let mut ctl = AutoController::new(ControllerConfig {
            max_shards: 2,
            ..cfg()
        });
        ctl.plan(at(0.0), &stats(&[(0, 0.0), (1, 0.0)], 0, 0), 1024, false);
        // Hot, but already at max: no add.
        let plans = ctl.plan(
            at(5.0),
            &stats(&[(0, 100_000.0), (1, 100_000.0)], 0, 0),
            1024,
            false,
        );
        assert!(!plans.iter().any(|p| matches!(p, Plan::Add { .. })));
        // At min: no remove however idle.
        let mut ctl = AutoController::new(cfg());
        ctl.plan(at(0.0), &stats(&[(0, 0.0), (1, 0.0)], 0, 0), 1024, false);
        let plans = ctl.plan(at(40.0), &stats(&[(0, 10.0), (1, 10.0)], 0, 0), 1024, false);
        assert!(!plans.iter().any(|p| matches!(p, Plan::Remove { .. })));
    }

    #[test]
    fn rebalance_fires_on_its_own_cadence_despite_cooldown() {
        let mut ctl = AutoController::new(cfg());
        ctl.plan(at(0.0), &stats(&[(0, 0.0), (1, 0.0)], 0, 0), 1024, false);
        ctl.note_action(at(0.0), ControllerAction::AddShard { id: 9 }, 3, "t");
        // Well inside the scaling cool-down, the rebalance cadence still
        // fires.
        let plans = ctl.plan(at(10.0), &stats(&[(0, 10.0), (1, 10.0)], 0, 0), 1024, false);
        assert!(plans.contains(&Plan::Rebalance));
    }

    #[test]
    fn split_table_exhaustion_under_skew_asks_for_capacity() {
        let mut ctl = AutoController::new(cfg());
        ctl.plan(
            at(0.0),
            &stats(&[(0, 0.0), (1, 0.0), (2, 0.0)], 0, 0),
            1024,
            false,
        );
        // Strong skew (one shard does nearly all the work) but busiest
        // utilization below target: only the full split table justifies
        // growing.
        let skewed = stats(&[(0, 30_000.0), (1, 10.0), (2, 10.0)], 0, 0);
        let plans = ctl.plan(at(5.0), &skewed, 1024, true);
        assert!(plans
            .iter()
            .any(|p| matches!(p, Plan::Add { reason, .. } if reason.contains("split"))));
    }
}
