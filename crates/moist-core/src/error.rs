//! MOIST error type.

use moist_bigtable::BigtableError;
use std::fmt;

/// Errors surfaced by the MOIST indexer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MoistError {
    /// Underlying store error.
    Store(BigtableError),
    /// A stored value failed to decode (corruption or version skew).
    Codec(&'static str),
    /// An update or query referenced an object with inconsistent state
    /// (e.g. a follower whose leader vanished).
    Inconsistent(String),
    /// Invalid configuration.
    Config(String),
    /// A cluster-tier operation addressed a shard that is not in the
    /// current membership (position past the end, unknown shard id, or
    /// removing the last live shard). Failover code paths match on this
    /// instead of aborting on an index panic.
    NoSuchShard(String),
    /// A submission hit a full ingestion queue under
    /// [`BackpressurePolicy::Reject`](crate::BackpressurePolicy::Reject).
    /// The update was **not** accepted: the client owns the retry. `shard`
    /// is the stable shard id the update routed to and `depth` the queue
    /// depth observed at rejection time.
    Backpressure {
        /// Stable id of the shard whose queue was full.
        shard: u64,
        /// Queue depth at the moment of rejection.
        depth: usize,
    },
}

impl fmt::Display for MoistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MoistError::Store(e) => write!(f, "store error: {e}"),
            MoistError::Codec(msg) => write!(f, "codec error: {msg}"),
            MoistError::Inconsistent(msg) => write!(f, "inconsistent state: {msg}"),
            MoistError::Config(msg) => write!(f, "bad configuration: {msg}"),
            MoistError::NoSuchShard(msg) => write!(f, "no such shard: {msg}"),
            MoistError::Backpressure { shard, depth } => {
                write!(
                    f,
                    "backpressure: ingest queue for shard {shard} full at depth {depth}"
                )
            }
        }
    }
}

impl std::error::Error for MoistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MoistError::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<BigtableError> for MoistError {
    fn from(e: BigtableError) -> Self {
        MoistError::Store(e)
    }
}

/// Result alias for MOIST operations.
pub type Result<T> = std::result::Result<T, MoistError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = MoistError::from(BigtableError::UnknownTable("x".into()));
        assert!(e.to_string().contains("unknown table"));
        assert!(e.source().is_some());
        assert!(MoistError::Codec("bad").source().is_none());
    }

    #[test]
    fn backpressure_names_the_shard_and_depth() {
        let e = MoistError::Backpressure {
            shard: 7,
            depth: 256,
        };
        let s = e.to_string();
        assert!(s.contains("shard 7"), "{s}");
        assert!(s.contains("depth 256"), "{s}");
        use std::error::Error;
        assert!(e.source().is_none());
    }
}
