//! # moist-core
//!
//! The MOIST moving-object indexer (Jiang, Bao, Chang, Li — VLDB 2012):
//! update shedding through **object schools**, spatial indexing over a
//! space-filling curve, adaptive nearest-neighbour search, lazy velocity
//! clustering, and hooks into the PPP aged-data archiver.
//!
//! Module map (paper section in parentheses):
//!
//! * [`tables`] — the Location, Spatial Index and Affiliation tables (§3.1);
//! * [`school`] — estimated locations & school membership (§3.3);
//! * [`update`] — Algorithm 1, the three-branch update procedure (§3.3.1);
//! * [`cluster`] + [`hexgrid`] — lazy O(n) velocity clustering (§3.3.2);
//! * [`nn`] — Algorithm 2 nearest-neighbour search (§3.4.1);
//! * [`flag`] — Algorithms 3–4, the Fast Level Adaptive Grid (§3.4.2);
//! * [`server`] — a front-end server tying everything together (§4.3);
//! * [`cluster_tier`] — the sharded multi-server tier: N servers over one
//!   store, routing and clustering partitioned by rendezvous-hashed cell
//!   ownership over an epoch-stamped membership, with live shard
//!   join/leave (§4.3.3);
//! * [`ingest`] — the batched, pipelined ingestion tier: bounded per-shard
//!   submission queues with size/deadline flush and typed backpressure,
//!   feeding the batched apply path (§4.1's batch-write discount);
//! * [`controller`] — the self-tuning elasticity controller: windows the
//!   tier's measured signals and grows/shrinks/rebalances the fleet
//!   itself under hysteresis (§6.4's scale-out, operator-free).
//!
//! ```
//! use moist_bigtable::{Bigtable, Timestamp};
//! use moist_core::{MoistConfig, MoistServer, ObjectId, UpdateMessage};
//! use moist_spatial::{Point, Velocity};
//!
//! let store = Bigtable::new();
//! let mut server = MoistServer::new(&store, MoistConfig::default())?;
//! server.update(&UpdateMessage {
//!     oid: ObjectId(7),
//!     loc: Point::new(250.0, 750.0),
//!     vel: Velocity::new(1.5, 0.0),
//!     ts: Timestamp::from_secs(1),
//! })?;
//! let (neighbors, _stats) = server.nn(Point::new(250.0, 750.0), 1, Timestamp::from_secs(1))?;
//! assert_eq!(neighbors[0].oid, ObjectId(7));
//! # Ok::<(), moist_core::MoistError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod cluster_tier;
pub mod codec;
pub mod config;
pub mod controller;
pub mod error;
pub mod flag;
pub mod hexgrid;
pub mod ids;
pub mod ingest;
pub mod load;
pub mod nn;
pub mod query_pool;
pub mod region;
pub mod school;
pub mod server;
pub mod tables;
pub mod update;

pub use cluster::{
    cluster_cell, cluster_sweep, rendezvous_owner, rendezvous_owners, routing_key_cell,
    slice_ranges_by_owner, slice_ranges_by_placement, slice_ranges_by_replicas,
    weighted_rendezvous_owner, weighted_rendezvous_owners, ClusterReport, ClusterScheduler,
    ShardWeight, SplitTable, SPLIT_CHILD_TAG,
};
pub use cluster_tier::{
    ClusterBuilder, ClusterStats, MoistCluster, RebalanceReport, ShardLoadStats,
};
pub use codec::{LfRecord, LocationRecord};
pub use config::{table_names, MoistConfig};
pub use controller::{AutoController, ControllerAction, ControllerConfig, ControllerEvent};
pub use error::{MoistError, Result};
pub use flag::{FlagLookup, FlagStats, FlagTuner};
pub use hexgrid::{HexBin, HexGrid};
pub use ids::ObjectId;
pub use ingest::{BackpressurePolicy, IngestConfig, IngestStats, SubmitOutcome};
pub use load::{CellRates, LoadTracker};
pub use nn::{
    merge_ring_partials, nn_candidate_ring, nn_partial_scan, nn_query, Neighbor, NnCandidate,
    NnOptions, NnPartial, NnStats,
};
pub use query_pool::QueryPool;
pub use region::{
    balance_slices, merge_region_partials, plan_region_ranges, region_partial_scan, region_query,
    RegionPartial, RegionStats,
};
pub use school::{estimated_location, within_school};
pub use server::{MoistServer, ServerStats};
pub use tables::{MoistTables, SpatialEntry, WriteBatch};
pub use update::{apply_update, apply_update_batch, UpdateMessage, UpdateOutcome};
