//! MOIST configuration.

use crate::error::{MoistError, Result};
use moist_spatial::Space;
use serde::{Deserialize, Serialize};

/// All tunables of the indexer, with the paper's defaults.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct MoistConfig {
    /// The indexed space (world bounds, curve, leaf level `l_s`).
    pub space: Space,
    /// School deviation threshold ε in world units (§3.3.1): a follower
    /// whose reported location is further than ε from its estimated
    /// location departs its school. `0.0` disables schooling (every object
    /// is a leader — the paper's "worst case" BigTable experiments).
    pub epsilon: f64,
    /// Velocity-similarity threshold Δm (world units/s): hexagonal velocity
    /// bins guarantee any two velocities in a bin differ by less than Δm
    /// (§3.3.2).
    pub delta_m: f64,
    /// Level of the clustering cells (coarser than the leaf level; §3.3.2).
    pub clustering_level: u8,
    /// Interval between re-clusterings of a cell, seconds (`T_c`, §4.2.1).
    pub cluster_interval_secs: f64,
    /// Target objects per NN cell (σ, §3.4.2) for the FLAG level tuner.
    pub sigma: usize,
    /// Age after which a FLAG cache entry is recomputed, seconds (§3.4.2:
    /// important "especially for business centers").
    pub flag_cache_ttl_secs: f64,
    /// Seconds after which location/affiliation records count as aged and
    /// move to disk columns.
    pub aging_secs: f64,
    /// In-memory history records kept per object (`m`, §3.5).
    pub memory_records_per_object: usize,
}

impl Default for MoistConfig {
    fn default() -> Self {
        MoistConfig {
            space: Space::paper_map(),
            epsilon: 20.0,
            delta_m: 2.0,
            clustering_level: 2,
            cluster_interval_secs: 10.0,
            sigma: 32,
            flag_cache_ttl_secs: 300.0,
            aging_secs: 600.0,
            memory_records_per_object: 8,
        }
    }
}

impl MoistConfig {
    /// Validates the configuration.
    pub fn validate(&self) -> Result<()> {
        if self.epsilon < 0.0 || !self.epsilon.is_finite() {
            return Err(MoistError::Config(format!(
                "epsilon must be finite and >= 0, got {}",
                self.epsilon
            )));
        }
        if self.delta_m <= 0.0 || !self.delta_m.is_finite() {
            return Err(MoistError::Config(format!(
                "delta_m must be finite and > 0, got {}",
                self.delta_m
            )));
        }
        if self.clustering_level > self.space.leaf_level {
            return Err(MoistError::Config(format!(
                "clustering level {} must be coarser than leaf level {}",
                self.clustering_level, self.space.leaf_level
            )));
        }
        if self.sigma == 0 {
            return Err(MoistError::Config("sigma must be positive".into()));
        }
        if self.cluster_interval_secs <= 0.0 {
            return Err(MoistError::Config(
                "cluster interval must be positive".into(),
            ));
        }
        Ok(())
    }

    /// A config with schooling disabled (ε = 0): every object is a leader.
    /// This is how the paper runs its pure-BigTable experiments (§4,
    /// "the error bound was set to be zero … the worst case").
    pub fn without_schooling() -> Self {
        MoistConfig {
            epsilon: 0.0,
            ..MoistConfig::default()
        }
    }
}

/// Table names used in the store.
pub mod table_names {
    /// The Location Table (§3.1.2).
    pub const LOCATION: &str = "moist_location";
    /// The Spatial Index Table (§3.2).
    pub const SPATIAL_INDEX: &str = "moist_spatial_index";
    /// The Affiliation Table (§3.1.1).
    pub const AFFILIATION: &str = "moist_affiliation";
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        MoistConfig::default().validate().unwrap();
        MoistConfig::without_schooling().validate().unwrap();
    }

    #[test]
    fn rejects_bad_values() {
        let base = MoistConfig::default();
        let cases = [
            MoistConfig {
                epsilon: -1.0,
                ..base
            },
            MoistConfig {
                delta_m: 0.0,
                ..base
            },
            MoistConfig {
                clustering_level: base.space.leaf_level + 1,
                ..base
            },
            MoistConfig { sigma: 0, ..base },
            MoistConfig {
                cluster_interval_secs: 0.0,
                ..base
            },
        ];
        for c in cases {
            assert!(c.validate().is_err(), "{c:?} must be rejected");
        }
    }
}
