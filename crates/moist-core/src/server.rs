//! The MOIST front-end server.
//!
//! A [`MoistServer`] is one of the paper's front-end machines: it applies
//! updates (Algorithm 1), answers NN queries (Algorithm 2 + FLAG), runs
//! lazy clustering on its schedule, and streams leaders' location records
//! into the PPP archiver. Several servers share one `Arc<Bigtable>`
//! exactly like the paper's 5- and 10-server deployments share one
//! BigTable (§4.3.3).
//!
//! ## Intra-shard concurrency
//!
//! Query paths (`nn*`, `region*`, `*_partial`, `position`, `flag_level`)
//! take `&self`: each call opens an ephemeral [`Session`] attached to the
//! server's shared [`MeterHub`], so cost accounting needs no `&mut`
//! clock, and all query-side bookkeeping lives behind shared-friendly
//! state (atomic [`ServerStats`] counters, a `Mutex<LoadTracker>`, an
//! `RwLock<FlagTuner>` whose write guard is taken only when a query
//! actually re-tunes the level). Write paths (`update`, `update_batch`,
//! `run_due_clustering`, scheduler handoff) keep `&mut self`. A cluster
//! tier can therefore put each shard behind an `RwLock` and serve many
//! concurrent readers per shard while writers stay exclusive.
//!
//! Ephemeral sessions are *seeded* from the hub's running totals, so on a
//! single thread every charge lands in the same order and at the same
//! absolute clock value as the old one-shared-session design — virtual
//! time stays bit-identical.

use crate::cluster::{cluster_cell, ClusterReport, ClusterScheduler};
use crate::config::MoistConfig;
use crate::error::{MoistError, Result};
use crate::flag::{FlagLookup, FlagStats, FlagTuner};
use crate::ids::ObjectId;
use crate::load::{CellRates, LoadTracker};
use crate::nn::{nn_query, Neighbor, NnOptions, NnStats};
use crate::school::estimated_location;
use crate::tables::MoistTables;
use crate::update::{apply_update, apply_update_batch, UpdateMessage, UpdateOutcome};
use moist_archive::{HistoryRecord, PppArchiver, QueryCost};
use moist_bigtable::{Bigtable, BigtableError, MeterHub, Session, Timestamp};
use moist_spatial::Point;
use parking_lot::{Mutex, RwLock};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Updates processed between lazy re-seeds of the object estimate from the
/// store's row count (which sees other servers' registrations too).
const ESTIMATE_REFRESH_OPS: u64 = 1024;

/// Per-server operation counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ServerStats {
    /// Updates received.
    pub updates: u64,
    /// Updates shed by schooling (no store writes).
    pub shed: u64,
    /// Leader-branch updates.
    pub leader_updates: u64,
    /// First-sight registrations.
    pub registered: u64,
    /// School departures.
    pub departures: u64,
    /// NN queries served.
    pub nn_queries: u64,
    /// Clustering runs executed.
    pub cluster_runs: u64,
}

impl ServerStats {
    /// Fraction of updates shed (`0.0` when no updates were seen).
    pub fn shed_ratio(&self) -> f64 {
        if self.updates == 0 {
            0.0
        } else {
            self.shed as f64 / self.updates as f64
        }
    }

    /// Whether the per-outcome counters account for every update received
    /// (each update is exactly one of shed / leader / registered /
    /// departed — the cluster-tier consistency invariant).
    pub fn balanced(&self) -> bool {
        self.shed + self.leader_updates + self.registered + self.departures == self.updates
    }

    /// Accumulates another server's counters (cluster-tier aggregation).
    pub fn merge_from(&mut self, other: &ServerStats) {
        self.updates += other.updates;
        self.shed += other.shed;
        self.leader_updates += other.leader_updates;
        self.registered += other.registered;
        self.departures += other.departures;
        self.nn_queries += other.nn_queries;
        self.cluster_runs += other.cluster_runs;
    }
}

/// Atomic backing for [`ServerStats`] so query paths can count through
/// `&self`; [`StatsCells::snapshot`] materialises the public struct.
#[derive(Debug, Default)]
struct StatsCells {
    updates: AtomicU64,
    shed: AtomicU64,
    leader_updates: AtomicU64,
    registered: AtomicU64,
    departures: AtomicU64,
    nn_queries: AtomicU64,
    cluster_runs: AtomicU64,
}

impl StatsCells {
    fn snapshot(&self) -> ServerStats {
        ServerStats {
            updates: self.updates.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            leader_updates: self.leader_updates.load(Ordering::Relaxed),
            registered: self.registered.load(Ordering::Relaxed),
            departures: self.departures.load(Ordering::Relaxed),
            nn_queries: self.nn_queries.load(Ordering::Relaxed),
            cluster_runs: self.cluster_runs.load(Ordering::Relaxed),
        }
    }
}

/// One MOIST front-end server.
pub struct MoistServer {
    cfg: MoistConfig,
    tables: MoistTables,
    /// Shared accumulator of virtual time and op counts; every session
    /// this server opens (ephemeral per-call or the persistent one
    /// below) mirrors its charges here.
    hub: Arc<MeterHub>,
    /// Persistent hub-attached session, kept for [`session_mut`]
    /// (benches reset the clock through it; tests thread it into table
    /// helpers). Query/update paths use ephemeral hubbed sessions
    /// instead so they never need `&mut` access to this field.
    ///
    /// [`session_mut`]: MoistServer::session_mut
    session: Session,
    /// FLAG tuner: read guard for cache hits and Algorithm 3 probes,
    /// write guard only to install a re-tuned level.
    flag: RwLock<FlagTuner>,
    scheduler: ClusterScheduler,
    archiver: Option<Arc<PppArchiver>>,
    stats: StatsCells,
    /// Object-count estimate for FLAG's initial guess. Seeded from the
    /// store on construction (a server joining an already-populated store
    /// must not feed FLAG `n = 1`), bumped on local registrations, and
    /// lazily re-seeded from the store row count every
    /// [`ESTIMATE_REFRESH_OPS`] updates so remote registrations show up
    /// too. Shared across shards in a cluster tier.
    object_estimate: Arc<AtomicU64>,
    /// Updates since the estimate was last re-seeded from the store.
    estimate_staleness: AtomicU64,
    /// Per-clustering-cell EWMA demand rates (the load-signal layer the
    /// cluster tier's weighted placement, hot-cell splitting and fan-out
    /// balancing all consume), plus scatter-slice service counters. Lives
    /// next to the FLAG machinery: FLAG estimates *density*, this tracks
    /// *demand*. Behind a small internal lock (EWMA folds need `&mut`)
    /// so scatter slices of concurrent queries can record cost from
    /// `&self`.
    load: Mutex<LoadTracker>,
}

/// Opens the MOIST tables, creating them only when genuinely missing.
///
/// Schema or decode errors from `open` propagate instead of being masked
/// by a doomed `create` attempt; losing the creation race to a concurrent
/// server (`TableExists`) falls back to re-opening what the winner built.
fn open_or_create_tables(store: &Arc<Bigtable>, cfg: &MoistConfig) -> Result<MoistTables> {
    match MoistTables::open(store) {
        Ok(t) => Ok(t),
        Err(MoistError::Store(BigtableError::UnknownTable(_))) => {
            match MoistTables::create(store, cfg) {
                Ok(t) => Ok(t),
                Err(MoistError::Store(BigtableError::TableExists(_))) => MoistTables::open(store),
                Err(e) => Err(e),
            }
        }
        Err(e) => Err(e),
    }
}

impl MoistServer {
    /// Opens (or on first use creates) the MOIST tables in `store` and
    /// builds a server around them.
    pub fn new(store: &Arc<Bigtable>, cfg: MoistConfig) -> Result<Self> {
        cfg.validate()?;
        let tables = open_or_create_tables(store, &cfg)?;
        // One affiliation row per object ever seen: the store's estimate is
        // the right FLAG seed even when this server joins late.
        let seed = tables.affiliation.approx_row_count();
        let hub = Arc::new(MeterHub::new());
        let session = store.session_with_hub(store.config().cost_profile, Arc::clone(&hub));
        Ok(MoistServer {
            flag: RwLock::new(FlagTuner::new(&cfg)),
            scheduler: ClusterScheduler::new(&cfg),
            hub,
            session,
            archiver: None,
            stats: StatsCells::default(),
            object_estimate: Arc::new(AtomicU64::new(seed)),
            estimate_staleness: AtomicU64::new(0),
            load: Mutex::new(LoadTracker::default()),
            tables,
            cfg,
        })
    }

    /// Opens an ephemeral cost session for one call: charges mirror into
    /// the shared hub and the session's meter is seeded from the hub's
    /// running totals, so single-threaded charge sequences (and every
    /// mid-call `elapsed_us` diff) are bit-identical to one shared clock.
    fn charged_session(&self) -> Session {
        self.session
            .store()
            .session_with_hub(*self.session.profile(), Arc::clone(&self.hub))
    }

    /// Attaches the PPP archiver: every non-shed location write is also
    /// streamed into the aged-data pipeline.
    pub fn with_archiver(mut self, archiver: Arc<PppArchiver>) -> Self {
        self.set_archiver(archiver);
        self
    }

    /// In-place variant of [`with_archiver`](MoistServer::with_archiver)
    /// for servers already behind a lock (the cluster tier attaches the
    /// shared archiver to every live shard this way).
    pub fn set_archiver(&mut self, archiver: Arc<PppArchiver>) {
        self.archiver = Some(archiver);
    }

    /// Replaces the clustering scheduler (a cluster tier hands each shard
    /// its [`ClusterScheduler::for_member`] rendezvous slice of the
    /// clustering level, or [`ClusterScheduler::empty`] for a joiner whose
    /// cells arrive by adoption).
    pub fn with_scheduler(mut self, scheduler: ClusterScheduler) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Shares a cluster-wide object-count estimate: the handed-in counter
    /// absorbs this server's current estimate and replaces it, so all
    /// shards feed FLAG the same `n`.
    pub fn with_shared_estimate(mut self, estimate: Arc<AtomicU64>) -> Self {
        estimate.fetch_max(
            self.object_estimate.load(Ordering::Relaxed),
            Ordering::Relaxed,
        );
        self.object_estimate = estimate;
        self
    }

    /// The server's configuration.
    pub fn config(&self) -> &MoistConfig {
        &self.cfg
    }

    /// The shared tables (e.g. for direct inspection in tests).
    pub fn tables(&self) -> &MoistTables {
        &self.tables
    }

    /// Mutable access to the persistent session (benches reset its clock
    /// through here; resetting a hub-attached session resets the shared
    /// hub too, so the server-wide totals really zero).
    pub fn session_mut(&mut self) -> &mut Session {
        &mut self.session
    }

    /// Virtual microseconds this server has consumed across all its
    /// sessions (the shared hub total).
    pub fn elapsed_us(&self) -> f64 {
        self.hub.elapsed_us()
    }

    /// The shared meter hub (cost accounting for every session this
    /// server opens).
    pub fn meter_hub(&self) -> &Arc<MeterHub> {
        &self.hub
    }

    /// Operation counters.
    pub fn stats(&self) -> ServerStats {
        self.stats.snapshot()
    }

    /// FLAG tuner counters.
    pub fn flag_stats(&self) -> FlagStats {
        self.flag.read().stats()
    }

    /// The clustering scheduler (ownership inspection for cluster tiers).
    pub fn scheduler(&self) -> &ClusterScheduler {
        &self.scheduler
    }

    /// Mutable access to the clustering scheduler — the cluster tier's
    /// handoff hook: on a membership change it
    /// [`release`](ClusterScheduler::release)s migrating cells here on the
    /// old owner and [`adopt`](ClusterScheduler::adopt)s them on the new
    /// one, preserving each cell's deadline phase.
    pub fn scheduler_mut(&mut self) -> &mut ClusterScheduler {
        &mut self.scheduler
    }

    /// The per-clustering-cell EWMA demand rates as of `now` (ascending
    /// cell order) — this server's slice of the load-signal layer.
    pub fn load_rates(&self, now: Timestamp) -> Vec<(u64, CellRates)> {
        self.load.lock().rates(now)
    }

    /// Total `(update rate, query rate)` across this server's tracked
    /// cells at `now`.
    pub fn load_totals(&self, now: Timestamp) -> (f64, f64) {
        self.load.lock().totals(now)
    }

    /// `(count, virtual µs)` of scattered partial scans (region + NN
    /// slices) this server has executed for the cluster tier's fan-out.
    pub fn scatter_slice_stats(&self) -> (u64, f64) {
        self.load.lock().scatter_slice_stats()
    }

    /// Learned per-clustering-cell scan costs (virtual µs per full-cell
    /// scan, ascending cell order), measured from the partial scans this
    /// server executed. The cluster tier merges these across shards at
    /// rebalance to price fan-out slices.
    pub fn cell_scan_costs(&self) -> Vec<(u64, f64)> {
        self.load.lock().cell_scan_costs()
    }

    /// Current object-count estimate feeding FLAG's initial level guess.
    pub fn object_estimate(&self) -> u64 {
        self.object_estimate.load(Ordering::Relaxed)
    }

    /// Re-seeds the object estimate from the store's row count immediately
    /// (also runs lazily every [`ESTIMATE_REFRESH_OPS`] updates).
    ///
    /// `fetch_max`, not `store`: a plain store would erase a registration
    /// another shard counted between our row-count read and the write.
    /// Objects are never deleted, so the estimate only ever needs raising.
    pub fn refresh_object_estimate(&self) -> u64 {
        let n = self.tables.affiliation.approx_row_count();
        self.estimate_staleness.store(0, Ordering::Relaxed);
        self.object_estimate.fetch_max(n, Ordering::Relaxed).max(n)
    }

    /// Applies one update (Algorithm 1), maintaining counters and feeding
    /// the archiver on the non-shed branches.
    pub fn update(&mut self, msg: &UpdateMessage) -> Result<UpdateOutcome> {
        let mut s = self.charged_session();
        let outcome = apply_update(&mut s, &self.tables, &self.cfg, msg)?;
        self.account_update(msg, outcome);
        Ok(outcome)
    }

    /// Applies a whole batch of updates through the amortized path
    /// ([`apply_update_batch`]): one lock acquisition, batched prefetch
    /// reads, and multi-row deferred writes instead of per-message store
    /// round-trips. Per-message accounting (stats, load signal, archiver,
    /// object estimate) is identical to calling
    /// [`update`](MoistServer::update) once per message, so
    /// [`ServerStats::balanced`] and the cluster-tier zero-lost-updates
    /// invariant hold unchanged.
    ///
    /// On error nothing is accounted: the batch is validated up front, so
    /// the only failures are store errors, which the synchronous path
    /// treats as fatal too.
    pub fn update_batch(&mut self, msgs: &[UpdateMessage]) -> Result<Vec<UpdateOutcome>> {
        let mut s = self.charged_session();
        let outcomes = apply_update_batch(&mut s, &self.tables, &self.cfg, msgs)?;
        for (msg, &outcome) in msgs.iter().zip(&outcomes) {
            self.account_update(msg, outcome);
        }
        Ok(outcomes)
    }

    /// The per-update bookkeeping shared by the synchronous and batched
    /// apply paths: outcome counters, the per-cell load signal, lazy
    /// object-estimate refresh, and archiver ingestion for non-shed
    /// branches.
    fn account_update(&self, msg: &UpdateMessage, outcome: UpdateOutcome) {
        self.stats.updates.fetch_add(1, Ordering::Relaxed);
        let cell = self.cfg.space.cell_at(self.cfg.clustering_level, &msg.loc);
        self.load.lock().observe_update(cell.index, msg.ts);
        let stale = self.estimate_staleness.fetch_add(1, Ordering::Relaxed) + 1;
        if stale >= ESTIMATE_REFRESH_OPS {
            self.refresh_object_estimate();
        }
        match outcome {
            UpdateOutcome::Shed => {
                self.stats.shed.fetch_add(1, Ordering::Relaxed);
            }
            UpdateOutcome::LeaderUpdated => {
                self.stats.leader_updates.fetch_add(1, Ordering::Relaxed);
            }
            UpdateOutcome::Registered => {
                self.stats.registered.fetch_add(1, Ordering::Relaxed);
                self.object_estimate.fetch_add(1, Ordering::Relaxed);
            }
            UpdateOutcome::Departed { .. } => {
                self.stats.departures.fetch_add(1, Ordering::Relaxed);
            }
        }
        if outcome != UpdateOutcome::Shed {
            if let Some(archiver) = &self.archiver {
                archiver.ingest(
                    HistoryRecord::new(msg.oid.0, msg.ts.0, msg.loc, msg.vel),
                    msg.ts.0,
                );
            }
        }
    }

    /// k-nearest-neighbour query with FLAG-tuned level.
    pub fn nn(&self, center: Point, k: usize, at: Timestamp) -> Result<(Vec<Neighbor>, NnStats)> {
        // One session threads FLAG's probes and the NN scan, so the
        // charge sequence matches the old shared-session design exactly.
        let mut s = self.charged_session();
        let n = self.object_estimate().max(1);
        let level = self.flag_level_in(&mut s, &center, n, at)?;
        self.nn_with_options_in(&mut s, center, at, &NnOptions::new(k, level))
    }

    /// k-NN at a fixed NN level (the paper's "Search Level 19/20" mode).
    pub fn nn_at_level(
        &self,
        center: Point,
        k: usize,
        at: Timestamp,
        nn_level: u8,
    ) -> Result<(Vec<Neighbor>, NnStats)> {
        self.nn_with_options(center, at, &NnOptions::new(k, nn_level))
    }

    /// NN query with explicit options (range limits, prediction, follower
    /// expansion — see [`NnOptions`]).
    pub fn nn_with_options(
        &self,
        center: Point,
        at: Timestamp,
        opts: &NnOptions,
    ) -> Result<(Vec<Neighbor>, NnStats)> {
        let mut s = self.charged_session();
        self.nn_with_options_in(&mut s, center, at, opts)
    }

    fn nn_with_options_in(
        &self,
        s: &mut Session,
        center: Point,
        at: Timestamp,
        opts: &NnOptions,
    ) -> Result<(Vec<Neighbor>, NnStats)> {
        let out = nn_query(s, &self.tables, &self.cfg, center, at, opts)?;
        self.stats.nn_queries.fetch_add(1, Ordering::Relaxed);
        let cell = self.cfg.space.cell_at(self.cfg.clustering_level, &center);
        self.load.lock().observe_query(cell.index, at);
        Ok(out)
    }

    /// FLAG-tuned NN level for `loc` at `at` (exposed for the Figure 12
    /// benches that compare FLAG against fixed levels).
    pub fn flag_level(&self, loc: &Point, at: Timestamp) -> Result<u8> {
        let mut s = self.charged_session();
        let n = self.object_estimate().max(1);
        self.flag_level_in(&mut s, loc, n, at)
    }

    /// Algorithm 4 under the split tuner lock: cache hits (the common
    /// case) and Algorithm 3's probe loop run under the *read* guard;
    /// the write guard is taken only to install a re-tuned level. Two
    /// racing misses may both recompute — both arrive at the same
    /// answer, and the cache insert is idempotent.
    fn flag_level_in(&self, s: &mut Session, loc: &Point, n: u64, at: Timestamp) -> Result<u8> {
        let index = self.cfg.space.leaf_cell(loc).index;
        let stale_key = match self.flag.read().lookup(index, at) {
            FlagLookup::Hit(level) => return Ok(level),
            FlagLookup::Stale(k) => Some(k),
            FlagLookup::Miss => None,
        };
        let level = self
            .flag
            .read()
            .calculate_best_level(s, &self.tables, &self.cfg, loc, n)?;
        self.flag
            .write()
            .complete_miss(stale_key, &self.cfg, loc, level, at);
        Ok(level)
    }

    /// Predictive k-NN: neighbours ranked by their positions `horizon_secs`
    /// into the future.
    pub fn nn_predictive(
        &self,
        center: Point,
        k: usize,
        at: Timestamp,
        horizon_secs: f64,
        nn_level: u8,
    ) -> Result<(Vec<Neighbor>, NnStats)> {
        let opts = NnOptions {
            predict_secs: horizon_secs,
            ..NnOptions::new(k, nn_level)
        };
        self.nn_with_options(center, at, &opts)
    }

    /// All objects inside a world-coordinate rectangle at `at` ("browse all
    /// running buses near a location", §5).
    pub fn region(
        &self,
        rect: &moist_spatial::Rect,
        at: Timestamp,
        margin: f64,
    ) -> Result<(Vec<Neighbor>, crate::region::RegionStats)> {
        let cell = self
            .cfg
            .space
            .cell_at(self.cfg.clustering_level, &rect.center());
        self.load.lock().observe_query(cell.index, at);
        let mut s = self.charged_session();
        crate::region::region_query(&mut s, &self.tables, &self.cfg, rect, at, true, margin)
    }

    /// Shard-local slice of a scattered region query: scans exactly the
    /// pre-planned leaf `ranges` (no re-planning — the cluster tier planned
    /// once and owner-sliced the ranges) and returns the raw mergeable
    /// partial. Counted as neither a query nor deduped here; the tier's
    /// merge does that exactly once.
    pub fn region_partial(
        &self,
        ranges: &[(u64, u64)],
        rect: &moist_spatial::Rect,
        at: Timestamp,
    ) -> Result<crate::region::RegionPartial> {
        let mut s = self.charged_session();
        let part =
            crate::region::region_partial_scan(&mut s, &self.tables, ranges, rect, at, true)?;
        let mut load = self.load.lock();
        load.note_scatter_slice(part.stats.cost_us);
        // Scan-cost learning: apportion each range's measured cost onto
        // the clustering cells it overlaps (span-proportional within the
        // range), so the tier's next rebalance can price fan-out slices
        // by what scanning these cells actually cost instead of the
        // span×density prior.
        let shift = 2 * (self.cfg.space.leaf_level - self.cfg.clustering_level) as u64;
        let cell_span = (1u64 << shift) as f64;
        for &((start, end), cost_us) in &part.range_costs {
            let total = (end - start) as f64;
            if total <= 0.0 {
                continue;
            }
            let mut lo = start;
            while lo < end {
                let cell = lo >> shift;
                let hi = end.min((cell + 1) << shift);
                let covered = (hi - lo) as f64;
                load.note_cell_scan(cell, covered / cell_span, cost_us * covered / total);
                lo = hi;
            }
        }
        Ok(part)
    }

    /// Counts one served NN query without running one — the cluster tier
    /// calls this on the anchor shard when a *scattered* query completes
    /// from partials alone, so [`ServerStats::nn_queries`] reflects every
    /// client query exactly once regardless of which path served it.
    pub fn note_query_served(&self) {
        self.stats.nn_queries.fetch_add(1, Ordering::Relaxed);
    }

    /// Shard-local slice of a scattered NN query: scans exactly the given
    /// candidate-ring `cells` (no frontier search — the cluster tier chose
    /// them) and returns every candidate they produce. Not counted in
    /// [`ServerStats::nn_queries`]: a scattered query is one client query,
    /// not one per shard — the tier credits it via
    /// [`note_query_served`](MoistServer::note_query_served).
    pub fn nn_partial(
        &self,
        cells: &[moist_spatial::CellId],
        center: Point,
        at: Timestamp,
        opts: &NnOptions,
    ) -> Result<crate::nn::NnPartial> {
        let mut s = self.charged_session();
        let cost0 = s.elapsed_us();
        let part =
            crate::nn::nn_partial_scan(&mut s, &self.tables, &self.cfg, cells, center, at, opts)?;
        self.load.lock().note_scatter_slice(s.elapsed_us() - cost0);
        Ok(part)
    }

    /// Current position of one object: leaders from their latest record,
    /// followers via the school estimate (§3.3.1).
    pub fn position(&self, oid: ObjectId, at: Timestamp) -> Result<Option<Point>> {
        use crate::codec::LfRecord;
        let mut s = self.charged_session();
        match self.tables.lf(&mut s, oid)? {
            None => Ok(None),
            Some(LfRecord::Leader { .. }) => Ok(self
                .tables
                .latest_location(&mut s, oid)?
                .map(|(ts, rec)| rec.loc.advance(rec.vel, at.secs_since(ts)))),
            Some(LfRecord::Follower {
                leader,
                displacement,
                ..
            }) => match self.tables.latest_location(&mut s, leader)? {
                None => Ok(None),
                Some((ts, rec)) => Ok(Some(estimated_location(&rec, ts, displacement, at))),
            },
        }
    }

    /// Runs clustering for every cell due at `now` (lazy clustering).
    pub fn run_due_clustering(&mut self, now: Timestamp) -> Result<ClusterReport> {
        let mut s = self.charged_session();
        let mut total = ClusterReport::default();
        for cell in self.scheduler.due_cells(now) {
            let r = cluster_cell(&mut s, &self.tables, &self.cfg, cell, now)?;
            total.merge_from(&r);
            self.stats.cluster_runs.fetch_add(1, Ordering::Relaxed);
        }
        Ok(total)
    }

    /// Object history from the archiver (in-memory window + disks).
    pub fn history(
        &self,
        oid: ObjectId,
        from: Timestamp,
        to: Timestamp,
    ) -> Option<(Vec<HistoryRecord>, QueryCost)> {
        self.archiver
            .as_ref()
            .map(|a| a.query_object(oid.0, from.0, to.0))
    }

    /// Ages out old location and affiliation records to disk columns.
    pub fn age_data(&mut self, now: Timestamp) -> Result<usize> {
        let cutoff = Timestamp(
            now.0
                .saturating_sub((self.cfg.aging_secs.max(0.0) * 1e6) as u64),
        );
        let a = self.tables.age_locations(cutoff)?;
        let b = self.tables.age_affiliations(cutoff)?;
        Ok(a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moist_archive::PppConfig;
    use moist_spatial::Velocity;

    fn msg(oid: u64, x: f64, y: f64, vx: f64, secs: f64) -> UpdateMessage {
        UpdateMessage {
            oid: ObjectId(oid),
            loc: Point::new(x, y),
            vel: Velocity::new(vx, 0.0),
            ts: Timestamp::from_secs_f64(secs),
        }
    }

    #[test]
    fn end_to_end_update_query_cycle() {
        let store = Bigtable::new();
        let mut server = MoistServer::new(&store, MoistConfig::default()).unwrap();
        for i in 0..20u64 {
            server
                .update(&msg(i, 100.0 + 10.0 * i as f64, 500.0, 1.0, 0.0))
                .unwrap();
        }
        let (nn, stats) = server
            .nn(Point::new(100.0, 500.0), 5, Timestamp::ZERO)
            .unwrap();
        assert_eq!(nn.len(), 5);
        assert_eq!(nn[0].oid, ObjectId(0));
        assert!(stats.cost_us > 0.0, "queries must cost virtual time");
        assert_eq!(server.stats().updates, 20);
        assert_eq!(server.stats().registered, 20);
        assert!(server.elapsed_us() > 0.0);
    }

    #[test]
    fn two_servers_share_one_store() {
        let store = Bigtable::new();
        let cfg = MoistConfig::default();
        let mut a = MoistServer::new(&store, cfg).unwrap();
        let b = MoistServer::new(&store, cfg).unwrap();
        a.update(&msg(1, 100.0, 100.0, 1.0, 0.0)).unwrap();
        // Server b sees server a's object.
        let pos = b.position(ObjectId(1), Timestamp::ZERO).unwrap().unwrap();
        assert_eq!(pos, Point::new(100.0, 100.0));
        let (nn, _) = b.nn(Point::new(100.0, 100.0), 1, Timestamp::ZERO).unwrap();
        assert_eq!(nn[0].oid, ObjectId(1));
    }

    #[test]
    fn late_joining_server_seeds_object_estimate_from_store() {
        let store = Bigtable::new();
        let cfg = MoistConfig::default();
        let mut a = MoistServer::new(&store, cfg).unwrap();
        for i in 0..50u64 {
            a.update(&msg(i, 100.0 + i as f64, 500.0, 1.0, 0.0))
                .unwrap();
        }
        assert_eq!(a.object_estimate(), 50);
        // A server joining the populated store must not start from 0.
        let b = MoistServer::new(&store, cfg).unwrap();
        assert_eq!(b.object_estimate(), 50);
        // Registrations seen elsewhere surface on refresh.
        a.update(&msg(99, 900.0, 900.0, 1.0, 0.0)).unwrap();
        assert_eq!(b.refresh_object_estimate(), 51);
        // A shared counter keeps shards in sync without refreshes.
        let shared = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let mut c = MoistServer::new(&store, cfg)
            .unwrap()
            .with_shared_estimate(Arc::clone(&shared));
        let d = MoistServer::new(&store, cfg)
            .unwrap()
            .with_shared_estimate(Arc::clone(&shared));
        c.update(&msg(100, 50.0, 50.0, 1.0, 0.0)).unwrap();
        assert_eq!(d.object_estimate(), 52);
    }

    #[test]
    fn new_creates_missing_tables_but_propagates_partial_schemas() {
        use moist_bigtable::{ColumnFamily, TableSchema};
        // Fresh store: tables are created.
        let store = Bigtable::new();
        assert!(MoistServer::new(&store, MoistConfig::default()).is_ok());
        // Existing tables: opened, not clobbered.
        assert!(MoistServer::new(&store, MoistConfig::default()).is_ok());
        // A store with only *some* MOIST tables is corrupt: `new` must
        // surface an error instead of silently falling back to `create`
        // (which would mask the real problem behind `TableExists`).
        let partial = Bigtable::new();
        partial
            .create_table(
                TableSchema::new(
                    crate::config::table_names::LOCATION,
                    vec![ColumnFamily::in_memory("wrong", 1)],
                )
                .unwrap(),
            )
            .unwrap();
        let err = match MoistServer::new(&partial, MoistConfig::default()) {
            Ok(_) => panic!("partial table set must not open cleanly"),
            Err(e) => e,
        };
        assert!(
            matches!(err, MoistError::Store(_)),
            "partial schema must propagate, got {err:?}"
        );
    }

    #[test]
    fn position_extrapolates_leaders_and_estimates_followers() {
        let store = Bigtable::new();
        let mut server = MoistServer::new(&store, MoistConfig::default()).unwrap();
        server.update(&msg(1, 100.0, 100.0, 2.0, 0.0)).unwrap();
        // Leader extrapolated 5 s forward at vx=2: x = 110.
        let p = server
            .position(ObjectId(1), Timestamp::from_secs(5))
            .unwrap()
            .unwrap();
        assert!((p.x - 110.0).abs() < 1e-9);
        // Manually affiliate a follower and check its estimate.
        use crate::codec::LfRecord;
        use moist_spatial::Displacement;
        let t = server.tables().clone();
        let d = Displacement::new(0.0, 7.0);
        t.set_lf(
            server.session_mut(),
            ObjectId(2),
            &LfRecord::Follower {
                leader: ObjectId(1),
                displacement: d,
                since_us: 0,
            },
            Timestamp::ZERO,
        )
        .unwrap();
        let p = server
            .position(ObjectId(2), Timestamp::from_secs(5))
            .unwrap()
            .unwrap();
        assert!((p.x - 110.0).abs() < 1e-9 && (p.y - 107.0).abs() < 1e-9);
        assert!(server
            .position(ObjectId(99), Timestamp::ZERO)
            .unwrap()
            .is_none());
    }

    #[test]
    fn archiver_receives_leader_records_and_serves_history() {
        let store = Bigtable::new();
        let cfg = MoistConfig::default();
        let archiver = Arc::new(PppArchiver::new(cfg.space, PppConfig::default()));
        let mut server = MoistServer::new(&store, cfg)
            .unwrap()
            .with_archiver(Arc::clone(&archiver));
        for t in 0..10u64 {
            server
                .update(&msg(1, 100.0 + t as f64, 100.0, 1.0, t as f64))
                .unwrap();
        }
        archiver.flush_all();
        let (hist, _) = server
            .history(ObjectId(1), Timestamp::ZERO, Timestamp::from_secs(100))
            .unwrap();
        assert_eq!(hist.len(), 10);
    }

    #[test]
    fn clustering_runs_on_schedule_and_reduces_leaders() {
        let store = Bigtable::new();
        let cfg = MoistConfig {
            clustering_level: 2,
            cluster_interval_secs: 10.0,
            ..MoistConfig::default()
        };
        let mut server = MoistServer::new(&store, cfg).unwrap();
        for i in 0..10u64 {
            server
                .update(&msg(i, 500.0 + i as f64, 500.0, 1.0, 0.0))
                .unwrap();
        }
        // Not yet due.
        let r = server.run_due_clustering(Timestamp::from_secs(1)).unwrap();
        assert_eq!(r.pre_leaders, 0);
        // After the interval every cell has fired at least once.
        let r = server.run_due_clustering(Timestamp::from_secs(25)).unwrap();
        assert!(r.merged > 0, "identical-velocity leaders must merge");
        assert!(server.stats().cluster_runs > 0);
    }

    #[test]
    fn shed_ratio_reflects_schooling() {
        let store = Bigtable::new();
        let cfg = MoistConfig {
            epsilon: 50.0,
            clustering_level: 2,
            ..MoistConfig::default()
        };
        let mut server = MoistServer::new(&store, cfg).unwrap();
        // Two co-moving objects.
        server.update(&msg(1, 100.0, 100.0, 1.0, 0.0)).unwrap();
        server.update(&msg(2, 101.0, 100.0, 1.0, 0.0)).unwrap();
        server.run_due_clustering(Timestamp::from_secs(30)).unwrap();
        // Subsequent follower updates along the shared trajectory are shed.
        for t in 1..=10u64 {
            let x = 101.0 + t as f64;
            server.update(&msg(2, x, 100.0, 1.0, t as f64)).unwrap();
        }
        assert!(server.stats().shed >= 9, "stats: {:?}", server.stats());
        assert!(server.stats().shed_ratio() > 0.7);
    }

    #[test]
    fn update_batch_accounts_exactly_like_the_synchronous_path() {
        let store_a = Bigtable::new();
        let store_b = Bigtable::new();
        let cfg = MoistConfig {
            epsilon: 50.0,
            clustering_level: 2,
            ..MoistConfig::default()
        };
        let mut sync_srv = MoistServer::new(&store_a, cfg).unwrap();
        let mut batch_srv = MoistServer::new(&store_b, cfg).unwrap();
        // Seed a school on both, then run one clustering pass so follower
        // traffic really sheds.
        for srv in [&mut sync_srv, &mut batch_srv] {
            srv.update(&msg(1, 100.0, 100.0, 1.0, 0.0)).unwrap();
            srv.update(&msg(2, 101.0, 100.0, 1.0, 0.0)).unwrap();
            srv.run_due_clustering(Timestamp::from_secs(30)).unwrap();
        }
        let batch: Vec<UpdateMessage> = (1..=8u64)
            .map(|t| msg(2, 101.0 + t as f64, 100.0, 1.0, 30.0 + t as f64))
            .chain((0..4u64).map(|i| msg(10 + i, 700.0 + i as f64, 700.0, 1.0, 31.0)))
            .collect();
        let sync_out: Vec<UpdateOutcome> =
            batch.iter().map(|m| sync_srv.update(m).unwrap()).collect();
        let batch_out = batch_srv.update_batch(&batch).unwrap();
        assert_eq!(sync_out, batch_out);
        assert_eq!(sync_srv.stats(), batch_srv.stats());
        assert!(batch_srv.stats().balanced());
        assert_eq!(batch_srv.stats().updates, 2 + batch.len() as u64);
        assert!(batch_srv.stats().shed >= 7, "{:?}", batch_srv.stats());
        // The batched path must be measurably cheaper in virtual time
        // than replaying the same messages synchronously — that is its
        // entire reason to exist.
        assert!(
            batch_srv.elapsed_us() < sync_srv.elapsed_us(),
            "batched {} µs must beat sync {} µs",
            batch_srv.elapsed_us(),
            sync_srv.elapsed_us()
        );
    }

    #[test]
    fn age_data_moves_cold_records() {
        let store = Bigtable::new();
        let cfg = MoistConfig {
            aging_secs: 10.0,
            ..MoistConfig::default()
        };
        let mut server = MoistServer::new(&store, cfg).unwrap();
        server.update(&msg(1, 100.0, 100.0, 1.0, 0.0)).unwrap();
        server.update(&msg(1, 110.0, 100.0, 1.0, 5.0)).unwrap();
        server.update(&msg(1, 120.0, 100.0, 1.0, 100.0)).unwrap();
        let moved = server.age_data(Timestamp::from_secs(100)).unwrap();
        assert!(moved >= 2, "old records age to disk, got {moved}");
        // The hot path still works.
        let p = server
            .position(ObjectId(1), Timestamp::from_secs(100))
            .unwrap()
            .unwrap();
        assert_eq!(p.x, 120.0);
    }
}
