//! The MOIST front-end server.
//!
//! A [`MoistServer`] is one of the paper's front-end machines: it owns a
//! cost-charged store session, applies updates (Algorithm 1), answers NN
//! queries (Algorithm 2 + FLAG), runs lazy clustering on its schedule, and
//! streams leaders' location records into the PPP archiver. Several servers
//! share one `Arc<Bigtable>` exactly like the paper's 5- and 10-server
//! deployments share one BigTable (§4.3.3).

use crate::cluster::{cluster_cell, ClusterReport, ClusterScheduler};
use crate::config::MoistConfig;
use crate::error::Result;
use crate::flag::{FlagStats, FlagTuner};
use crate::ids::ObjectId;
use crate::nn::{nn_query, Neighbor, NnOptions, NnStats};
use crate::school::estimated_location;
use crate::tables::MoistTables;
use crate::update::{apply_update, UpdateMessage, UpdateOutcome};
use moist_archive::{HistoryRecord, PppArchiver, QueryCost};
use moist_bigtable::{Bigtable, Session, Timestamp};
use moist_spatial::Point;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Per-server operation counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ServerStats {
    /// Updates received.
    pub updates: u64,
    /// Updates shed by schooling (no store writes).
    pub shed: u64,
    /// Leader-branch updates.
    pub leader_updates: u64,
    /// First-sight registrations.
    pub registered: u64,
    /// School departures.
    pub departures: u64,
    /// NN queries served.
    pub nn_queries: u64,
    /// Clustering runs executed.
    pub cluster_runs: u64,
}

impl ServerStats {
    /// Fraction of updates shed (`0.0` when no updates were seen).
    pub fn shed_ratio(&self) -> f64 {
        if self.updates == 0 {
            0.0
        } else {
            self.shed as f64 / self.updates as f64
        }
    }
}

/// One MOIST front-end server.
pub struct MoistServer {
    cfg: MoistConfig,
    tables: MoistTables,
    session: Session,
    flag: FlagTuner,
    scheduler: ClusterScheduler,
    archiver: Option<Arc<PppArchiver>>,
    stats: ServerStats,
    /// Object-count estimate for FLAG's initial guess, refreshed lazily.
    object_estimate: u64,
}

impl MoistServer {
    /// Opens (or on first use creates) the MOIST tables in `store` and
    /// builds a server around them.
    pub fn new(store: &Arc<Bigtable>, cfg: MoistConfig) -> Result<Self> {
        cfg.validate()?;
        let tables = match MoistTables::open(store) {
            Ok(t) => t,
            Err(_) => MoistTables::create(store, &cfg)?,
        };
        Ok(MoistServer {
            flag: FlagTuner::new(&cfg),
            scheduler: ClusterScheduler::new(&cfg),
            session: store.session(),
            archiver: None,
            stats: ServerStats::default(),
            object_estimate: 0,
            tables,
            cfg,
        })
    }

    /// Attaches the PPP archiver: every non-shed location write is also
    /// streamed into the aged-data pipeline.
    pub fn with_archiver(mut self, archiver: Arc<PppArchiver>) -> Self {
        self.archiver = Some(archiver);
        self
    }

    /// The server's configuration.
    pub fn config(&self) -> &MoistConfig {
        &self.cfg
    }

    /// The shared tables (e.g. for direct inspection in tests).
    pub fn tables(&self) -> &MoistTables {
        &self.tables
    }

    /// Mutable access to the underlying session (benches reset its clock).
    pub fn session_mut(&mut self) -> &mut Session {
        &mut self.session
    }

    /// Virtual microseconds this server has consumed.
    pub fn elapsed_us(&self) -> f64 {
        self.session.elapsed_us()
    }

    /// Operation counters.
    pub fn stats(&self) -> ServerStats {
        self.stats
    }

    /// FLAG tuner counters.
    pub fn flag_stats(&self) -> FlagStats {
        self.flag.stats()
    }

    /// Applies one update (Algorithm 1), maintaining counters and feeding
    /// the archiver on the non-shed branches.
    pub fn update(&mut self, msg: &UpdateMessage) -> Result<UpdateOutcome> {
        let outcome = apply_update(&mut self.session, &self.tables, &self.cfg, msg)?;
        self.stats.updates += 1;
        match outcome {
            UpdateOutcome::Shed => self.stats.shed += 1,
            UpdateOutcome::LeaderUpdated => self.stats.leader_updates += 1,
            UpdateOutcome::Registered => {
                self.stats.registered += 1;
                self.object_estimate += 1;
            }
            UpdateOutcome::Departed { .. } => self.stats.departures += 1,
        }
        if outcome != UpdateOutcome::Shed {
            if let Some(archiver) = &self.archiver {
                archiver.ingest(
                    HistoryRecord::new(msg.oid.0, msg.ts.0, msg.loc, msg.vel),
                    msg.ts.0,
                );
            }
        }
        Ok(outcome)
    }

    /// k-nearest-neighbour query with FLAG-tuned level.
    pub fn nn(
        &mut self,
        center: Point,
        k: usize,
        at: Timestamp,
    ) -> Result<(Vec<Neighbor>, NnStats)> {
        let n = self.object_estimate.max(1);
        let level =
            self.flag
                .best_level(&mut self.session, &self.tables, &self.cfg, &center, n, at)?;
        self.nn_at_level(center, k, at, level)
    }

    /// k-NN at a fixed NN level (the paper's "Search Level 19/20" mode).
    pub fn nn_at_level(
        &mut self,
        center: Point,
        k: usize,
        at: Timestamp,
        nn_level: u8,
    ) -> Result<(Vec<Neighbor>, NnStats)> {
        self.nn_with_options(center, at, &NnOptions::new(k, nn_level))
    }

    /// NN query with explicit options (range limits, prediction, follower
    /// expansion — see [`NnOptions`]).
    pub fn nn_with_options(
        &mut self,
        center: Point,
        at: Timestamp,
        opts: &NnOptions,
    ) -> Result<(Vec<Neighbor>, NnStats)> {
        let out = nn_query(&mut self.session, &self.tables, &self.cfg, center, at, opts)?;
        self.stats.nn_queries += 1;
        Ok(out)
    }

    /// FLAG-tuned NN level for `loc` at `at` (exposed for the Figure 12
    /// benches that compare FLAG against fixed levels).
    pub fn flag_level(&mut self, loc: &Point, at: Timestamp) -> Result<u8> {
        let n = self.object_estimate.max(1);
        self.flag
            .best_level(&mut self.session, &self.tables, &self.cfg, loc, n, at)
    }

    /// Predictive k-NN: neighbours ranked by their positions `horizon_secs`
    /// into the future.
    pub fn nn_predictive(
        &mut self,
        center: Point,
        k: usize,
        at: Timestamp,
        horizon_secs: f64,
        nn_level: u8,
    ) -> Result<(Vec<Neighbor>, NnStats)> {
        let opts = NnOptions {
            predict_secs: horizon_secs,
            ..NnOptions::new(k, nn_level)
        };
        self.nn_with_options(center, at, &opts)
    }

    /// All objects inside a world-coordinate rectangle at `at` ("browse all
    /// running buses near a location", §5).
    pub fn region(
        &mut self,
        rect: &moist_spatial::Rect,
        at: Timestamp,
        margin: f64,
    ) -> Result<(Vec<Neighbor>, crate::region::RegionStats)> {
        crate::region::region_query(
            &mut self.session,
            &self.tables,
            &self.cfg,
            rect,
            at,
            true,
            margin,
        )
    }

    /// Current position of one object: leaders from their latest record,
    /// followers via the school estimate (§3.3.1).
    pub fn position(&mut self, oid: ObjectId, at: Timestamp) -> Result<Option<Point>> {
        use crate::codec::LfRecord;
        match self.tables.lf(&mut self.session, oid)? {
            None => Ok(None),
            Some(LfRecord::Leader { .. }) => Ok(self
                .tables
                .latest_location(&mut self.session, oid)?
                .map(|(ts, rec)| rec.loc.advance(rec.vel, at.secs_since(ts)))),
            Some(LfRecord::Follower {
                leader,
                displacement,
                ..
            }) => match self.tables.latest_location(&mut self.session, leader)? {
                None => Ok(None),
                Some((ts, rec)) => Ok(Some(estimated_location(&rec, ts, displacement, at))),
            },
        }
    }

    /// Runs clustering for every cell due at `now` (lazy clustering).
    pub fn run_due_clustering(&mut self, now: Timestamp) -> Result<ClusterReport> {
        let mut total = ClusterReport::default();
        for cell in self.scheduler.due_cells(now) {
            let r = cluster_cell(&mut self.session, &self.tables, &self.cfg, cell, now)?;
            total.merge_from(&r);
            self.stats.cluster_runs += 1;
        }
        Ok(total)
    }

    /// Object history from the archiver (in-memory window + disks).
    pub fn history(
        &self,
        oid: ObjectId,
        from: Timestamp,
        to: Timestamp,
    ) -> Option<(Vec<HistoryRecord>, QueryCost)> {
        self.archiver
            .as_ref()
            .map(|a| a.query_object(oid.0, from.0, to.0))
    }

    /// Ages out old location and affiliation records to disk columns.
    pub fn age_data(&mut self, now: Timestamp) -> Result<usize> {
        let cutoff = Timestamp(
            now.0
                .saturating_sub((self.cfg.aging_secs.max(0.0) * 1e6) as u64),
        );
        let a = self.tables.age_locations(cutoff)?;
        let b = self.tables.age_affiliations(cutoff)?;
        Ok(a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moist_archive::PppConfig;
    use moist_spatial::Velocity;

    fn msg(oid: u64, x: f64, y: f64, vx: f64, secs: f64) -> UpdateMessage {
        UpdateMessage {
            oid: ObjectId(oid),
            loc: Point::new(x, y),
            vel: Velocity::new(vx, 0.0),
            ts: Timestamp::from_secs_f64(secs),
        }
    }

    #[test]
    fn end_to_end_update_query_cycle() {
        let store = Bigtable::new();
        let mut server = MoistServer::new(&store, MoistConfig::default()).unwrap();
        for i in 0..20u64 {
            server
                .update(&msg(i, 100.0 + 10.0 * i as f64, 500.0, 1.0, 0.0))
                .unwrap();
        }
        let (nn, stats) = server
            .nn(Point::new(100.0, 500.0), 5, Timestamp::ZERO)
            .unwrap();
        assert_eq!(nn.len(), 5);
        assert_eq!(nn[0].oid, ObjectId(0));
        assert!(stats.cost_us > 0.0, "queries must cost virtual time");
        assert_eq!(server.stats().updates, 20);
        assert_eq!(server.stats().registered, 20);
        assert!(server.elapsed_us() > 0.0);
    }

    #[test]
    fn two_servers_share_one_store() {
        let store = Bigtable::new();
        let cfg = MoistConfig::default();
        let mut a = MoistServer::new(&store, cfg).unwrap();
        let mut b = MoistServer::new(&store, cfg).unwrap();
        a.update(&msg(1, 100.0, 100.0, 1.0, 0.0)).unwrap();
        // Server b sees server a's object.
        let pos = b.position(ObjectId(1), Timestamp::ZERO).unwrap().unwrap();
        assert_eq!(pos, Point::new(100.0, 100.0));
        let (nn, _) = b.nn(Point::new(100.0, 100.0), 1, Timestamp::ZERO).unwrap();
        assert_eq!(nn[0].oid, ObjectId(1));
    }

    #[test]
    fn position_extrapolates_leaders_and_estimates_followers() {
        let store = Bigtable::new();
        let mut server = MoistServer::new(&store, MoistConfig::default()).unwrap();
        server.update(&msg(1, 100.0, 100.0, 2.0, 0.0)).unwrap();
        // Leader extrapolated 5 s forward at vx=2: x = 110.
        let p = server
            .position(ObjectId(1), Timestamp::from_secs(5))
            .unwrap()
            .unwrap();
        assert!((p.x - 110.0).abs() < 1e-9);
        // Manually affiliate a follower and check its estimate.
        use crate::codec::LfRecord;
        use moist_spatial::Displacement;
        let t = server.tables().clone();
        let d = Displacement::new(0.0, 7.0);
        t.set_lf(
            server.session_mut(),
            ObjectId(2),
            &LfRecord::Follower {
                leader: ObjectId(1),
                displacement: d,
                since_us: 0,
            },
            Timestamp::ZERO,
        )
        .unwrap();
        let p = server
            .position(ObjectId(2), Timestamp::from_secs(5))
            .unwrap()
            .unwrap();
        assert!((p.x - 110.0).abs() < 1e-9 && (p.y - 107.0).abs() < 1e-9);
        assert!(server
            .position(ObjectId(99), Timestamp::ZERO)
            .unwrap()
            .is_none());
    }

    #[test]
    fn archiver_receives_leader_records_and_serves_history() {
        let store = Bigtable::new();
        let cfg = MoistConfig::default();
        let archiver = Arc::new(PppArchiver::new(cfg.space, PppConfig::default()));
        let mut server = MoistServer::new(&store, cfg)
            .unwrap()
            .with_archiver(Arc::clone(&archiver));
        for t in 0..10u64 {
            server
                .update(&msg(1, 100.0 + t as f64, 100.0, 1.0, t as f64))
                .unwrap();
        }
        archiver.flush_all();
        let (hist, _) = server
            .history(ObjectId(1), Timestamp::ZERO, Timestamp::from_secs(100))
            .unwrap();
        assert_eq!(hist.len(), 10);
    }

    #[test]
    fn clustering_runs_on_schedule_and_reduces_leaders() {
        let store = Bigtable::new();
        let cfg = MoistConfig {
            clustering_level: 2,
            cluster_interval_secs: 10.0,
            ..MoistConfig::default()
        };
        let mut server = MoistServer::new(&store, cfg).unwrap();
        for i in 0..10u64 {
            server
                .update(&msg(i, 500.0 + i as f64, 500.0, 1.0, 0.0))
                .unwrap();
        }
        // Not yet due.
        let r = server.run_due_clustering(Timestamp::from_secs(1)).unwrap();
        assert_eq!(r.pre_leaders, 0);
        // After the interval every cell has fired at least once.
        let r = server.run_due_clustering(Timestamp::from_secs(25)).unwrap();
        assert!(r.merged > 0, "identical-velocity leaders must merge");
        assert!(server.stats().cluster_runs > 0);
    }

    #[test]
    fn shed_ratio_reflects_schooling() {
        let store = Bigtable::new();
        let cfg = MoistConfig {
            epsilon: 50.0,
            clustering_level: 2,
            ..MoistConfig::default()
        };
        let mut server = MoistServer::new(&store, cfg).unwrap();
        // Two co-moving objects.
        server.update(&msg(1, 100.0, 100.0, 1.0, 0.0)).unwrap();
        server.update(&msg(2, 101.0, 100.0, 1.0, 0.0)).unwrap();
        server.run_due_clustering(Timestamp::from_secs(30)).unwrap();
        // Subsequent follower updates along the shared trajectory are shed.
        for t in 1..=10u64 {
            let x = 101.0 + t as f64;
            server.update(&msg(2, x, 100.0, 1.0, t as f64)).unwrap();
        }
        assert!(server.stats().shed >= 9, "stats: {:?}", server.stats());
        assert!(server.stats().shed_ratio() > 0.7);
    }

    #[test]
    fn age_data_moves_cold_records() {
        let store = Bigtable::new();
        let cfg = MoistConfig {
            aging_secs: 10.0,
            ..MoistConfig::default()
        };
        let mut server = MoistServer::new(&store, cfg).unwrap();
        server.update(&msg(1, 100.0, 100.0, 1.0, 0.0)).unwrap();
        server.update(&msg(1, 110.0, 100.0, 1.0, 5.0)).unwrap();
        server.update(&msg(1, 120.0, 100.0, 1.0, 100.0)).unwrap();
        let moved = server.age_data(Timestamp::from_secs(100)).unwrap();
        assert!(moved >= 2, "old records age to disk, got {moved}");
        // The hot path still works.
        let p = server
            .position(ObjectId(1), Timestamp::from_secs(100))
            .unwrap()
            .unwrap();
        assert_eq!(p.x, 120.0);
    }
}
