//! Binary encodings for values stored in the three MOIST tables.
//!
//! All encodings are fixed-width little-endian so the cost model charges
//! realistic byte counts and decoding never allocates.

use crate::error::{MoistError, Result};
use crate::ids::ObjectId;
use moist_spatial::{Displacement, Point, Velocity};

/// A stored location record: position + velocity + the leaf spatial index
/// the object was filed under when the record was written.
///
/// Keeping the leaf index in the record lets a leader update delete its old
/// Spatial Index Table row without an extra read (§3.3.1, Algorithm 1 l.3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LocationRecord {
    /// World-coordinate position.
    pub loc: Point,
    /// Velocity in world units per second.
    pub vel: Velocity,
    /// Leaf cell index in the Spatial Index Table at write time.
    pub leaf_index: u64,
}

/// Encoded size of a [`LocationRecord`].
pub const LOCATION_RECORD_BYTES: usize = 40;

impl LocationRecord {
    /// Encodes to fixed-width bytes.
    pub fn encode(&self) -> [u8; LOCATION_RECORD_BYTES] {
        let mut b = [0u8; LOCATION_RECORD_BYTES];
        b[0..8].copy_from_slice(&self.loc.x.to_le_bytes());
        b[8..16].copy_from_slice(&self.loc.y.to_le_bytes());
        b[16..24].copy_from_slice(&self.vel.vx.to_le_bytes());
        b[24..32].copy_from_slice(&self.vel.vy.to_le_bytes());
        b[32..40].copy_from_slice(&self.leaf_index.to_le_bytes());
        b
    }

    /// Decodes bytes written by [`LocationRecord::encode`].
    pub fn decode(buf: &[u8]) -> Result<LocationRecord> {
        if buf.len() < LOCATION_RECORD_BYTES {
            return Err(MoistError::Codec("location record too short"));
        }
        let f = |r: std::ops::Range<usize>| f64::from_le_bytes(buf[r].try_into().unwrap());
        Ok(LocationRecord {
            loc: Point::new(f(0..8), f(8..16)),
            vel: Velocity::new(f(16..24), f(24..32)),
            leaf_index: u64::from_le_bytes(buf[32..40].try_into().unwrap()),
        })
    }
}

/// The L/F record of the Affiliation Table (§3.1.1): every object is either
/// a leader (with the time it was chosen) or a follower (with its leader and
/// the displacement `leader → follower`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LfRecord {
    /// The object leads an object school.
    Leader {
        /// Microsecond timestamp when the object became a leader.
        since_us: u64,
        /// Leaf spatial index this leader currently occupies, so the next
        /// update can delete the old Spatial Index Table row without an
        /// extra read (Algorithm 1, line 3).
        last_leaf: u64,
    },
    /// The object follows `leader` at a fixed displacement.
    Follower {
        /// The school's leader.
        leader: ObjectId,
        /// Displacement from the leader to this object at affiliation time.
        displacement: Displacement,
        /// Microsecond timestamp of the last renewal.
        since_us: u64,
    },
}

/// Maximum encoded size of an [`LfRecord`].
pub const LF_RECORD_BYTES: usize = 33;

impl LfRecord {
    /// Whether this is a leader record.
    pub fn is_leader(&self) -> bool {
        matches!(self, LfRecord::Leader { .. })
    }

    /// Encodes to tagged bytes.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            LfRecord::Leader {
                since_us,
                last_leaf,
            } => {
                let mut b = Vec::with_capacity(17);
                b.push(0u8);
                b.extend_from_slice(&since_us.to_le_bytes());
                b.extend_from_slice(&last_leaf.to_le_bytes());
                b
            }
            LfRecord::Follower {
                leader,
                displacement,
                since_us,
            } => {
                let mut b = Vec::with_capacity(LF_RECORD_BYTES);
                b.push(1u8);
                b.extend_from_slice(&leader.0.to_le_bytes());
                b.extend_from_slice(&displacement.dx.to_le_bytes());
                b.extend_from_slice(&displacement.dy.to_le_bytes());
                b.extend_from_slice(&since_us.to_le_bytes());
                b
            }
        }
    }

    /// Decodes bytes written by [`LfRecord::encode`].
    pub fn decode(buf: &[u8]) -> Result<LfRecord> {
        match buf.first() {
            Some(0) if buf.len() >= 17 => Ok(LfRecord::Leader {
                since_us: u64::from_le_bytes(buf[1..9].try_into().unwrap()),
                last_leaf: u64::from_le_bytes(buf[9..17].try_into().unwrap()),
            }),
            Some(1) if buf.len() >= LF_RECORD_BYTES => {
                let f = |r: std::ops::Range<usize>| f64::from_le_bytes(buf[r].try_into().unwrap());
                Ok(LfRecord::Follower {
                    leader: ObjectId(u64::from_le_bytes(buf[1..9].try_into().unwrap())),
                    displacement: Displacement::new(f(9..17), f(17..25)),
                    since_us: u64::from_le_bytes(buf[25..33].try_into().unwrap()),
                })
            }
            _ => Err(MoistError::Codec("malformed L/F record")),
        }
    }
}

/// One Follower-Info entry value: the displacement `leader → follower`
/// (the follower's id is the column qualifier).
pub fn encode_displacement(d: Displacement) -> [u8; 16] {
    let mut b = [0u8; 16];
    b[0..8].copy_from_slice(&d.dx.to_le_bytes());
    b[8..16].copy_from_slice(&d.dy.to_le_bytes());
    b
}

/// Decodes a displacement value.
pub fn decode_displacement(buf: &[u8]) -> Result<Displacement> {
    if buf.len() < 16 {
        return Err(MoistError::Codec("displacement too short"));
    }
    Ok(Displacement::new(
        f64::from_le_bytes(buf[0..8].try_into().unwrap()),
        f64::from_le_bytes(buf[8..16].try_into().unwrap()),
    ))
}

/// Qualifier string for a follower column (`fixed-width hex` so columns sort
/// by id).
pub fn follower_qualifier(oid: ObjectId) -> String {
    format!("{:016x}", oid.0)
}

/// Parses a qualifier written by [`follower_qualifier`].
pub fn parse_follower_qualifier(q: &str) -> Result<ObjectId> {
    u64::from_str_radix(q, 16)
        .map(ObjectId)
        .map_err(|_| MoistError::Codec("bad follower qualifier"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn location_record_roundtrip() {
        let r = LocationRecord {
            loc: Point::new(1.5, -2.5),
            vel: Velocity::new(0.25, 0.75),
            leaf_index: 0xABCD,
        };
        assert_eq!(LocationRecord::decode(&r.encode()).unwrap(), r);
        assert!(LocationRecord::decode(&[0u8; 10]).is_err());
    }

    #[test]
    fn lf_record_roundtrip_both_variants() {
        let l = LfRecord::Leader {
            since_us: 42,
            last_leaf: 0xFEED,
        };
        assert_eq!(LfRecord::decode(&l.encode()).unwrap(), l);
        assert!(l.is_leader());
        let f = LfRecord::Follower {
            leader: ObjectId(9),
            displacement: Displacement::new(-1.0, 2.0),
            since_us: 77,
        };
        assert_eq!(LfRecord::decode(&f.encode()).unwrap(), f);
        assert!(!f.is_leader());
        assert!(LfRecord::decode(&[]).is_err());
        assert!(LfRecord::decode(&[2, 0, 0]).is_err());
        assert!(LfRecord::decode(&[1, 0, 0]).is_err(), "truncated follower");
    }

    #[test]
    fn displacement_roundtrip() {
        let d = Displacement::new(3.5, -4.5);
        assert_eq!(decode_displacement(&encode_displacement(d)).unwrap(), d);
        assert!(decode_displacement(&[0u8; 3]).is_err());
    }

    #[test]
    fn follower_qualifiers_sort_by_id() {
        let a = follower_qualifier(ObjectId(9));
        let b = follower_qualifier(ObjectId(300));
        assert!(a < b);
        assert_eq!(parse_follower_qualifier(&a).unwrap(), ObjectId(9));
        assert!(parse_follower_qualifier("zz").is_err());
    }
}
