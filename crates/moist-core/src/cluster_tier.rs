//! The sharded multi-server front-end tier (§4.3.3).
//!
//! The paper's headline numbers are *fleet* numbers: 5 and 10 front-end
//! servers share one BigTable and split the update stream between them.
//! [`MoistCluster`] is that deployment shape: it owns N [`MoistServer`]
//! shards over one shared [`Bigtable`] and routes every operation to a
//! shard by **clustering-cell hash** ([`cell_owner`] over the cell of the
//! operation's location at the configured clustering level).
//!
//! Routing by clustering cell buys two invariants:
//!
//! * **Clustering exclusivity** — each shard's [`ClusterScheduler`] is
//!   [`partitioned`](ClusterScheduler::partitioned) over the same hash, so
//!   every clustering cell is lazily clustered by *exactly one* shard
//!   (naively running `run_due_clustering` on N servers clusters the whole
//!   map N times over).
//! * **School-merge locality** — school merges only ever happen between
//!   leaders of one clustering cell, and all updates for a cell serialize
//!   through its owner shard, so a school is never torn by two shards
//!   rewriting it concurrently.
//!
//! The shards share one cluster-wide object-count estimate (FLAG's `n`),
//! seeded from the store, so a shard that joins an already-populated store
//! guesses sensible NN levels from its first query.
//!
//! Shards are individually locked: concurrent clients contend per shard,
//! not on the whole tier, and operations on different shards proceed in
//! parallel on real OS threads (drive it with
//! `moist_workload::ClientPool`).
//!
//! ```
//! use moist_bigtable::{Bigtable, Timestamp};
//! use moist_core::{MoistCluster, MoistConfig, ObjectId, UpdateMessage};
//! use moist_spatial::{Point, Velocity};
//!
//! let store = Bigtable::new();
//! let cluster = MoistCluster::new(&store, MoistConfig::default(), 4)?;
//! cluster.update(&UpdateMessage {
//!     oid: ObjectId(1),
//!     loc: Point::new(420.0, 500.0),
//!     vel: Velocity::new(1.8, 0.0),
//!     ts: Timestamp::from_secs(10),
//! })?;
//! // Any front-end answers queries over the whole map.
//! let (nn, _) = cluster.nn(Point::new(400.0, 500.0), 1, Timestamp::from_secs(11))?;
//! assert_eq!(nn[0].oid, ObjectId(1));
//! # Ok::<(), moist_core::MoistError>(())
//! ```

use crate::cluster::{cell_owner, ClusterReport, ClusterScheduler};
use crate::config::MoistConfig;
use crate::error::Result;
use crate::ids::ObjectId;
use crate::nn::{Neighbor, NnStats};
use crate::region::RegionStats;
use crate::server::{MoistServer, ServerStats};
use crate::update::{UpdateMessage, UpdateOutcome};
use moist_archive::PppArchiver;
use moist_bigtable::{Bigtable, Timestamp};
use moist_spatial::{CellId, Point, Rect};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A sharded tier of MOIST front-end servers over one shared store.
pub struct MoistCluster {
    cfg: MoistConfig,
    shards: Vec<Mutex<MoistServer>>,
    /// Cluster-wide object-count estimate shared by every shard's FLAG.
    object_estimate: Arc<AtomicU64>,
}

impl MoistCluster {
    /// Opens (or on first use creates) the MOIST tables in `store` and
    /// builds a tier of `shards` front-end servers around them.
    ///
    /// Each shard gets a partitioned clustering schedule and the shared
    /// object-count estimate (seeded from the store's row count, so a tier
    /// over a populated store starts with the right FLAG `n`).
    pub fn new(store: &Arc<Bigtable>, cfg: MoistConfig, shards: usize) -> Result<Self> {
        let shards = shards.max(1);
        let object_estimate = Arc::new(AtomicU64::new(0));
        let shards: Vec<Mutex<MoistServer>> = (0..shards)
            .map(|i| {
                Ok(Mutex::new(
                    MoistServer::new(store, cfg)?
                        .with_scheduler(ClusterScheduler::partitioned(&cfg, i, shards))
                        .with_shared_estimate(Arc::clone(&object_estimate)),
                ))
            })
            .collect::<Result<_>>()?;
        Ok(MoistCluster {
            cfg,
            shards,
            object_estimate,
        })
    }

    /// Attaches one PPP archiver to every shard: all non-shed location
    /// writes stream into the shared aged-data pipeline.
    pub fn with_archiver(self, archiver: Arc<PppArchiver>) -> Self {
        let shards = self
            .shards
            .into_iter()
            .map(|m| Mutex::new(m.into_inner().with_archiver(Arc::clone(&archiver))))
            .collect();
        MoistCluster { shards, ..self }
    }

    /// Number of front-end shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The tier's configuration.
    pub fn config(&self) -> &MoistConfig {
        &self.cfg
    }

    /// Cluster-wide object-count estimate (FLAG's `n`).
    pub fn object_estimate(&self) -> u64 {
        self.object_estimate.load(Ordering::Relaxed)
    }

    /// The shard owning the clustering cell containing `p`.
    pub fn shard_for_point(&self, p: &Point) -> usize {
        let cell = self.cfg.space.cell_at(self.cfg.clustering_level, p);
        cell_owner(cell.index, self.shards.len())
    }

    /// The shard owning clustering cell `cell` (coarser or finer cells are
    /// mapped through their ancestor/descendant at the clustering level).
    pub fn shard_for_cell(&self, cell: CellId) -> usize {
        let index = if cell.level >= self.cfg.clustering_level {
            cell.index >> (2 * (cell.level - self.cfg.clustering_level) as u64)
        } else {
            cell.index << (2 * (self.cfg.clustering_level - cell.level) as u64)
        };
        cell_owner(index, self.shards.len())
    }

    /// The shard answering object-keyed lookups for `oid` (pure load
    /// spreading — any shard could serve them from the shared store).
    pub fn shard_for_object(&self, oid: ObjectId) -> usize {
        cell_owner(oid.0, self.shards.len())
    }

    /// Runs `f` against one shard's server (stats inspection, clock
    /// resets, direct table access in tests).
    pub fn with_shard<R>(&self, shard: usize, f: impl FnOnce(&mut MoistServer) -> R) -> R {
        f(&mut self.shards[shard].lock())
    }

    /// Applies one update on the shard owning the update's clustering cell.
    pub fn update(&self, msg: &UpdateMessage) -> Result<UpdateOutcome> {
        self.shards[self.shard_for_point(&msg.loc)]
            .lock()
            .update(msg)
    }

    /// FLAG-tuned k-nearest-neighbour query, routed by the query point's
    /// clustering cell.
    pub fn nn(&self, center: Point, k: usize, at: Timestamp) -> Result<(Vec<Neighbor>, NnStats)> {
        self.shards[self.shard_for_point(&center)]
            .lock()
            .nn(center, k, at)
    }

    /// k-NN at a fixed search level, routed like [`MoistCluster::nn`].
    pub fn nn_at_level(
        &self,
        center: Point,
        k: usize,
        at: Timestamp,
        nn_level: u8,
    ) -> Result<(Vec<Neighbor>, NnStats)> {
        self.shards[self.shard_for_point(&center)]
            .lock()
            .nn_at_level(center, k, at, nn_level)
    }

    /// Region query routed by the rectangle's centre.
    pub fn region(
        &self,
        rect: &Rect,
        at: Timestamp,
        margin: f64,
    ) -> Result<(Vec<Neighbor>, RegionStats)> {
        self.shards[self.shard_for_point(&rect.center())]
            .lock()
            .region(rect, at, margin)
    }

    /// Current position of one object, routed by object id.
    pub fn position(&self, oid: ObjectId, at: Timestamp) -> Result<Option<Point>> {
        self.shards[self.shard_for_object(oid)]
            .lock()
            .position(oid, at)
    }

    /// Runs lazy clustering on one shard: only the cells that shard owns
    /// and that are due fire, so across shards each cell is clustered by
    /// exactly one server. Workers call this for "their" shard on a tick.
    pub fn run_due_clustering_shard(&self, shard: usize, now: Timestamp) -> Result<ClusterReport> {
        self.shards[shard].lock().run_due_clustering(now)
    }

    /// Runs lazy clustering on every shard in turn (single-driver mode).
    pub fn run_due_clustering(&self, now: Timestamp) -> Result<ClusterReport> {
        let mut total = ClusterReport::default();
        for shard in &self.shards {
            total.merge_from(&shard.lock().run_due_clustering(now)?);
        }
        Ok(total)
    }

    /// Ages out cold records. The aging columns are table-global, so this
    /// runs once (through shard 0), not once per shard.
    pub fn age_data(&self, now: Timestamp) -> Result<usize> {
        self.shards[0].lock().age_data(now)
    }

    /// Aggregate operation counters across all shards.
    pub fn stats(&self) -> ServerStats {
        let mut total = ServerStats::default();
        for shard in &self.shards {
            total.merge_from(&shard.lock().stats());
        }
        total
    }

    /// Per-shard operation counters, in shard order.
    pub fn shard_stats(&self) -> Vec<ServerStats> {
        self.shards.iter().map(|s| s.lock().stats()).collect()
    }

    /// Per-shard virtual elapsed microseconds, in shard order.
    pub fn shard_elapsed_us(&self) -> Vec<f64> {
        self.shards.iter().map(|s| s.lock().elapsed_us()).collect()
    }

    /// Virtual elapsed microseconds of the busiest shard — the tier's
    /// makespan, since shards consume store time in parallel.
    pub fn max_elapsed_us(&self) -> f64 {
        self.shard_elapsed_us().into_iter().fold(0.0, f64::max)
    }

    /// Sum of all shards' virtual elapsed microseconds (total store work).
    pub fn total_elapsed_us(&self) -> f64 {
        self.shard_elapsed_us().into_iter().sum()
    }

    /// Resets every shard's session clock (benches do this after warm-up).
    pub fn reset_clocks(&self) {
        for shard in &self.shards {
            shard.lock().session_mut().reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moist_spatial::{cells_at_level, Velocity};

    fn msg(oid: u64, x: f64, y: f64, vx: f64, secs: f64) -> UpdateMessage {
        UpdateMessage {
            oid: ObjectId(oid),
            loc: Point::new(x, y),
            vel: Velocity::new(vx, 0.0),
            ts: Timestamp::from_secs_f64(secs),
        }
    }

    #[test]
    fn routes_by_clustering_cell_and_serves_cross_shard_queries() {
        let store = Bigtable::new();
        let cfg = MoistConfig::default();
        let cluster = MoistCluster::new(&store, cfg, 4).unwrap();
        // Spread objects over the whole map so several shards see traffic.
        for i in 0..64u64 {
            let x = 15.0 + 970.0 * (i % 8) as f64 / 8.0;
            let y = 15.0 + 970.0 * (i / 8) as f64 / 8.0;
            cluster.update(&msg(i, x, y, 1.0, 0.0)).unwrap();
        }
        let stats = cluster.stats();
        assert_eq!(stats.updates, 64);
        assert_eq!(stats.registered, 64);
        assert_eq!(cluster.object_estimate(), 64);
        let active = cluster
            .shard_stats()
            .iter()
            .filter(|s| s.updates > 0)
            .count();
        assert!(active >= 2, "hash routing must spread load, got {active}");
        // A query lands on one shard but sees every shard's writes.
        let (nn, _) = cluster
            .nn(Point::new(500.0, 500.0), 64, Timestamp::ZERO)
            .unwrap();
        assert_eq!(nn.len(), 64);
        // Object-keyed reads work for every object from any routing.
        for i in [0u64, 31, 63] {
            assert!(cluster
                .position(ObjectId(i), Timestamp::ZERO)
                .unwrap()
                .is_some());
        }
    }

    #[test]
    fn same_cell_updates_always_hit_the_same_shard() {
        let store = Bigtable::new();
        let cfg = MoistConfig::default();
        let cluster = MoistCluster::new(&store, cfg, 5).unwrap();
        // Points in one clustering cell route identically; the routing
        // agrees with scheduler ownership, so the shard applying a cell's
        // updates is also the only one clustering it.
        let p = Point::new(123.0, 456.0);
        let shard = cluster.shard_for_point(&p);
        let cell = cfg.space.cell_at(cfg.clustering_level, &p);
        assert_eq!(cluster.shard_for_cell(cell), shard);
        let leaf = cfg.space.leaf_cell(&p);
        assert_eq!(cluster.shard_for_cell(leaf), shard);
        assert!(cluster.with_shard(shard, |s| s.scheduler().owns(cell.index)));
        for other in 0..cluster.num_shards() {
            if other != shard {
                assert!(!cluster.with_shard(other, |s| s.scheduler().owns(cell.index)));
            }
        }
    }

    #[test]
    fn clustering_partition_covers_level_exactly_once() {
        let store = Bigtable::new();
        let cfg = MoistConfig {
            clustering_level: 3,
            cluster_interval_secs: 10.0,
            ..MoistConfig::default()
        };
        let cluster = MoistCluster::new(&store, cfg, 4).unwrap();
        let owned: usize = (0..cluster.num_shards())
            .map(|i| cluster.with_shard(i, |s| s.scheduler().owned_count()))
            .sum();
        assert_eq!(owned as u64, cells_at_level(cfg.clustering_level));
        // One sweep past every staggered deadline: each cell fires once,
        // on its owner, so total runs equal the cell count exactly.
        let now = Timestamp::from_secs(25);
        for i in 0..cluster.num_shards() {
            cluster.run_due_clustering_shard(i, now).unwrap();
        }
        assert_eq!(
            cluster.stats().cluster_runs,
            cells_at_level(cfg.clustering_level)
        );
    }

    #[test]
    fn schools_form_and_shed_through_the_tier() {
        let store = Bigtable::new();
        let cfg = MoistConfig {
            epsilon: 50.0,
            clustering_level: 2,
            ..MoistConfig::default()
        };
        let cluster = MoistCluster::new(&store, cfg, 3).unwrap();
        // Two co-moving objects in one cell.
        cluster.update(&msg(1, 100.0, 100.0, 1.0, 0.0)).unwrap();
        cluster.update(&msg(2, 101.0, 100.0, 1.0, 0.0)).unwrap();
        cluster
            .run_due_clustering(Timestamp::from_secs(30))
            .unwrap();
        for t in 1..=10u64 {
            let x = 101.0 + t as f64;
            cluster.update(&msg(2, x, 100.0, 1.0, t as f64)).unwrap();
        }
        let stats = cluster.stats();
        assert!(stats.shed >= 9, "stats: {stats:?}");
        assert!(stats.balanced(), "counters must sum: {stats:?}");
    }
}
