//! The sharded multi-server front-end tier (§4.3.3).
//!
//! The paper's headline numbers are *fleet* numbers: 5 and 10 front-end
//! servers share one BigTable and split the update stream between them.
//! [`MoistCluster`] is that deployment shape: it owns N [`MoistServer`]
//! shards over one shared [`Bigtable`] and routes every operation to a
//! shard by **rendezvous hash** ([`crate::cluster::rendezvous_owner`] over the cell of the
//! operation's location at the configured clustering level).
//!
//! Routing by clustering cell buys two invariants:
//!
//! * **Clustering exclusivity** — each shard's [`ClusterScheduler`] owns
//!   exactly the cells it wins under the same hash, so every clustering
//!   cell is lazily clustered by *exactly one* shard (naively running
//!   `run_due_clustering` on N servers clusters the whole map N times
//!   over).
//! * **School-merge locality** — school merges only ever happen between
//!   leaders of one clustering cell, and all updates for a cell serialize
//!   through its owner shard, so a school is never torn by two shards
//!   rewriting it concurrently.
//!
//! ## Elastic membership
//!
//! The fleet can grow and shrink live. Membership is an epoch-stamped,
//! read-mostly snapshot: each operation grabs an `Arc` of the current
//! [`Membership`] (one brief read-lock), routes against it, and keeps the
//! target shard alive through the `Arc` even if the membership changes
//! mid-flight. [`add_shard`] and [`remove_shard`] bump the epoch and swap
//! the snapshot. Updates additionally validate their routing against a
//! membership seqlock after taking the owner's lock and re-route if an
//! epoch bump raced them (see [`update`](MoistCluster::update)), so a
//! write never lands on a migrated cell's old owner — no torn routing,
//! no lost updates; read-only queries route on the snapshot alone.
//!
//! Because ownership is a **rendezvous** (highest-random-weight) hash over
//! the stable shard *ids* — not a modular hash over the shard *count* —
//! a membership change remaps the minimum: a join steals only the ~1/(N+1)
//! of cells the newcomer now wins, a leave reassigns only the departed
//! shard's cells, and every other cell's owner (and therefore its school
//! state's home shard) is untouched. Each migrating cell's clustering
//! deadline is handed over at its current phase
//! ([`ClusterScheduler::release`] → [`ClusterScheduler::adopt`]), so a
//! join causes neither a thundering re-cluster of the stolen cells nor a
//! missed round.
//!
//! The shards share one cluster-wide object-count estimate (FLAG's `n`),
//! seeded from the store, so a shard that joins an already-populated store
//! guesses sensible NN levels from its first query.
//!
//! Shards are individually locked: concurrent clients contend per shard,
//! not on the whole tier, and operations on different shards proceed in
//! parallel on real OS threads (drive it with
//! `moist_workload::ClientPool`).
//!
//! ## Query fan-out (scatter-gather)
//!
//! Updates route to one shard by design — a cell's writes must serialize
//! on its owner. Queries have no such constraint: any shard reads a
//! consistent view of the shared store. [`region`](MoistCluster::region)
//! therefore plans its merged leaf ranges once, slices them by rendezvous
//! owner ([`crate::cluster::slice_ranges_by_owner`] — an exact partition
//! of the plan), scans every slice on a pooled worker
//! ([`crate::query_pool::QueryPool`]) against its owner shard, and merges
//! the partials: hits move (never clone) into one list and each object is
//! deduplicated exactly once at the merge (partials scanned at different
//! instants can double-sight a mover crossing a slice boundary). The
//! client-visible cost is the *slowest* partial, not the sum, because the
//! slices consume store time in parallel. [`nn`](MoistCluster::nn)
//! scatters only when its candidate ring (query cell + edge neighbours at
//! the FLAG level) crosses an ownership boundary, and the merge *replays*
//! the single-shard frontier search over the scanned candidates
//! ([`crate::nn::merge_ring_partials`]) — if the replayed frontier would
//! escape the ring, the query falls back to the real single-shard search,
//! so fan-out never trades exactness for speed. An epoch bump mid-scatter re-routes
//! only the migrated slices: each worker re-validates its slice against
//! the freshest membership snapshot and hands back the pieces whose cells
//! moved, which the gather loop re-slices and re-dispatches.
//!
//! ## Load-aware placement
//!
//! Placement is not static: every shard tracks per-clustering-cell EWMA
//! demand rates ([`crate::load::LoadTracker`], fed by the update/query
//! timestamps, so the signal is deterministic in virtual time), and
//! [`rebalance`](MoistCluster::rebalance) folds the measurements into the
//! membership snapshot through the same epoch/handover machinery joins
//! and leaves use:
//!
//! * **weighted rendezvous** — per-shard weights derived from measured
//!   utilization; a weight change remaps only keys toward/away from the
//!   re-weighted shard ([`crate::cluster::weighted_rendezvous_owner`]);
//! * **hot-cell splitting** — cells hot enough to pin a shard on their
//!   own split ownership one level finer
//!   ([`crate::cluster::SplitTable`], consulted before rendezvous), each
//!   child routed, scheduled and clustered independently at its parent's
//!   deadline phase;
//! * **fan-out slice balancing** — scattered region plans subdivide
//!   their costliest owner slices across idle shards
//!   ([`crate::region::balance_slices`], priced by the measured per-cell
//!   rates), so the client-visible latency tracks the mean slice, not
//!   the largest ownership share.
//!
//! [`cluster_stats`](MoistCluster::cluster_stats) exposes the whole
//! signal chain (per-shard utilization/rates/weights, primary/follower
//! key counts, scatter-slice timings, split table, migration/promotion
//! counters) for operators and benches.
//!
//! ## Replicated ownership
//!
//! With [`with_replicas`](MoistCluster::with_replicas)`(k)`, ownership of
//! each routing key widens from the rendezvous *winner* to the rendezvous
//! **top-k** ([`crate::cluster::rendezvous_owners`]): rank 0 is the
//! **primary** — the only shard that takes the key's updates and clusters
//! it, so every exclusivity invariant above is unchanged — and ranks 1+
//! are **followers**. Followers hold no private state (the store is
//! shared, so they mirror the key's schools and spatial rows for free);
//! what they add is a wider *read* path: NN anchors, fixed-level NN,
//! anchored regions and object lookups route to the least-loaded live
//! replica of their key (by virtual elapsed store time, primary on ties),
//! and scattered NN rings / region slices spread across follower sets the
//! same way. Because a member's rendezvous score is independent of the
//! other members, the top-k list is **prefix-stable**: when a primary
//! leaves, each of its keys' rank-1 follower — already warm on that key's
//! reads — is exactly the new winner, and adopts the key's clustering
//! deadline through the ordinary [`migrate_ownership`] handover. Failover
//! is therefore *promotion*, not recovery. `k = 1` (the default)
//! reproduces the single-owner tier bit-identically.
//!
//! [`migrate_ownership`]: MoistCluster::remove_shard
//!
//! ## Pipelined ingestion
//!
//! [`update`](MoistCluster::update) is the synchronous baseline: one
//! message, one owner lock, one store round-trip per write. The pipelined
//! tier ([`crate::ingest`]) buffers submissions in a bounded queue per
//! shard ([`submit`](MoistCluster::submit)), flushes each queue as one
//! [`MoistServer::update_batch`] when it reaches the batch size or its
//! oldest message ages past the flush deadline
//! ([`flush_due`](MoistCluster::flush_due)), and surfaces a full queue as
//! typed backpressure instead of queueing unboundedly. Batched flushes go
//! through [`update_batch`](MoistCluster::update_batch), which re-routes
//! every message under the same membership seqlock the synchronous path
//! uses — grouped by the *current* owner, re-validated after each owner
//! lock — and every epoch bump (join, leave, rebalance) drains the queues
//! right after publishing its snapshot
//! ([`drain_ingest`](MoistCluster::drain_ingest)), so in-flight batches
//! re-route rather than land on a migrated cell's old owner and a killed
//! shard's buffered messages are applied, not lost.
//!
//! [`add_shard`]: MoistCluster::add_shard
//! [`remove_shard`]: MoistCluster::remove_shard
//!
//! ```
//! use moist_bigtable::{Bigtable, Timestamp};
//! use moist_core::{MoistCluster, MoistConfig, ObjectId, UpdateMessage};
//! use moist_spatial::{Point, Velocity};
//!
//! let store = Bigtable::new();
//! let cluster = MoistCluster::builder(&store, MoistConfig::default())
//!     .shards(4)
//!     .build()?;
//! cluster.update(&UpdateMessage {
//!     oid: ObjectId(1),
//!     loc: Point::new(420.0, 500.0),
//!     vel: Velocity::new(1.8, 0.0),
//!     ts: Timestamp::from_secs(10),
//! })?;
//! // Grow the fleet live: only the joiner's rendezvous wins migrate.
//! let id = cluster.add_shard()?;
//! assert_eq!(cluster.num_shards(), 5);
//! // Any front-end answers queries over the whole map.
//! let (nn, _) = cluster.nn(Point::new(400.0, 500.0), 1, Timestamp::from_secs(11))?;
//! assert_eq!(nn[0].oid, ObjectId(1));
//! // And shrink again: the departed shard's cells are re-adopted.
//! cluster.remove_shard(id)?;
//! # Ok::<(), moist_core::MoistError>(())
//! ```

use crate::cluster::{
    slice_ranges_by_placement, slice_ranges_by_replicas, weighted_rendezvous_max,
    weighted_rendezvous_ranked, ClusterReport, ClusterScheduler, ShardWeight, SplitTable,
};
use crate::config::MoistConfig;
use crate::controller::{
    AutoController, ControllerAction, ControllerConfig, ControllerEvent, Plan,
};
use crate::error::{MoistError, Result};
use crate::ids::ObjectId;
use crate::ingest::{
    BackpressurePolicy, EnqueueResult, FlushKind, IngestConfig, IngestQueues, IngestStats,
    SubmitOutcome,
};
use crate::nn::{merge_ring_partials, nn_candidate_ring};
use crate::nn::{Neighbor, NnOptions, NnPartial, NnStats};
use crate::query_pool::QueryPool;
use crate::region::{balance_slices, merge_region_partials, plan_region_ranges};
use crate::region::{RegionPartial, RegionStats};
use crate::server::{MoistServer, ServerStats};
use crate::update::{UpdateMessage, UpdateOutcome};
use moist_archive::PppArchiver;
use moist_bigtable::{Bigtable, RecoveryReport, StoreConfig, Timestamp};
use moist_spatial::{cells_at_level, CellId, Point, Rect};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Scatter rounds after which a region query stops re-validating slice
/// ownership and scans wherever the last slicing routed them. Reads are
/// correct on any shard (the store is shared); the cap only bounds the
/// re-route loop under pathological non-stop churn.
const MAX_REROUTE_ROUNDS: usize = 4;

/// A cell whose merged EWMA demand rate exceeds this multiple of the mean
/// cell rate is hot enough to split one level finer.
const HOT_SPLIT_FACTOR: f64 = 4.0;

/// Upper bound on the split table: splitting is for the handful of
/// business-center cells, not a second level of hashing. The cap stays
/// *re-usable* because rebalance un-splits cells whose demand faded (see
/// [`UNSPLIT_FACTOR`]) — a hot spot that moves across the map recycles
/// table entries instead of exhausting them.
const MAX_SPLIT_CELLS: usize = 16;

/// A split cell whose merged demand rate falls below this multiple of
/// the mean cell rate is reunited (its four children merge back into one
/// routing key). Far below [`HOT_SPLIT_FACTOR`] on purpose: the wide gap
/// is the hysteresis that keeps a cell wobbling around one threshold
/// from splitting and un-splitting every rebalance.
const UNSPLIT_FACTOR: f64 = 1.0;

/// Largest per-rebalance multiplicative weight step (up or down): placement
/// converges over a few rebalances instead of slamming cells around on one
/// noisy measurement.
const REBALANCE_MAX_STEP: f64 = 2.0;

/// Placement-weight clamp: a shard never owns less than ~1/8 or more than
/// ~8× its fair share, however skewed the measurements get.
const MIN_PLACEMENT_WEIGHT: f64 = 0.125;

/// See [`MIN_PLACEMENT_WEIGHT`].
const MAX_PLACEMENT_WEIGHT: f64 = 8.0;

/// Cap on the relative demand density used to price scattered-region
/// slices: above this the update rate says "hot" but (thanks to
/// schooling) not "proportionally more rows to scan".
const MAX_SCAN_DENSITY: f64 = 3.0;

/// What one [`MoistCluster::rebalance`] step changed.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RebalanceReport {
    /// The membership epoch after the step (unchanged if nothing moved).
    pub epoch: u64,
    /// Shards whose placement weight was adjusted.
    pub reweighted: usize,
    /// Clustering cells newly split one level finer.
    pub split_cells: Vec<u64>,
    /// Previously-split cells reunited because their measured demand
    /// faded (freeing split-table capacity for the next hot spot).
    pub unsplit_cells: Vec<u64>,
    /// Routing keys that changed owner (each handed over at its deadline
    /// phase through the scheduler release/adopt path).
    pub migrated_keys: u64,
}

/// One live shard's row in [`ClusterStats`]: the measured signals the
/// load-aware placement runs on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardLoadStats {
    /// Stable shard id.
    pub id: u64,
    /// Current placement weight (relative capacity).
    pub weight: f64,
    /// Virtual µs of store time this shard has consumed.
    pub elapsed_us: f64,
    /// EWMA update arrivals per virtual second across the shard's cells.
    pub update_rate: f64,
    /// EWMA query arrivals per virtual second across the shard's cells.
    pub query_rate: f64,
    /// Routing keys (cells / split children) this shard is **primary**
    /// for: its scheduler owns them, their updates serialize on it, and
    /// it alone clusters them.
    pub primary_keys: usize,
    /// Routing keys this shard **follows** (it is in their replica set at
    /// rank 1+): it mirrors their state through the shared store and
    /// serves their reads when less loaded than the primary. Always 0 at
    /// `replicas == 1`.
    pub follower_keys: usize,
    /// Reads this shard served as a follower.
    pub replica_reads: u64,
    /// Scattered partial scans (region + NN slices) this shard served.
    pub scatter_slices: u64,
    /// Virtual µs spent serving those scattered slices.
    pub scatter_slice_us: f64,
    /// Messages currently buffered in this shard's ingest queue.
    pub queue_depth: usize,
}

/// The tier-level load/placement rollup returned by
/// [`MoistCluster::cluster_stats`].
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterStats {
    /// Current membership epoch.
    pub epoch: u64,
    /// Per-shard signals, in position order.
    pub shards: Vec<ShardLoadStats>,
    /// Clustering cells currently split one level finer.
    pub split_cells: Vec<u64>,
    /// Cells migrated by join/leave epoch bumps.
    pub epoch_migrations: u64,
    /// Keys migrated by rebalance steps (weight shifts + cell splits).
    pub split_migrations: u64,
    /// Configured replication factor (1 = unreplicated single-owner).
    pub replicas: usize,
    /// Routing keys whose follower stepped up to primary on a shard
    /// leave (subset of `epoch_migrations`; 0 at `replicas == 1`).
    pub promotions: u64,
    /// Reads served by a follower instead of the primary, tier-wide.
    pub replica_reads: u64,
    /// Ingestion-pipeline counters: queue depths, flush sizes and
    /// latencies, and the backpressure / overload-shed split.
    pub ingest: IngestStats,
    /// Aggregate operation counters (live + retired shards).
    pub ops: ServerStats,
}

impl ClusterStats {
    /// Max-over-mean shard utilization (virtual elapsed time): 1.0 is a
    /// perfectly level fleet; the `fig16_skew` acceptance bar is about
    /// cutting this.
    pub fn utilization_skew(&self) -> f64 {
        if self.shards.is_empty() {
            return 1.0;
        }
        let max = self
            .shards
            .iter()
            .map(|s| s.elapsed_us)
            .fold(0.0f64, f64::max);
        let mean = self.shards.iter().map(|s| s.elapsed_us).sum::<f64>() / self.shards.len() as f64;
        if mean <= 0.0 {
            1.0
        } else {
            max / mean
        }
    }

    /// Total submissions that produced **no** store-applied update:
    /// school sheds ([`ServerStats::shed`] — absorbed by the school
    /// model), pipeline overload sheds (dropped on a full queue under
    /// [`BackpressurePolicy::Shed`](crate::BackpressurePolicy::Shed)) and
    /// backpressure rejections (refused, client retries). The three are
    /// kept as separate counters because they mean different things to a
    /// client-visible QPS derivation — school sheds are *served* updates,
    /// the other two are not — this helper is the denominator-side rollup
    /// the benches share.
    pub fn shed_or_backpressure(&self) -> u64 {
        self.ops.shed + self.ingest.overload_shed + self.ingest.backpressure
    }

    /// True refusals only: pipeline overload sheds plus backpressure
    /// rejections. School sheds are *excluded* — a shed update was served
    /// (absorbed by the school model, the client-visible QPS multiplier),
    /// so it is workload behaving, not capacity failing. This is the
    /// overload signal the [`AutoController`] scales on; counting school
    /// sheds there would read MOIST's headline feature as an emergency.
    pub fn refused(&self) -> u64 {
        self.ingest.overload_shed + self.ingest.backpressure
    }
}

/// One live shard: its stable id plus the server behind a reader-writer
/// lock — queries (`nn*`, `region*`, partials, `position`, stats) take
/// the read guard and overlap freely on one shard; updates, clustering
/// sweeps and scheduler handoff serialize on the write guard.
struct ShardEntry {
    /// Stable shard id — never reused, survives other shards' churn.
    id: u64,
    server: RwLock<MoistServer>,
    /// Reads this shard served as a *follower* (it was in the routing
    /// key's replica set but not its primary).
    replica_reads: AtomicU64,
}

impl ShardEntry {
    fn new(id: u64, server: MoistServer) -> Self {
        ShardEntry {
            id,
            server: RwLock::new(server),
            replica_reads: AtomicU64::new(0),
        }
    }
}

/// An immutable snapshot of the tier's membership at one epoch.
///
/// Operations route against one snapshot end to end; the `Arc`s keep a
/// shard alive for in-flight operations even after it leaves the tier
/// (its writes still land in the shared store, so nothing is lost). The
/// snapshot carries the full **placement** state — per-shard weights and
/// the hot-cell split table — so routing, slicing and scheduling within
/// one epoch always agree.
struct Membership {
    /// Monotonic epoch, bumped by every join/leave/rebalance.
    epoch: u64,
    /// Live shards, sorted by id (positions index this order).
    shards: Vec<Arc<ShardEntry>>,
    /// Placement weights, parallel to `shards` (relative capacity; 1.0
    /// until a [`MoistCluster::rebalance`] derives measured ones).
    weights: Vec<f64>,
    /// Clustering cells whose ownership is split one level finer.
    splits: Arc<SplitTable>,
    /// Replication factor: each routing key's rendezvous top-`replicas`
    /// shards form its replica set — rank 0 is the primary (the only
    /// shard that takes the key's updates and clusters it), ranks 1+ are
    /// followers that mirror state via the shared store and serve reads.
    /// 1 reproduces single-owner routing exactly.
    replicas: usize,
}

impl Membership {
    fn ids(&self) -> Vec<u64> {
        self.shards.iter().map(|e| e.id).collect()
    }

    /// `(id, weight)` pairs in position order — the placement the
    /// weighted rendezvous and the slice balancer consume.
    fn placement(&self) -> Vec<ShardWeight> {
        self.shards
            .iter()
            .zip(&self.weights)
            .map(|(e, &weight)| ShardWeight { id: e.id, weight })
            .collect()
    }

    fn position_of(&self, id: u64) -> Option<usize> {
        self.shards.iter().position(|e| e.id == id)
    }

    /// The entry owning routing key `key` (weighted rendezvous winner).
    ///
    /// Picks the winner directly over the entries — one scan, no id-list
    /// allocation — because this sits on the per-operation hot path; the
    /// selection is the shared [`weighted_rendezvous_max`], so it agrees
    /// with [`crate::cluster::weighted_rendezvous_owner`] (and, at unit
    /// weights, [`crate::cluster::rendezvous_owner`]) by definition.
    fn owner_of(&self, key: u64) -> &Arc<ShardEntry> {
        weighted_rendezvous_max(
            key,
            self.shards.iter().zip(&self.weights),
            |(e, _)| e.id,
            |(_, &w)| w,
        )
        .map(|(e, _)| e)
        .expect("membership is never empty")
    }

    /// The ranked replica set of routing key `key`: the rendezvous
    /// top-`replicas` entries, best first. Index 0 is always exactly
    /// [`owner_of`](Membership::owner_of)'s winner (same comparator, same
    /// weights), so "primary" and "owner" can never disagree; the set
    /// clamps to the live shard count.
    fn owners_of(&self, key: u64) -> Vec<&Arc<ShardEntry>> {
        weighted_rendezvous_ranked(
            key,
            self.shards.iter().zip(&self.weights),
            |(e, _)| e.id,
            |(_, &w)| w,
            self.replicas.clamp(1, self.shards.len()),
        )
        .into_iter()
        .map(|(e, _)| e)
        .collect()
    }

    /// The routing key of the clustering cell containing leaf index
    /// `leaf`: the cell itself, or its child one level finer when the
    /// cell's ownership is split.
    fn route_leaf(&self, leaf: u64, cfg: &MoistConfig) -> u64 {
        self.splits
            .route_leaf(leaf, cfg.clustering_level, cfg.space.leaf_level)
    }

    fn entry(&self, shard: usize) -> Result<&Arc<ShardEntry>> {
        self.shards.get(shard).ok_or_else(|| {
            MoistError::NoSuchShard(format!(
                "position {shard} out of {} live shards (epoch {})",
                self.shards.len(),
                self.epoch
            ))
        })
    }

    fn entry_by_id(&self, id: u64) -> Option<&Arc<ShardEntry>> {
        self.shards.iter().find(|e| e.id == id)
    }
}

/// A set of merged `[start, end)` leaf-index ranges.
type RangeSet = Vec<(u64, u64)>;

/// Bookkeeping for shards that left the tier: folded counters plus the
/// entries that may still be referenced by in-flight operations.
#[derive(Default)]
struct RetiredShards {
    /// Counters of retired shards whose last reference has dropped.
    folded: ServerStats,
    /// Retired entries possibly still held by in-flight snapshots.
    entries: Vec<Arc<ShardEntry>>,
}

impl RetiredShards {
    /// Folds quiescent entries (no outstanding in-flight `Arc`s, so their
    /// counters can no longer move) into the aggregate and drops them.
    fn compact(&mut self) {
        self.entries.retain(|entry| {
            if Arc::strong_count(entry) == 1 {
                self.folded.merge_from(&entry.server.read().stats());
                false
            } else {
                true
            }
        });
    }

    /// Total counters across folded and still-referenced retirees.
    fn stats(&mut self) -> ServerStats {
        self.compact();
        let mut total = self.folded;
        for entry in &self.entries {
            total.merge_from(&entry.server.read().stats());
        }
        total
    }
}

/// A sharded tier of MOIST front-end servers over one shared store, with
/// live shard join/leave (see the module docs for the membership design).
pub struct MoistCluster {
    cfg: MoistConfig,
    store: Arc<Bigtable>,
    /// Read-mostly membership snapshot; swapped whole on epoch bumps.
    /// Behind an `Arc` so scatter workers on the [`QueryPool`] can
    /// re-validate slice ownership against the freshest snapshot.
    membership: Arc<RwLock<Arc<Membership>>>,
    /// Shared worker pool running scattered query slices in parallel.
    query_pool: QueryPool,
    /// Counters of shards that left the tier (their updates — absorbed
    /// while live or in flight — must stay in [`stats`]). A departed
    /// shard's entry lingers only until its last in-flight `Arc` drops,
    /// then folds into the aggregate, so churn does not accumulate dead
    /// servers.
    ///
    /// [`stats`]: MoistCluster::stats
    retired: Mutex<RetiredShards>,
    /// Cluster-wide object-count estimate shared by every shard's FLAG.
    object_estimate: Arc<AtomicU64>,
    /// Archiver handed to every current and future shard.
    archiver: Option<Arc<PppArchiver>>,
    /// Next stable shard id to assign.
    next_shard_id: AtomicU64,
    /// Seqlock guarding the update path against stale routing: odd while
    /// a membership change is migrating cells, bumped to even once the new
    /// snapshot is published. [`update`](MoistCluster::update) re-reads it
    /// after taking the shard lock and re-routes if it moved, so a write
    /// never lands on a cell's *old* owner concurrently with the new
    /// owner clustering that cell.
    version: AtomicU64,
    /// Cells migrated between shards by join/leave epoch bumps.
    epoch_migrations: AtomicU64,
    /// Routing keys whose next-ranked follower stepped up to primary on a
    /// shard leave (replicated mode's instant promotions).
    promotions: AtomicU64,
    /// Reads served by a follower instead of the primary, tier-wide
    /// (monotonic — includes reads served by shards that later retired).
    replica_reads: AtomicU64,
    /// Cell migrations caused by hot-cell splits (children adopted by a
    /// shard other than the parent's old owner) and by rebalance weight
    /// shifts.
    split_migrations: AtomicU64,
    /// Per-shard virtual elapsed µs at the last rebalance — the baseline
    /// the next rebalance diffs against to get utilization *since*.
    rebalance_baseline: Mutex<HashMap<u64, f64>>,
    /// Read-mostly per-clustering-cell demand density (relative rate,
    /// mean ≈ 1), refreshed by [`rebalance`](MoistCluster::rebalance) and
    /// consumed by the region fan-out to price slices — empty until the
    /// first rebalance (every cell then prices by its leaf span alone).
    cell_density: RwLock<Arc<HashMap<u64, f64>>>,
    /// Read-mostly per-clustering-cell *measured* scan price (relative,
    /// average measured cell ≈ 2.0 to match the density prior's scale),
    /// learned from the per-range costs the region fan-out pays and
    /// merged across shards at [`rebalance`](MoistCluster::rebalance).
    /// Cells never scanned are absent and keep pricing by the
    /// span×density prior.
    cell_scan_cost: RwLock<Arc<HashMap<u64, f64>>>,
    /// Ingestion-pipeline knobs (batch size, queue cap, flush deadline,
    /// backpressure policy). Defaulted; tuned via
    /// [`with_ingest`](MoistCluster::with_ingest).
    ingest_cfg: IngestConfig,
    /// The per-shard bounded submission queues plus their counters.
    ingest: IngestQueues,
    /// The elasticity controller, when one was attached via
    /// [`ClusterBuilder::controller`]. Mutexed because ticks arrive from
    /// arbitrary client threads; `try_lock` keeps concurrent tickers
    /// from serializing on it.
    controller: Option<Mutex<AutoController>>,
}

/// The one construction path for [`MoistCluster`]: every knob — fleet
/// size, replication factor, ingest pipeline, elasticity controller,
/// archiver — is set on the builder, and both fresh construction
/// ([`build`](ClusterBuilder::build)) and crash recovery
/// ([`recover`](ClusterBuilder::recover)) honour all of them. The old
/// constructors ([`MoistCluster::new`], [`MoistCluster::recover`],
/// [`with_replicas`](MoistCluster::with_replicas),
/// [`with_ingest`](MoistCluster::with_ingest)) survive as thin wrappers
/// over this builder.
///
/// ```
/// # use moist_core::{MoistCluster, MoistConfig, ControllerConfig, IngestConfig};
/// # use moist_bigtable::Bigtable;
/// # fn main() -> moist_core::Result<()> {
/// let store = Bigtable::new();
/// let cluster = MoistCluster::builder(&store, MoistConfig::default())
///     .shards(10)
///     .replicas(2)
///     .ingest(IngestConfig::default())
///     .controller(ControllerConfig::default())
///     .build()?;
/// assert_eq!(cluster.num_shards(), 10);
/// assert_eq!(cluster.replicas(), 2);
/// # Ok(())
/// # }
/// ```
pub struct ClusterBuilder {
    store: Arc<Bigtable>,
    cfg: MoistConfig,
    shards: usize,
    replicas: usize,
    ingest: Option<IngestConfig>,
    controller: Option<ControllerConfig>,
    archiver: Option<Arc<PppArchiver>>,
}

impl ClusterBuilder {
    /// Fleet size to start with (default 1; clamped to at least 1).
    pub fn shards(mut self, n: usize) -> Self {
        self.shards = n;
        self
    }

    /// Replication factor (default 1 = unreplicated single-owner; see
    /// [`MoistCluster::with_replicas`] for semantics).
    pub fn replicas(mut self, k: usize) -> Self {
        self.replicas = k;
        self
    }

    /// Ingestion-pipeline knobs (default [`IngestConfig::default`]; see
    /// [`MoistCluster::with_ingest`]).
    pub fn ingest(mut self, cfg: IngestConfig) -> Self {
        self.ingest = Some(cfg);
        self
    }

    /// Attaches a self-tuning elasticity controller (none by default):
    /// the tier then grows/shrinks/rebalances itself on
    /// [`controller_tick`](MoistCluster::controller_tick)s.
    pub fn controller(mut self, cfg: ControllerConfig) -> Self {
        self.controller = Some(cfg);
        self
    }

    /// Streams all non-shed location writes into a shared PPP archiver
    /// (see [`MoistCluster::with_archiver`]).
    pub fn archiver(mut self, archiver: Arc<PppArchiver>) -> Self {
        self.archiver = Some(archiver);
        self
    }

    /// Builds the tier over the store the builder was bound to.
    pub fn build(self) -> Result<MoistCluster> {
        let store = Arc::clone(&self.store);
        self.build_over(&store)
    }

    /// Rebuilds the tier from a crashed durable store, carrying **every**
    /// builder knob over to the recovered fleet — this is the fix for
    /// the old [`MoistCluster::recover`], which silently rebuilt with
    /// default replica/ingest settings. The store the builder was bound
    /// to is ignored; the recovered store replaces it.
    ///
    /// [`Bigtable::recover`] replays every table's snapshot + WAL tail
    /// to its last consistent cut, then the fleet is built over the
    /// recovered store exactly as [`build`](ClusterBuilder::build) does
    /// over a populated one: tables are opened (not recreated), each
    /// shard's scheduler is re-seeded with its rendezvous slice, and the
    /// shared object estimate restarts from the recovered affiliation
    /// rows. Returns the recovered store (callers usually want sessions
    /// on it), the tier, and the recovery report. `store_cfg.durability`
    /// must be [`Durability::Wal`](moist_bigtable::Durability::Wal).
    pub fn recover(
        self,
        store_cfg: StoreConfig,
    ) -> Result<(Arc<Bigtable>, MoistCluster, RecoveryReport)> {
        let (store, report) = Bigtable::recover(store_cfg)?;
        let cluster = self.build_over(&store)?;
        Ok((store, cluster, report))
    }

    /// The shared construction body: the base fleet (bit-identical to
    /// what `MoistCluster::new` always built), then each configured knob
    /// applied through the same public combinator the old API exposed —
    /// so builder and wrappers cannot drift apart.
    fn build_over(&self, store: &Arc<Bigtable>) -> Result<MoistCluster> {
        let mut cluster = MoistCluster::build_base(store, self.cfg, self.shards)?;
        if let Some(icfg) = self.ingest {
            cluster = cluster.with_ingest(icfg);
        }
        if self.replicas != 1 {
            cluster = cluster.with_replicas(self.replicas);
        }
        if let Some(archiver) = &self.archiver {
            cluster = cluster.with_archiver(Arc::clone(archiver));
        }
        if let Some(ccfg) = self.controller {
            cluster.controller = Some(Mutex::new(AutoController::new(ccfg)));
        }
        Ok(cluster)
    }
}

impl MoistCluster {
    /// Starts a [`ClusterBuilder`] over `store` — **the** construction
    /// path for the tier. Every knob (fleet size, replicas, ingest,
    /// controller, archiver) is set on the builder; the legacy
    /// constructors below are thin wrappers over it.
    pub fn builder(store: &Arc<Bigtable>, cfg: MoistConfig) -> ClusterBuilder {
        ClusterBuilder {
            store: Arc::clone(store),
            cfg,
            shards: 1,
            replicas: 1,
            ingest: None,
            controller: None,
            archiver: None,
        }
    }

    /// Opens (or on first use creates) the MOIST tables in `store` and
    /// builds a tier of `shards` front-end servers around them.
    ///
    /// Wrapper kept for compatibility — prefer
    /// [`builder`](MoistCluster::builder):
    /// `MoistCluster::builder(store, cfg).shards(n).build()` is this
    /// call, bit for bit.
    pub fn new(store: &Arc<Bigtable>, cfg: MoistConfig, shards: usize) -> Result<Self> {
        Self::builder(store, cfg).shards(shards).build()
    }

    /// The base fleet every construction path shares: `shards` servers,
    /// unit weights, epoch 0, no splits, replication factor 1, default
    /// ingest pipeline, no controller.
    ///
    /// Each shard gets the rendezvous slice of the clustering schedule it
    /// wins and the shared object-count estimate (seeded from the store's
    /// row count, so a tier over a populated store starts with the right
    /// FLAG `n`).
    fn build_base(store: &Arc<Bigtable>, cfg: MoistConfig, shards: usize) -> Result<Self> {
        let shards = shards.max(1);
        let object_estimate = Arc::new(AtomicU64::new(0));
        let ids: Vec<u64> = (0..shards as u64).collect();
        let entries: Vec<Arc<ShardEntry>> = ids
            .iter()
            .map(|&id| {
                Ok(Arc::new(ShardEntry::new(
                    id,
                    MoistServer::new(store, cfg)?
                        .with_scheduler(ClusterScheduler::for_member(&cfg, id, &ids))
                        .with_shared_estimate(Arc::clone(&object_estimate)),
                )))
            })
            .collect::<Result<_>>()?;
        Ok(MoistCluster {
            cfg,
            store: Arc::clone(store),
            membership: Arc::new(RwLock::new(Arc::new(Membership {
                epoch: 0,
                weights: vec![1.0; entries.len()],
                splits: Arc::new(SplitTable::default()),
                shards: entries,
                replicas: 1,
            }))),
            query_pool: QueryPool::sized_for_host(),
            retired: Mutex::new(RetiredShards::default()),
            object_estimate,
            archiver: None,
            next_shard_id: AtomicU64::new(shards as u64),
            version: AtomicU64::new(0),
            epoch_migrations: AtomicU64::new(0),
            promotions: AtomicU64::new(0),
            replica_reads: AtomicU64::new(0),
            split_migrations: AtomicU64::new(0),
            rebalance_baseline: Mutex::new(HashMap::new()),
            cell_density: RwLock::new(Arc::new(HashMap::new())),
            cell_scan_cost: RwLock::new(Arc::new(HashMap::new())),
            ingest_cfg: IngestConfig::default().normalized(),
            ingest: IngestQueues::default(),
            controller: None,
        })
    }

    /// Rebuilds a tier from a crashed durable store, with **default**
    /// replica/ingest settings.
    ///
    /// Wrapper kept for compatibility — prefer
    /// [`ClusterBuilder::recover`], which carries the crashed tier's
    /// replica/ingest/controller knobs onto the recovered fleet instead
    /// of silently resetting them:
    /// `MoistCluster::builder(&store, cfg).shards(n).replicas(k).recover(store_cfg)`.
    pub fn recover(
        store_cfg: StoreConfig,
        cfg: MoistConfig,
        shards: usize,
    ) -> Result<(Arc<Bigtable>, Self, RecoveryReport)> {
        // The builder needs a store to bind to; `recover` replaces it
        // with the recovered one, so an empty placeholder does.
        Self::builder(&Bigtable::new(), cfg)
            .shards(shards)
            .recover(store_cfg)
    }

    /// Durability checkpoint: drains the ingest pipeline so every
    /// buffered acknowledged update is applied (and therefore WAL-logged)
    /// **before** the store snapshots, then compacts every table —
    /// snapshot + log truncation. Returns `(updates drained, snapshot
    /// bytes written)`. On a non-durable store the compaction half is a
    /// no-op and `bytes` is 0.
    pub fn checkpoint(&self) -> Result<(usize, u64)> {
        let drained = self.drain_ingest()?;
        let bytes = self.store.compact_all()?;
        Ok((drained, bytes))
    }

    /// Tunes the ingestion pipeline ([`submit`](MoistCluster::submit) /
    /// [`flush_due`](MoistCluster::flush_due)): batch size, queue cap,
    /// flush deadline and the full-queue policy. Degenerate sizes are
    /// clamped to workable minima. The synchronous
    /// [`update`](MoistCluster::update) path is unaffected.
    ///
    /// Wrapper kept for compatibility — prefer
    /// [`ClusterBuilder::ingest`], which is this call applied at build
    /// time (and the only form [`ClusterBuilder::recover`] can carry
    /// across a crash).
    pub fn with_ingest(mut self, cfg: IngestConfig) -> Self {
        self.ingest_cfg = cfg.normalized();
        self
    }

    /// The ingestion pipeline's current knobs.
    pub fn ingest_config(&self) -> IngestConfig {
        self.ingest_cfg
    }

    /// Point-in-time ingestion-pipeline counters (also embedded in
    /// [`cluster_stats`](MoistCluster::cluster_stats)).
    pub fn ingest_stats(&self) -> IngestStats {
        self.ingest.stats()
    }

    /// Sets the replication factor: each routing key is owned by its
    /// rendezvous top-`k` shards — the rank-0 **primary** (updates and
    /// clustering, exactly as in the unreplicated tier) plus `k − 1`
    /// **followers** that mirror the key's state through the shared store
    /// and serve its reads when they are less loaded than the primary.
    /// `k` clamps to the live shard count; `with_replicas(1)` (the
    /// default) reproduces single-owner routing bit-identically.
    ///
    /// Replication here costs no extra storage or write amplification —
    /// the store is shared, followers hold no private state — it widens
    /// each key's *read* path and pre-arms a leave: when the primary
    /// dies, the rank-1 follower is already serving the key's reads and
    /// adopts its clustering deadlines through the normal migration path.
    ///
    /// Wrapper kept for compatibility — prefer
    /// [`ClusterBuilder::replicas`], which is this call applied at build
    /// time (and the only form [`ClusterBuilder::recover`] can carry
    /// across a crash).
    pub fn with_replicas(self, k: usize) -> Self {
        {
            let mut guard = self.membership.write();
            let old = Arc::clone(&guard);
            *guard = Arc::new(Membership {
                epoch: old.epoch,
                shards: old.shards.clone(),
                weights: old.weights.clone(),
                splits: Arc::clone(&old.splits),
                replicas: k.max(1),
            });
        }
        self
    }

    /// The configured replication factor.
    pub fn replicas(&self) -> usize {
        self.snapshot().replicas
    }

    /// Attaches one PPP archiver to every shard (current and future
    /// joiners): all non-shed location writes stream into the shared
    /// aged-data pipeline.
    pub fn with_archiver(mut self, archiver: Arc<PppArchiver>) -> Self {
        let snap = self.membership.read().clone();
        for entry in &snap.shards {
            entry.server.write().set_archiver(Arc::clone(&archiver));
        }
        self.archiver = Some(archiver);
        self
    }

    /// The current membership snapshot.
    fn snapshot(&self) -> Arc<Membership> {
        self.membership.read().clone()
    }

    /// The replica that should serve a *read* of routing key `key`: the
    /// least-loaded member of the key's replica set, by virtual elapsed
    /// store time — the same deterministic signal
    /// [`rebalance`](MoistCluster::rebalance) weighs. Strict `<` with the
    /// primary scanned first keeps reads on the primary until a follower
    /// is genuinely cheaper, so `replicas == 1` (where the set *is* the
    /// primary) reproduces owner routing exactly. Returns the chosen
    /// entry plus whether it is a follower (rank 1+); each replica's lock
    /// is taken briefly in turn, never two at once.
    fn read_replica<'a>(&self, snap: &'a Membership, key: u64) -> (&'a Arc<ShardEntry>, bool) {
        if snap.replicas <= 1 || snap.shards.len() <= 1 {
            return (snap.owner_of(key), false);
        }
        let set = snap.owners_of(key);
        let mut best = 0usize;
        let mut best_load = f64::INFINITY;
        for (rank, entry) in set.iter().enumerate() {
            let load = entry.server.read().elapsed_us();
            if load < best_load {
                best_load = load;
                best = rank;
            }
        }
        (set[best], best > 0)
    }

    /// Records one follower-served read on `entry` and tier-wide.
    fn note_replica_read(&self, entry: &ShardEntry) {
        entry.replica_reads.fetch_add(1, Ordering::Relaxed);
        self.replica_reads.fetch_add(1, Ordering::Relaxed);
    }

    /// The entry at position `shard` in the current snapshot, as an owned
    /// `Arc`.
    fn entry_at(&self, shard: usize) -> Result<Arc<ShardEntry>> {
        Ok(Arc::clone(self.snapshot().entry(shard)?))
    }

    /// Number of live front-end shards.
    pub fn num_shards(&self) -> usize {
        self.snapshot().shards.len()
    }

    /// The live shards' stable ids, in position order.
    pub fn shard_ids(&self) -> Vec<u64> {
        self.snapshot().ids()
    }

    /// The current membership epoch (bumped by every join/leave).
    pub fn epoch(&self) -> u64 {
        self.snapshot().epoch
    }

    /// The tier's configuration.
    pub fn config(&self) -> &MoistConfig {
        &self.cfg
    }

    /// Cluster-wide object-count estimate (FLAG's `n`).
    pub fn object_estimate(&self) -> u64 {
        self.object_estimate.load(Ordering::Relaxed)
    }

    /// Adds a fresh shard to the tier and returns its stable id.
    ///
    /// The joiner starts with an empty schedule; only the clustering cells
    /// whose rendezvous winner changed (≈ cells/(N+1) of them — exactly
    /// the joiner's wins) migrate, each adopted at the deadline phase it
    /// had on its old owner. In-flight operations keep routing against
    /// the pre-join snapshot and land correctly in the shared store.
    pub fn add_shard(&self) -> Result<u64> {
        let mut guard = self.membership.write();
        let old = Arc::clone(&guard);
        let id = self.next_shard_id.fetch_add(1, Ordering::Relaxed);
        let mut server = MoistServer::new(&self.store, self.cfg)?
            .with_scheduler(ClusterScheduler::empty(&self.cfg))
            .with_shared_estimate(Arc::clone(&self.object_estimate));
        if let Some(archiver) = &self.archiver {
            server = server.with_archiver(Arc::clone(archiver));
        }
        let joiner = Arc::new(ShardEntry::new(id, server));

        let mut shards = old.shards.clone();
        let mut weights = old.weights.clone();
        let pos = shards.partition_point(|e| e.id < id);
        shards.insert(pos, Arc::clone(&joiner));
        // A joiner starts at the fleet's mean weight: unproven capacity
        // gets an average share, and the next rebalance corrects it from
        // measurement.
        let mean = weights.iter().sum::<f64>() / weights.len().max(1) as f64;
        weights.insert(
            pos,
            if mean.is_finite() && mean > 0.0 {
                mean
            } else {
                1.0
            },
        );
        let new = Membership {
            epoch: old.epoch + 1,
            shards,
            weights,
            splits: Arc::clone(&old.splits),
            replicas: old.replicas,
        };

        // Seqlock odd phase: updates started against the old snapshot
        // will re-validate and re-route rather than land on a cell whose
        // owner is mid-migration.
        self.version.fetch_add(1, Ordering::AcqRel);
        let migrated = self.migrate_ownership(&old, &new);
        self.epoch_migrations.fetch_add(migrated, Ordering::Relaxed);
        *guard = Arc::new(new);
        self.version.fetch_add(1, Ordering::AcqRel);
        // Drain the ingest queues against the published snapshot (write
        // lock released first — the drain re-takes it read-side): batches
        // buffered under the old epoch re-route to the new owners now.
        drop(guard);
        self.drain_ingest()?;
        Ok(id)
    }

    /// Moves every routing key whose owner differs between `old` and
    /// `new` from its old owner's scheduler to its new owner's,
    /// preserving each key's deadline phase; cells split (or unsplit)
    /// between the snapshots hand their phase down to (or up from) their
    /// children. The single migration path shared by
    /// [`add_shard`](MoistCluster::add_shard),
    /// [`remove_shard`](MoistCluster::remove_shard) and
    /// [`rebalance`](MoistCluster::rebalance) — callers hold the
    /// membership write lock and the seqlock's odd phase. Returns the
    /// number of keys that changed owner.
    fn migrate_ownership(&self, old: &Membership, new: &Membership) -> u64 {
        let mut migrated = 0u64;
        // Moves one key if its owner changed; returns whether it did.
        let move_key = |key: u64| -> bool {
            let old_owner = old.owner_of(key);
            let new_owner = new.owner_of(key);
            if old_owner.id == new_owner.id {
                return false;
            }
            let due = old_owner
                .server
                .write()
                .scheduler_mut()
                .release(key)
                .expect("old owner held the migrating key");
            new_owner.server.write().scheduler_mut().adopt(key, due);
            true
        };
        for cell in 0..cells_at_level(self.cfg.clustering_level) {
            match (old.splits.is_split(cell), new.splits.is_split(cell)) {
                (false, false) => migrated += u64::from(move_key(cell)),
                (true, true) => {
                    for child in SplitTable::child_keys(cell) {
                        migrated += u64::from(move_key(child));
                    }
                }
                (false, true) => {
                    // A fresh split: the parent's pending deadline carries
                    // over to every child, so none of the four re-clusters
                    // early or skips a round.
                    let due = old
                        .owner_of(cell)
                        .server
                        .write()
                        .scheduler_mut()
                        .release(cell)
                        .expect("old owner held the splitting cell");
                    let old_id = old.owner_of(cell).id;
                    for child in SplitTable::child_keys(cell) {
                        let new_owner = new.owner_of(child);
                        new_owner.server.write().scheduler_mut().adopt(child, due);
                        if new_owner.id != old_id {
                            migrated += 1;
                        }
                    }
                }
                (true, false) => {
                    // Un-split (not produced by today's rebalance policy,
                    // but the handover stays total): the earliest child
                    // deadline becomes the reunited cell's phase.
                    let mut due = u64::MAX;
                    for child in SplitTable::child_keys(cell) {
                        if let Some(d) = old
                            .owner_of(child)
                            .server
                            .write()
                            .scheduler_mut()
                            .release(child)
                        {
                            due = due.min(d);
                        }
                    }
                    let due = if due == u64::MAX {
                        (self.cfg.cluster_interval_secs * 1e6) as u64
                    } else {
                        due
                    };
                    new.owner_of(cell)
                        .server
                        .write()
                        .scheduler_mut()
                        .adopt(cell, due);
                    migrated += 1;
                }
            }
        }
        migrated
    }

    /// Removes the shard with stable id `id` from the tier.
    ///
    /// Only the departed shard's cells are reassigned — every other
    /// cell's owner is untouched (the rendezvous property) — and each
    /// reassigned cell is adopted by its new owner at its current deadline
    /// phase. The removed shard's counters remain in [`stats`] so no
    /// update it absorbed (live or in flight) goes unaccounted.
    ///
    /// Fails with [`MoistError::NoSuchShard`] if `id` is not a live shard
    /// or it is the last one (an empty tier could serve nothing).
    ///
    /// [`stats`]: MoistCluster::stats
    pub fn remove_shard(&self, id: u64) -> Result<()> {
        let mut guard = self.membership.write();
        let old = Arc::clone(&guard);
        let pos = old.position_of(id).ok_or_else(|| {
            MoistError::NoSuchShard(format!(
                "shard id {id} is not in the live membership {:?} (epoch {})",
                old.ids(),
                old.epoch
            ))
        })?;
        if old.shards.len() == 1 {
            return Err(MoistError::NoSuchShard(format!(
                "cannot remove shard id {id}: it is the last live shard"
            )));
        }
        let departed = Arc::clone(&old.shards[pos]);
        let mut shards = old.shards.clone();
        let mut weights = old.weights.clone();
        shards.remove(pos);
        weights.remove(pos);
        let new = Membership {
            epoch: old.epoch + 1,
            shards,
            weights,
            splits: Arc::clone(&old.splits),
            replicas: old.replicas,
        };

        // Seqlock odd phase (see `add_shard`). The migration loop hands
        // exactly the departed shard's keys (the only ones whose winner
        // changes) to their new owners at their current deadline phase.
        self.version.fetch_add(1, Ordering::AcqRel);
        let migrated = self.migrate_ownership(&old, &new);
        self.epoch_migrations.fetch_add(migrated, Ordering::Relaxed);
        if old.replicas > 1 {
            // Rendezvous ranks are prefix-stable under a leave: every
            // migrated key's new primary is exactly its old rank-1
            // follower, already warm on the key's reads — each handover
            // is an instant follower promotion.
            self.promotions.fetch_add(migrated, Ordering::Relaxed);
        }
        let mut retired = self.retired.lock();
        retired.entries.push(departed);
        retired.compact();
        drop(retired);
        *guard = Arc::new(new);
        self.version.fetch_add(1, Ordering::AcqRel);
        // Drain-and-reroute: anything buffered for the departed shard
        // (or any other) applies now, under the survivors' ownership —
        // an acknowledged submission is never stranded behind a dead
        // shard's queue key.
        drop(guard);
        self.drain_ingest()?;
        Ok(())
    }

    /// One load-aware placement step: derives per-shard weights from the
    /// utilization measured since the previous rebalance and splits the
    /// hottest clustering cells one level finer, then migrates exactly the
    /// routing keys whose owner changed through the same epoch/handover
    /// path joins and leaves use (deadline phases preserved, seqlock
    /// protecting the update path).
    ///
    /// * **Weights** — a shard whose virtual elapsed time since the last
    ///   rebalance sits above the fleet mean is over-utilized: its weight
    ///   shrinks by the utilization ratio (per-step factor clamped, total
    ///   weight clamped to `[1/8, 8]`, then normalized to mean 1), so the
    ///   weighted rendezvous shifts whole cells away from it with minimal
    ///   remap. Under-utilized shards symmetrically grow. A dead-band
    ///   around the mean keeps a level fleet from oscillating.
    /// * **Splits** — per-cell EWMA update rates (the load layer) merge
    ///   across shards; cells whose rate exceeds [`HOT_SPLIT_FACTOR`]×
    ///   the mean cell rate split one level finer (bounded by
    ///   [`MAX_SPLIT_CELLS`]), so a single business-center cell stops
    ///   pinning whichever shard owns it. Split cells whose demand later
    ///   fades below [`UNSPLIT_FACTOR`]× the mean **un-split** — the four
    ///   children reunite through the same handover path — so the split
    ///   table's cap recycles as the hot spot moves.
    /// * **Density & scan prices** — the merged per-cell rates refresh
    ///   the relative density map the region fan-out uses to price its
    ///   balancing pass, and the per-cell scan costs *measured* by past
    ///   fan-out partials (see
    ///   [`LoadTracker::note_cell_scan`](crate::load::LoadTracker::note_cell_scan))
    ///   merge into a learned price map that replaces the density prior
    ///   for every cell that has actually been scanned.
    ///
    /// Returns what changed; when nothing does (level fleet, no hot
    /// cells) the membership — and its epoch — is left untouched. The
    /// membership change itself cannot fail, but the post-publish ingest
    /// drain applies buffered batches and any error it hits (a poisoned
    /// update, a store failure) is propagated rather than swallowed —
    /// the new epoch is already live at that point, so callers see the
    /// placement applied *and* the drain failure.
    pub fn rebalance(&self, now: Timestamp) -> Result<RebalanceReport> {
        let mut guard = self.membership.write();
        let old = Arc::clone(&guard);

        // ---- measure: per-shard utilization + merged per-cell rates ----
        let mut utils: Vec<f64> = Vec::with_capacity(old.shards.len());
        let mut cell_rates: HashMap<u64, f64> = HashMap::new();
        let mut scan_samples: HashMap<u64, (f64, u32)> = HashMap::new();
        {
            let mut baseline = self.rebalance_baseline.lock();
            for entry in &old.shards {
                let server = entry.server.read();
                let elapsed = server.elapsed_us();
                for (cell, rates) in server.load_rates(now) {
                    *cell_rates.entry(cell).or_insert(0.0) += rates.total();
                }
                // Different shards may have scanned the same cell (the
                // balancing pass moves slices around); their learned
                // costs average.
                for (cell, us) in server.cell_scan_costs() {
                    let e = scan_samples.entry(cell).or_insert((0.0, 0));
                    e.0 += us;
                    e.1 += 1;
                }
                let prev = baseline.insert(entry.id, elapsed).unwrap_or(0.0);
                utils.push((elapsed - prev).max(0.0));
            }
        }

        // ---- weights from utilization ----
        let n = old.shards.len();
        let mean_util = utils.iter().sum::<f64>() / n.max(1) as f64;
        let mut weights = old.weights.clone();
        let mut reweighted = 0usize;
        if mean_util > 1.0 {
            for (w, &util) in weights.iter_mut().zip(&utils) {
                let ratio = util / mean_util;
                // Dead-band: a ±20% wobble around the mean is noise.
                let factor = if ratio > 1.2 {
                    (1.0 / ratio).max(1.0 / REBALANCE_MAX_STEP)
                } else if ratio < 0.8 {
                    (1.0 / ratio.max(0.05)).min(REBALANCE_MAX_STEP)
                } else {
                    1.0
                };
                if factor != 1.0 {
                    *w = (*w * factor).clamp(MIN_PLACEMENT_WEIGHT, MAX_PLACEMENT_WEIGHT);
                    reweighted += 1;
                }
            }
            // Normalize to mean 1 so weights stay comparable across
            // epochs instead of drifting towards a clamp.
            let sum: f64 = weights.iter().sum();
            if sum > 0.0 {
                let scale = n as f64 / sum;
                for w in &mut weights {
                    *w *= scale;
                }
            }
        }

        // ---- splits (and un-splits) from per-cell rates ----
        let mut splits = (*old.splits).clone();
        let mut split_now: Vec<u64> = Vec::new();
        let mut unsplit_now: Vec<u64> = Vec::new();
        if self.cfg.clustering_level < self.cfg.space.leaf_level {
            let candidates: Vec<(u64, f64)> = cell_rates
                .iter()
                .filter(|(cell, &rate)| rate > 0.0 && !splits.is_split(**cell))
                .map(|(&cell, &rate)| (cell, rate))
                .collect();
            // Mean over the whole level, not just the loaded cells: "hot"
            // means hot relative to the map, and a map where one cell has
            // all the traffic is the textbook split case.
            let mean_rate = cell_rates.values().sum::<f64>()
                / cells_at_level(self.cfg.clustering_level).max(1) as f64;
            if mean_rate > 0.0 {
                // Un-split first: demand observations key by the *parent*
                // cell even while it is split, so a split cell's merged
                // EWMA rate compares directly against the same mean the
                // split threshold uses. A cell whose demand faded below
                // [`UNSPLIT_FACTOR`]× the mean reunites, freeing
                // split-table capacity for wherever the hot spot moved;
                // the wide gap to [`HOT_SPLIT_FACTOR`] is the hysteresis.
                // An idle map (`mean_rate == 0`) deliberately un-splits
                // nothing: no evidence, no churn.
                for cell in splits.cells().collect::<Vec<u64>>() {
                    let rate = cell_rates.get(&cell).copied().unwrap_or(0.0);
                    if rate < UNSPLIT_FACTOR * mean_rate {
                        splits.unsplit(cell);
                        unsplit_now.push(cell);
                    }
                }
                let mut hot: Vec<(u64, f64)> = candidates
                    .into_iter()
                    .filter(|&(_, rate)| rate >= HOT_SPLIT_FACTOR * mean_rate)
                    .collect();
                hot.sort_by(|a, b| {
                    b.1.partial_cmp(&a.1)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then_with(|| a.0.cmp(&b.0))
                });
                for (cell, _) in hot {
                    if splits.len() >= MAX_SPLIT_CELLS {
                        break;
                    }
                    splits.split(cell);
                    split_now.push(cell);
                }
            }
        }

        // ---- refresh the fan-out's density map ----
        if !cell_rates.is_empty() {
            let mean = cell_rates.values().sum::<f64>() / cell_rates.len() as f64;
            if mean > 0.0 {
                let density: HashMap<u64, f64> = cell_rates
                    .iter()
                    .map(|(&cell, &rate)| (cell, rate / mean))
                    .collect();
                *self.cell_density.write() = Arc::new(density);
            }
        }

        // ---- refresh the fan-out's *measured* scan-price map ----
        if !scan_samples.is_empty() {
            let merged: Vec<(u64, f64)> = scan_samples
                .iter()
                .map(|(&cell, &(sum, n))| (cell, sum / n as f64))
                .collect();
            let mean = merged.iter().map(|&(_, us)| us).sum::<f64>() / merged.len() as f64;
            if mean > 0.0 {
                // Scaled so the average *measured* cell prices at 2.0 —
                // the scale the density prior averages to (1 + mean
                // relative density = 2) — so measured cells and
                // prior-priced (never-scanned) cells mix consistently in
                // one cost function.
                let prices: HashMap<u64, f64> = merged
                    .into_iter()
                    .map(|(cell, us)| (cell, 2.0 * us / mean))
                    .collect();
                *self.cell_scan_cost.write() = Arc::new(prices);
            }
        }

        let weights_changed = weights
            .iter()
            .zip(&old.weights)
            .any(|(a, b)| (a - b).abs() > 1e-9);
        if !weights_changed && split_now.is_empty() && unsplit_now.is_empty() {
            return Ok(RebalanceReport {
                epoch: old.epoch,
                reweighted: 0,
                split_cells: Vec::new(),
                unsplit_cells: Vec::new(),
                migrated_keys: 0,
            });
        }

        // ---- publish: one epoch bump through the shared handover path ----
        let new = Membership {
            epoch: old.epoch + 1,
            shards: old.shards.clone(),
            weights,
            splits: Arc::new(splits),
            replicas: old.replicas,
        };
        self.version.fetch_add(1, Ordering::AcqRel);
        let migrated = self.migrate_ownership(&old, &new);
        self.split_migrations.fetch_add(migrated, Ordering::Relaxed);
        *guard = Arc::new(new);
        self.version.fetch_add(1, Ordering::AcqRel);
        // Same drain-and-reroute as join/leave: the drain's error is the
        // caller's to see — buffered acknowledged updates that fail to
        // apply must not vanish behind a successful-looking report.
        drop(guard);
        self.drain_ingest()?;
        Ok(RebalanceReport {
            epoch: old.epoch + 1,
            reweighted,
            split_cells: split_now,
            unsplit_cells: unsplit_now,
            migrated_keys: migrated,
        })
    }

    /// Drives the elasticity controller one tick of virtual time: a
    /// no-op unless a controller was attached
    /// ([`ClusterBuilder::controller`]) *and* an evaluation is due at
    /// `now`. Call it from the client loop next to
    /// [`run_due_clustering`](MoistCluster::run_due_clustering) — the
    /// controller is deliberately thread-free and deterministic, exactly
    /// like the load layer it reads.
    ///
    /// Each closed window yields at most one scaling action (plus
    /// rebalances on their own cadence); the actions executed this tick
    /// are returned and logged to
    /// [`controller_events`](MoistCluster::controller_events).
    /// Concurrent tickers don't serialize: whoever holds the controller
    /// evaluates, everyone else returns immediately. A planned removal
    /// that races an operator's own `remove_shard` (the victim is
    /// already gone) is skipped, not an error; the min-fleet clamp is
    /// re-checked against the live membership at execution time.
    pub fn controller_tick(&self, now: Timestamp) -> Result<Vec<ControllerAction>> {
        let Some(ctl) = &self.controller else {
            return Ok(Vec::new());
        };
        let Some(mut guard) = ctl.try_lock() else {
            return Ok(Vec::new());
        };
        if !guard.due(now) {
            return Ok(Vec::new());
        }
        let stats = self.cluster_stats(now);
        let split_table_full = stats.split_cells.len() >= MAX_SPLIT_CELLS;
        let plans = guard.plan(now, &stats, self.ingest_cfg.queue_cap, split_table_full);
        let mut actions = Vec::new();
        for plan in plans {
            match plan {
                Plan::Rebalance => {
                    let report = self.rebalance(now)?;
                    let action = ControllerAction::Rebalance {
                        epoch: report.epoch,
                    };
                    guard.note_action(now, action, self.num_shards(), "rebalance cadence");
                    actions.push(action);
                }
                Plan::Add { count, reason } => {
                    for _ in 0..count {
                        if self.num_shards() >= guard.config().max_shards {
                            break;
                        }
                        let id = self.add_shard()?;
                        let action = ControllerAction::AddShard { id };
                        guard.note_action(now, action, self.num_shards(), reason);
                        actions.push(action);
                    }
                }
                Plan::Remove { victim, reason } => {
                    if self.num_shards() <= guard.config().min_shards {
                        continue;
                    }
                    match self.remove_shard(victim) {
                        Ok(()) => {
                            let action = ControllerAction::RemoveShard { id: victim };
                            guard.note_action(now, action, self.num_shards(), reason);
                            actions.push(action);
                        }
                        // The victim raced away (operator kill, chaos):
                        // the plan is stale, not wrong.
                        Err(MoistError::NoSuchShard(_)) => {}
                        Err(e) => return Err(e),
                    }
                }
            }
        }
        Ok(actions)
    }

    /// The controller's decision log so far (empty when no controller is
    /// attached), oldest first — the observable trace the chaos tests
    /// assert hysteresis on.
    pub fn controller_events(&self) -> Vec<ControllerEvent> {
        self.controller
            .as_ref()
            .map(|c| c.lock().events().to_vec())
            .unwrap_or_default()
    }

    /// The attached controller's (normalized) configuration, if any.
    pub fn controller_config(&self) -> Option<ControllerConfig> {
        self.controller.as_ref().map(|c| c.lock().config())
    }

    /// The learned per-cell scan prices the region fan-out currently
    /// uses (relative; average measured cell ≈ 2.0), refreshed by
    /// [`rebalance`](MoistCluster::rebalance) from the per-range costs
    /// past fan-outs measured. Empty until a fan-out has scanned and a
    /// rebalance has folded — cells absent here price by the
    /// span×density prior.
    pub fn learned_scan_costs(&self) -> HashMap<u64, f64> {
        self.cell_scan_cost.read().as_ref().clone()
    }

    /// The clustering cells currently split one level finer.
    pub fn split_cells(&self) -> Vec<u64> {
        self.snapshot().splits.cells().collect()
    }

    /// The live shards' placement weights, in position order.
    pub fn shard_weights(&self) -> Vec<f64> {
        self.snapshot().weights.clone()
    }

    /// The tier's load/placement observability rollup: per-shard
    /// utilization and demand rates, placement weights, owned-key counts,
    /// scatter-slice service timings, the split table, and the migration
    /// counters — everything [`rebalance`](MoistCluster::rebalance)
    /// consumes, exposed so operators (and the `fig16_skew` bench) can see
    /// what placement sees. `now` folds the EWMA windows before reading.
    pub fn cluster_stats(&self, now: Timestamp) -> ClusterStats {
        let snap = self.snapshot();
        // Follower-key counts per shard id: walk every routing key's
        // replica set once and charge ranks 1+. Skipped entirely at
        // `replicas == 1` (no set has a rank 1).
        let mut follower_counts: HashMap<u64, usize> = HashMap::new();
        if snap.replicas > 1 {
            let mut note = |key: u64| {
                for entry in snap.owners_of(key).into_iter().skip(1) {
                    *follower_counts.entry(entry.id).or_insert(0) += 1;
                }
            };
            for cell in 0..cells_at_level(self.cfg.clustering_level) {
                if snap.splits.is_split(cell) {
                    for child in SplitTable::child_keys(cell) {
                        note(child);
                    }
                } else {
                    note(cell);
                }
            }
        }
        let shards = snap
            .shards
            .iter()
            .zip(&snap.weights)
            .map(|(entry, &weight)| {
                let server = entry.server.read();
                let (update_rate, query_rate) = server.load_totals(now);
                let (scatter_slices, scatter_slice_us) = server.scatter_slice_stats();
                ShardLoadStats {
                    id: entry.id,
                    weight,
                    elapsed_us: server.elapsed_us(),
                    update_rate,
                    query_rate,
                    primary_keys: server.scheduler().owned_count(),
                    follower_keys: follower_counts.get(&entry.id).copied().unwrap_or(0),
                    replica_reads: entry.replica_reads.load(Ordering::Relaxed),
                    scatter_slices,
                    scatter_slice_us,
                    queue_depth: self.ingest.depth(entry.id),
                }
            })
            .collect();
        ClusterStats {
            epoch: snap.epoch,
            shards,
            split_cells: snap.splits.cells().collect(),
            epoch_migrations: self.epoch_migrations.load(Ordering::Relaxed),
            split_migrations: self.split_migrations.load(Ordering::Relaxed),
            replicas: snap.replicas,
            promotions: self.promotions.load(Ordering::Relaxed),
            replica_reads: self.replica_reads.load(Ordering::Relaxed),
            ingest: self.ingest.stats(),
            ops: self.stats(),
        }
    }

    /// The position (in current membership order) of the shard owning the
    /// clustering cell (or, for a split cell, the child cell) containing
    /// `p`.
    pub fn shard_for_point(&self, p: &Point) -> usize {
        let leaf = self.cfg.space.leaf_cell(p).index;
        let snap = self.snapshot();
        let id = snap.owner_of(snap.route_leaf(leaf, &self.cfg)).id;
        snap.position_of(id).expect("winner is live")
    }

    /// The position of the rendezvous winner for `key` in the current
    /// snapshot.
    fn owner_position(&self, key: u64) -> usize {
        let snap = self.snapshot();
        let id = snap.owner_of(key).id;
        snap.position_of(id).expect("winner is live")
    }

    /// The position of the shard owning clustering cell `cell` (coarser or
    /// finer cells are mapped through a representative leaf descendant,
    /// so split-cell routing applies to them too).
    pub fn shard_for_cell(&self, cell: CellId) -> usize {
        let snap = self.snapshot();
        let id = snap
            .owner_of(snap.route_leaf(self.leaf_representative(cell), &self.cfg))
            .id;
        snap.position_of(id).expect("winner is live")
    }

    /// A representative leaf index inside `cell` (its first leaf
    /// descendant; cells finer than the leaf level map through their
    /// ancestor).
    fn leaf_representative(&self, cell: CellId) -> u64 {
        let leaf_level = self.cfg.space.leaf_level;
        if cell.level <= leaf_level {
            cell.index << (2 * (leaf_level - cell.level) as u64)
        } else {
            cell.index >> (2 * (cell.level - leaf_level) as u64)
        }
    }

    /// The position of the shard answering object-keyed lookups for `oid`
    /// (pure load spreading — any shard could serve them from the shared
    /// store).
    pub fn shard_for_object(&self, oid: ObjectId) -> usize {
        self.owner_position(oid.0)
    }

    /// Runs `f` against one shard's server by position (stats inspection,
    /// clock resets, direct table access in tests). Fails with
    /// [`MoistError::NoSuchShard`] when `shard` is past the current
    /// membership instead of panicking, so callers racing a shard removal
    /// degrade gracefully.
    pub fn with_shard<R>(&self, shard: usize, f: impl FnOnce(&mut MoistServer) -> R) -> Result<R> {
        let entry = self.entry_at(shard)?;
        let mut server = entry.server.write();
        Ok(f(&mut server))
    }

    /// Shared-access variant of [`with_shard`](MoistCluster::with_shard):
    /// runs `f` under the shard's *read* guard, so any number of callers
    /// (and the tier's own query paths) can overlap on the same shard.
    /// All of [`MoistServer`]'s query methods take `&self` and work here;
    /// use `with_shard` when `f` needs the exclusive writer view.
    pub fn with_shard_read<R>(&self, shard: usize, f: impl FnOnce(&MoistServer) -> R) -> Result<R> {
        let entry = self.entry_at(shard)?;
        let server = entry.server.read();
        Ok(f(&server))
    }

    /// Applies one update on the shard owning the update's clustering cell.
    ///
    /// Routing is seqlock-validated against membership changes: the
    /// version is read before routing and re-read *after* the owner's
    /// lock is held; if a join/leave ran (or is running) in between, the
    /// lock is dropped and routing retries on the new snapshot. This
    /// keeps the exclusivity invariant — a cell's updates and its
    /// clustering serialize on the current owner's lock — across epoch
    /// bumps: without it, an update routed on a pre-bump snapshot could
    /// mutate a migrated cell's school state on the *old* owner while the
    /// new owner is already clustering that cell. Read-only queries skip
    /// the validation deliberately (a stale-routed read still scans a
    /// consistent store).
    pub fn update(&self, msg: &UpdateMessage) -> Result<UpdateOutcome> {
        let leaf = self.cfg.space.leaf_cell(&msg.loc).index;
        loop {
            let v1 = self.version.load(Ordering::Acquire);
            if v1 % 2 == 1 {
                // A membership change is migrating cells right now.
                std::thread::yield_now();
                continue;
            }
            // Routing key and owner come from the same snapshot, so the
            // split table consulted is the one this epoch's owners were
            // seeded from.
            let snap = self.snapshot();
            let entry = Arc::clone(snap.owner_of(snap.route_leaf(leaf, &self.cfg)));
            drop(snap);
            let mut server = entry.server.write();
            if self.version.load(Ordering::Acquire) == v1 {
                return server.update(msg);
            }
            // Membership moved while we were acquiring the lock; this
            // entry may no longer own the cell. Re-route.
            drop(server);
        }
    }

    /// Applies a batch of updates, each on the shard owning its
    /// clustering cell, amortizing lock acquisitions and store
    /// round-trips across each shard's group
    /// ([`MoistServer::update_batch`]).
    ///
    /// Routing holds the same seqlock discipline as
    /// [`update`](MoistCluster::update), per owner group: messages are
    /// grouped by the current snapshot's owners, the version is re-read
    /// after each owner's lock is taken, and groups raced by an epoch
    /// bump return to the pending set and re-route on the new snapshot —
    /// so no message in the batch ever lands on a migrated cell's old
    /// owner. Outcomes come back in message order. On a store error the
    /// already-applied groups stay applied (store errors are fatal in
    /// this tier, never transient).
    pub fn update_batch(&self, msgs: &[UpdateMessage]) -> Result<Vec<UpdateOutcome>> {
        if msgs.is_empty() {
            return Ok(Vec::new());
        }
        let mut out: Vec<Option<UpdateOutcome>> = vec![None; msgs.len()];
        let mut pending: Vec<usize> = (0..msgs.len()).collect();
        while !pending.is_empty() {
            let v1 = self.version.load(Ordering::Acquire);
            if v1 % 2 == 1 {
                // A membership change is migrating cells right now.
                std::thread::yield_now();
                continue;
            }
            let snap = self.snapshot();
            // Group by owner in first-seen order: deterministic apply
            // order per submission order, so the virtual-time cost model
            // stays reproducible.
            let mut groups: Vec<(Arc<ShardEntry>, Vec<usize>)> = Vec::new();
            let mut slot_of: HashMap<u64, usize> = HashMap::new();
            for &i in &pending {
                let leaf = self.cfg.space.leaf_cell(&msgs[i].loc).index;
                let entry = snap.owner_of(snap.route_leaf(leaf, &self.cfg));
                let slot = *slot_of.entry(entry.id).or_insert_with(|| {
                    groups.push((Arc::clone(entry), Vec::new()));
                    groups.len() - 1
                });
                groups[slot].1.push(i);
            }
            drop(snap);
            pending.clear();
            for (entry, idxs) in groups {
                let mut server = entry.server.write();
                if self.version.load(Ordering::Acquire) != v1 {
                    // An epoch bump raced this group: its owner may have
                    // changed. Hand the whole group back for re-routing.
                    drop(server);
                    pending.extend(idxs);
                    continue;
                }
                let batch: Vec<UpdateMessage> = idxs.iter().map(|&i| msgs[i]).collect();
                let outcomes = server.update_batch(&batch)?;
                drop(server);
                for (&i, o) in idxs.iter().zip(outcomes) {
                    out[i] = Some(o);
                }
            }
        }
        Ok(out
            .into_iter()
            .map(|o| o.expect("every message applied by exactly one group"))
            .collect())
    }

    /// Submits one update to the ingestion pipeline instead of applying
    /// it synchronously.
    ///
    /// The message is routed by the current membership snapshot to its
    /// owner shard's bounded queue. An enqueue that fills the batch
    /// flushes it inline through
    /// [`update_batch`](MoistCluster::update_batch) (which re-routes
    /// under the seqlock, so queue-key staleness is harmless). A full
    /// queue surfaces per the configured [`BackpressurePolicy`]: a typed
    /// [`MoistError::Backpressure`] (nothing accepted — the client owns
    /// the retry) or an overload shed ([`SubmitOutcome::ShedOverload`],
    /// counted separately from school sheds). Malformed (non-finite)
    /// messages are rejected here, before buffering, so a later flush
    /// can never fail on a message that was already acknowledged.
    ///
    /// `Ok(Enqueued { .. }) | Ok(Flushed { .. })` is the pipeline's
    /// acknowledgement: the update **will** be applied — by a size or
    /// deadline flush, or by the drain every epoch bump and
    /// [`drain_ingest`](MoistCluster::drain_ingest) call performs.
    pub fn submit(&self, msg: &UpdateMessage) -> Result<SubmitOutcome> {
        if !msg.loc.is_finite() || !msg.vel.is_finite() {
            return Err(MoistError::Inconsistent(format!(
                "non-finite update for {}",
                msg.oid
            )));
        }
        let leaf = self.cfg.space.leaf_cell(&msg.loc).index;
        let snap = self.snapshot();
        let shard = snap.owner_of(snap.route_leaf(leaf, &self.cfg)).id;
        drop(snap);
        match self.ingest.enqueue(&self.ingest_cfg, shard, msg) {
            EnqueueResult::Queued { depth } => Ok(SubmitOutcome::Enqueued { shard, depth }),
            EnqueueResult::Batch(batch) => {
                self.update_batch(&batch)?;
                let flush_ts = Timestamp(batch.iter().map(|m| m.ts.0).max().unwrap_or(0));
                self.ingest
                    .note_flush(FlushKind::Size, shard, &batch, flush_ts);
                Ok(SubmitOutcome::Flushed {
                    shard,
                    batch: batch.len(),
                })
            }
            EnqueueResult::Full { depth } => match self.ingest_cfg.policy {
                BackpressurePolicy::Reject => Err(MoistError::Backpressure { shard, depth }),
                BackpressurePolicy::Shed => Ok(SubmitOutcome::ShedOverload { shard }),
            },
        }
    }

    /// Flushes every ingest queue whose oldest buffered message has aged
    /// past the flush deadline at (virtual) `now` — the "or deadline"
    /// half of the flush trigger, driven by client ticks rather than a
    /// background thread so the cost model stays deterministic. Returns
    /// the number of updates applied.
    pub fn flush_due(&self, now: Timestamp) -> Result<usize> {
        let mut flushed = 0usize;
        for (shard, batch) in self.ingest.take_due(&self.ingest_cfg, now) {
            self.update_batch(&batch)?;
            self.ingest
                .note_flush(FlushKind::Deadline, shard, &batch, now);
            flushed += batch.len();
        }
        Ok(flushed)
    }

    /// Drains every ingest queue unconditionally, applying everything
    /// buffered. Called by every epoch bump
    /// ([`add_shard`](MoistCluster::add_shard) /
    /// [`remove_shard`](MoistCluster::remove_shard) /
    /// [`rebalance`](MoistCluster::rebalance)) right after its snapshot
    /// publishes — in-flight batches re-route to the new owners instead
    /// of being stranded behind a dead shard's queue key — and by
    /// clients at end-of-stream. Returns the number of updates applied.
    pub fn drain_ingest(&self) -> Result<usize> {
        let mut flushed = 0usize;
        for (shard, batch) in self.ingest.take_all() {
            self.update_batch(&batch)?;
            let flush_ts = Timestamp(batch.iter().map(|m| m.ts.0).max().unwrap_or(0));
            self.ingest
                .note_flush(FlushKind::Drain, shard, &batch, flush_ts);
            flushed += batch.len();
        }
        Ok(flushed)
    }

    /// FLAG-tuned k-nearest-neighbour query.
    ///
    /// When the candidate ring (query cell + edge neighbours at the FLAG
    /// level) crosses a shard-ownership boundary, the ring's scans scatter
    /// across the owning shards in parallel and the partials merge; when
    /// the merged ring cannot *prove* the k-th neighbour (its distance
    /// exceeds the ring's covered radius) the query falls back to the
    /// exact single-shard frontier search, so the answer is always the
    /// plain Algorithm 2 answer. Rings on one shard skip the scatter
    /// entirely — the current anchor-routed path.
    pub fn nn(&self, center: Point, k: usize, at: Timestamp) -> Result<(Vec<Neighbor>, NnStats)> {
        let leaf = self.cfg.space.leaf_cell(&center).index;
        let snap = self.snapshot();
        let (entry, follower) = self.read_replica(&snap, snap.route_leaf(leaf, &self.cfg));
        let anchor = Arc::clone(entry);
        drop(snap);
        if follower {
            self.note_replica_read(&anchor);
        }
        let level = { anchor.server.read().flag_level(&center, at)? };
        self.nn_scatter(center, k, at, level, &anchor)
    }

    /// The scatter-or-fallback NN body shared by [`nn`](MoistCluster::nn).
    fn nn_scatter(
        &self,
        center: Point,
        k: usize,
        at: Timestamp,
        nn_level: u8,
        anchor: &Arc<ShardEntry>,
    ) -> Result<(Vec<Neighbor>, NnStats)> {
        let ring = nn_candidate_ring(&self.cfg, &center, nn_level);
        let snap = self.snapshot();
        // Group the ring's cells by the replica that should *read* them:
        // the least-loaded member of each cell's replica set. At
        // `replicas == 1` this is exactly the old owner grouping; above
        // it, a hot cell's reads spread over its followers, and cells
        // whose replica sets overlap can collapse onto one shard (fewer
        // partials, same exact merge).
        let mut by_reader: Vec<(Arc<ShardEntry>, Vec<CellId>, u64)> = Vec::new();
        // Slot map keyed by shard id: O(ring) grouping (the linear probe
        // this replaces was O(ring²)) while by_reader keeps first-seen
        // order, which the scatter and merge below rely on.
        let mut slot_of: HashMap<u64, usize> = HashMap::new();
        for &cell in &ring {
            let key = snap.route_leaf(self.leaf_representative(cell), &self.cfg);
            let (reader, follower) = self.read_replica(&snap, key);
            let follower = u64::from(follower);
            let slot = *slot_of.entry(reader.id).or_insert_with(|| {
                by_reader.push((Arc::clone(reader), Vec::new(), 0));
                by_reader.len() - 1
            });
            by_reader[slot].1.push(cell);
            by_reader[slot].2 += follower;
        }
        if k == 0 || by_reader.len() <= 1 {
            // The whole ring reads on one shard: plain Algorithm 2 there.
            let server = anchor.server.read();
            return server.nn_at_level(center, k, at, nn_level);
        }

        let opts = NnOptions::new(k, nn_level);
        let tasks: Vec<_> = by_reader
            .into_iter()
            .map(|(entry, cells, followed)| {
                // The partial genuinely runs now: charge the
                // follower-routed cells to their serving shard.
                for _ in 0..followed {
                    self.note_replica_read(&entry);
                }
                move || -> Result<NnPartial> {
                    let server = entry.server.read();
                    server.nn_partial(&cells, center, at, &opts)
                }
            })
            .collect();
        let mut parts = Vec::new();
        for outcome in self.query_pool.scatter(tasks) {
            parts.push(outcome?);
        }
        let (merged, mut stats) = merge_ring_partials(&self.cfg, &center, &ring, parts, &opts);
        if let Some(nn) = merged {
            // One client query: the scattered partials are not counted
            // individually, so credit the anchor shard with the query.
            anchor.server.read().note_query_served();
            return Ok((nn, stats));
        }
        // The replayed frontier escaped the ring (sparse cells, or a
        // school/velocity bound the ring cannot prove): run the exact
        // frontier search on the anchor. The scattered scan stays on the
        // bill — the client saw both phases.
        let (nn, fallback) = {
            let server = anchor.server.read();
            server.nn_at_level(center, k, at, nn_level)?
        };
        stats.cells_scanned += fallback.cells_scanned;
        stats.leaders_fetched += fallback.leaders_fetched;
        stats.cost_us += fallback.cost_us;
        Ok((nn, stats))
    }

    /// k-NN at a fixed search level, routed like [`MoistCluster::nn`].
    pub fn nn_at_level(
        &self,
        center: Point,
        k: usize,
        at: Timestamp,
        nn_level: u8,
    ) -> Result<(Vec<Neighbor>, NnStats)> {
        let leaf = self.cfg.space.leaf_cell(&center).index;
        let snap = self.snapshot();
        let (entry, follower) = self.read_replica(&snap, snap.route_leaf(leaf, &self.cfg));
        let entry = Arc::clone(entry);
        drop(snap);
        if follower {
            self.note_replica_read(&entry);
        }
        let server = entry.server.read();
        server.nn_at_level(center, k, at, nn_level)
    }

    /// Region query, scatter-gathered across the owning shards.
    ///
    /// The merged leaf ranges are planned once, owner-sliced (an exact
    /// partition — see [`slice_ranges_by_owner`]), scanned in parallel on
    /// the [`QueryPool`] (one slice per owning shard, each under its own
    /// shard lock), and merged: hits move into one list and each object
    /// dedups exactly once at the merge. `cost_us` in the returned stats
    /// is the client-visible latency of the fan-out: within a scatter
    /// round the slices overlap, so the round costs its *slowest* partial,
    /// and the (rare, churn-only) re-route rounds run back to back, so
    /// rounds *add*. `shards_scattered` counts distinct shards that
    /// scanned. A plan whose ranges all belong to one shard runs inline on
    /// that shard, no pool hop.
    ///
    /// Workers re-validate their slice against the freshest membership
    /// snapshot (re-slicing it with the same property-tested
    /// [`slice_ranges_by_owner`] the dispatch used), so an epoch bump
    /// mid-scatter re-routes only the slices whose cells actually
    /// migrated; reads are correct on any shard (one shared store), the
    /// re-route just keeps load on the current owners.
    pub fn region(
        &self,
        rect: &Rect,
        at: Timestamp,
        margin: f64,
    ) -> Result<(Vec<Neighbor>, RegionStats)> {
        let clustering_level = self.cfg.clustering_level;
        let leaf_level = self.cfg.space.leaf_level;
        let mut pending = plan_region_ranges(&self.cfg, rect, margin);
        let mut parts: Vec<RegionPartial> = Vec::new();
        let mut scanned_shards: std::collections::HashSet<u64> = std::collections::HashSet::new();
        let mut cost_us = 0.0f64;
        let mut rebalanced = 0usize;
        let mut round = 0usize;
        while !pending.is_empty() {
            round += 1;
            let revalidate = round < MAX_REROUTE_ROUNDS;
            let snap = self.snapshot();
            let placement = snap.placement();
            let slices = if snap.replicas > 1 && snap.shards.len() > 1 {
                // Replica-aware slicing: each routing key's slice goes to
                // the least-loaded member of its replica set (one elapsed
                // snapshot per shard, taken once per round), so a
                // query-heavy mix spreads a hot key's scans over its
                // followers instead of pinning the primary.
                let loads: HashMap<u64, f64> = snap
                    .shards
                    .iter()
                    .map(|e| (e.id, e.server.read().elapsed_us()))
                    .collect();
                slice_ranges_by_replicas(
                    &pending,
                    clustering_level,
                    leaf_level,
                    &placement,
                    &snap.splits,
                    snap.replicas,
                    |id| loads.get(&id).copied().unwrap_or(f64::INFINITY),
                )
            } else {
                slice_ranges_by_placement(
                    &pending,
                    clustering_level,
                    leaf_level,
                    &placement,
                    &snap.splits,
                )
            };
            // Balancing pass: the largest owner slices subdivide across
            // idle shards (any shard can scan any range), priced by the
            // load layer's per-cell demand so a short-but-hot range counts
            // as expensive. The client then waits for the *mean*-ish
            // slice, not the largest ownership share.
            let density = self.cell_density.read().clone();
            let scan_price = self.cell_scan_cost.read().clone();
            let shift = 2 * (leaf_level - clustering_level) as u64;
            let cost_of = move |start: u64, end: u64| -> f64 {
                let mut cost = 0.0;
                let mut s = start;
                while s < end {
                    let cell = s >> shift;
                    let e = end.min((cell + 1) << shift);
                    let frac = (e - s) as f64 / (1u64 << shift) as f64;
                    let price = match scan_price.get(&cell) {
                        // Measured beats modelled: cells the fan-out has
                        // scanned before price at their learned per-cell
                        // scan cost (merged across shards at rebalance),
                        // uncapped — a measurement needs no guard against
                        // overstating itself.
                        Some(&p) => p,
                        // Never-scanned cells fall back to the demand
                        // density *prior*, capped: schooling collapses a
                        // hot cell's objects into few leader rows, so
                        // update rate overstates scan cost — an uncapped
                        // density would make the balancer dedicate shards
                        // to cheap-to-scan hot cells and cram the real
                        // rows together elsewhere.
                        None => {
                            1.0 + density
                                .get(&cell)
                                .copied()
                                .unwrap_or(0.0)
                                .min(MAX_SCAN_DENSITY)
                        }
                    };
                    cost += frac * price;
                    s = e;
                }
                cost
            };
            // Scan capacity is uniform — any shard reads the shared store
            // equally fast — so the balancer gets unit shares. Placement
            // weights only shape *ownership* (update locality): a shard
            // up-weighted because it was idle on updates may own half the
            // map, and its slice is exactly what this pass subdivides.
            let shares: Vec<(u64, f64)> = placement.iter().map(|w| (w.id, 1.0)).collect();
            let (slices, moved) = balance_slices(slices, &shares, &cost_of);
            rebalanced += moved;
            pending = Vec::new();
            let rect = *rect;
            let dispatch_epoch = snap.epoch;
            let tasks: Vec<_> = slices
                .into_iter()
                .map(|(id, ranges)| {
                    let entry = Arc::clone(snap.entry_by_id(id).expect("sliced to a live owner"));
                    let membership = Arc::clone(&self.membership);
                    move || -> Result<(u64, RegionPartial, RangeSet)> {
                        let (mine, migrated) = if revalidate {
                            // Freshest snapshot; the read guard drops
                            // before the shard lock is taken, so there is
                            // no ordering cycle with add/remove_shard
                            // (which hold the write lock while locking
                            // shards for the handoff). Same epoch — the
                            // common, churn-free case — means the dispatch
                            // slicing (including deliberate balancing
                            // moves) is still current: skip re-hashing.
                            let now = membership.read().clone();
                            if now.epoch == dispatch_epoch {
                                (ranges, Vec::new())
                            } else {
                                // An epoch bump raced the scatter: hand
                                // back everything this worker no longer
                                // owns (balanced-in pieces included — the
                                // gather re-balances them), keep the rest.
                                let mut mine = Vec::new();
                                let mut migrated = Vec::new();
                                // Re-slice with this worker's load pinned
                                // to zero: any piece whose *current*
                                // replica set still contains this shard is
                                // kept (a replica read is as correct as a
                                // primary read — one shared store); only
                                // pieces this shard no longer replicates
                                // hand back. At `replicas == 1` the set is
                                // the owner alone, so this degenerates to
                                // the exact owner re-slicing.
                                for (reader, slice) in slice_ranges_by_replicas(
                                    &ranges,
                                    clustering_level,
                                    leaf_level,
                                    &now.placement(),
                                    &now.splits,
                                    now.replicas,
                                    |id| if id == entry.id { 0.0 } else { 1.0 },
                                ) {
                                    if reader == entry.id {
                                        mine = slice;
                                    } else {
                                        migrated.extend(slice);
                                    }
                                }
                                (mine, migrated)
                            }
                        } else {
                            (ranges, Vec::new())
                        };
                        if mine.is_empty() {
                            return Ok((entry.id, RegionPartial::default(), migrated));
                        }
                        let server = entry.server.read();
                        let part = server.region_partial(&mine, &rect, at)?;
                        Ok((entry.id, part, migrated))
                    }
                })
                .collect();
            let mut round_cost = 0.0f64;
            for outcome in self.query_pool.scatter(tasks) {
                let (id, part, migrated) = outcome?;
                round_cost = round_cost.max(part.stats.cost_us);
                if part.stats.shards_scattered > 0 {
                    scanned_shards.insert(id);
                    parts.push(part);
                }
                pending.extend(migrated);
            }
            // Rounds run sequentially: the client waits for each round's
            // slowest slice in turn.
            cost_us += round_cost;
        }
        let (hits, mut stats) = merge_region_partials(parts);
        stats.cost_us = cost_us;
        stats.shards_scattered = scanned_shards.len();
        stats.slices_rebalanced = rebalanced;
        Ok((hits, stats))
    }

    /// The pre-fan-out region path: the whole query runs on the single
    /// shard owning the rectangle's centre cell. Kept as the baseline the
    /// `fig15_fanout` bench compares scatter-gather against (and the
    /// right call when a deployment pins queries for cache locality).
    pub fn region_anchor(
        &self,
        rect: &Rect,
        at: Timestamp,
        margin: f64,
    ) -> Result<(Vec<Neighbor>, RegionStats)> {
        let center = rect.center();
        let leaf = self.cfg.space.leaf_cell(&center).index;
        let snap = self.snapshot();
        let (entry, follower) = self.read_replica(&snap, snap.route_leaf(leaf, &self.cfg));
        let entry = Arc::clone(entry);
        drop(snap);
        if follower {
            self.note_replica_read(&entry);
        }
        let server = entry.server.read();
        server.region(rect, at, margin)
    }

    /// Current position of one object, routed by object id (any replica
    /// of the id's routing key serves it from the shared store).
    pub fn position(&self, oid: ObjectId, at: Timestamp) -> Result<Option<Point>> {
        let snap = self.snapshot();
        let (entry, follower) = self.read_replica(&snap, oid.0);
        let entry = Arc::clone(entry);
        drop(snap);
        if follower {
            self.note_replica_read(&entry);
        }
        let server = entry.server.read();
        server.position(oid, at)
    }

    /// Runs lazy clustering on one shard by position: only the cells that
    /// shard owns and that are due fire, so across shards each cell is
    /// clustered by exactly one server. Workers call this for "their"
    /// shard on a tick; a worker racing a shard removal gets
    /// [`MoistError::NoSuchShard`], not a panic.
    pub fn run_due_clustering_shard(&self, shard: usize, now: Timestamp) -> Result<ClusterReport> {
        let entry = self.entry_at(shard)?;
        let mut server = entry.server.write();
        server.run_due_clustering(now)
    }

    /// Runs lazy clustering on every shard in turn (single-driver mode).
    pub fn run_due_clustering(&self, now: Timestamp) -> Result<ClusterReport> {
        let snap = self.snapshot();
        let mut total = ClusterReport::default();
        for entry in &snap.shards {
            total.merge_from(&entry.server.write().run_due_clustering(now)?);
        }
        Ok(total)
    }

    /// Ages out cold records. The aging columns are table-global, so this
    /// runs once (through the first live shard), not once per shard.
    pub fn age_data(&self, now: Timestamp) -> Result<usize> {
        let entry = self.entry_at(0)?;
        let mut server = entry.server.write();
        server.age_data(now)
    }

    /// Aggregate operation counters across all shards, including shards
    /// that have since left the tier (so a failover never "loses" the
    /// updates the departed shard absorbed).
    pub fn stats(&self) -> ServerStats {
        let snap = self.snapshot();
        let mut total = self.retired.lock().stats();
        for entry in &snap.shards {
            total.merge_from(&entry.server.read().stats());
        }
        total
    }

    /// Per-shard operation counters for the live shards, in position
    /// order.
    pub fn shard_stats(&self) -> Vec<ServerStats> {
        let snap = self.snapshot();
        snap.shards
            .iter()
            .map(|e| e.server.read().stats())
            .collect()
    }

    /// Per-shard virtual elapsed microseconds for the live shards, in
    /// position order.
    pub fn shard_elapsed_us(&self) -> Vec<f64> {
        let snap = self.snapshot();
        snap.shards
            .iter()
            .map(|e| e.server.read().elapsed_us())
            .collect()
    }

    /// Virtual elapsed microseconds of the busiest live shard — the tier's
    /// makespan, since shards consume store time in parallel.
    pub fn max_elapsed_us(&self) -> f64 {
        self.shard_elapsed_us().into_iter().fold(0.0, f64::max)
    }

    /// Sum of the live shards' virtual elapsed microseconds (total store
    /// work).
    pub fn total_elapsed_us(&self) -> f64 {
        self.shard_elapsed_us().into_iter().sum()
    }

    /// Resets every live shard's session clock (benches do this after
    /// warm-up) along with the rebalance utilization baseline, which is
    /// measured against those clocks.
    pub fn reset_clocks(&self) {
        let snap = self.snapshot();
        for entry in &snap.shards {
            entry.server.write().session_mut().reset();
        }
        self.rebalance_baseline.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moist_spatial::Velocity;

    fn msg(oid: u64, x: f64, y: f64, vx: f64, secs: f64) -> UpdateMessage {
        UpdateMessage {
            oid: ObjectId(oid),
            loc: Point::new(x, y),
            vel: Velocity::new(vx, 0.0),
            ts: Timestamp::from_secs_f64(secs),
        }
    }

    /// Owner positions of every clustering cell: asserts exactly one live
    /// shard owns each cell and returns the owners.
    fn sole_owners(cluster: &MoistCluster) -> Vec<usize> {
        let cells = cells_at_level(cluster.config().clustering_level);
        (0..cells)
            .map(|index| {
                let owners: Vec<usize> = (0..cluster.num_shards())
                    .filter(|&i| {
                        cluster
                            .with_shard(i, |s| s.scheduler().owns(index))
                            .unwrap()
                    })
                    .collect();
                assert_eq!(owners.len(), 1, "cell {index} owners: {owners:?}");
                owners[0]
            })
            .collect()
    }

    #[test]
    fn routes_by_clustering_cell_and_serves_cross_shard_queries() {
        let store = Bigtable::new();
        let cfg = MoistConfig::default();
        let cluster = MoistCluster::new(&store, cfg, 4).unwrap();
        // Spread objects over the whole map so several shards see traffic.
        for i in 0..64u64 {
            let x = 15.0 + 970.0 * (i % 8) as f64 / 8.0;
            let y = 15.0 + 970.0 * (i / 8) as f64 / 8.0;
            cluster.update(&msg(i, x, y, 1.0, 0.0)).unwrap();
        }
        let stats = cluster.stats();
        assert_eq!(stats.updates, 64);
        assert_eq!(stats.registered, 64);
        assert_eq!(cluster.object_estimate(), 64);
        let active = cluster
            .shard_stats()
            .iter()
            .filter(|s| s.updates > 0)
            .count();
        assert!(active >= 2, "hash routing must spread load, got {active}");
        // A query lands on one shard but sees every shard's writes.
        let (nn, _) = cluster
            .nn(Point::new(500.0, 500.0), 64, Timestamp::ZERO)
            .unwrap();
        assert_eq!(nn.len(), 64);
        // Object-keyed reads work for every object from any routing.
        for i in [0u64, 31, 63] {
            assert!(cluster
                .position(ObjectId(i), Timestamp::ZERO)
                .unwrap()
                .is_some());
        }
    }

    #[test]
    fn same_cell_updates_always_hit_the_same_shard() {
        let store = Bigtable::new();
        let cfg = MoistConfig::default();
        let cluster = MoistCluster::new(&store, cfg, 5).unwrap();
        // Points in one clustering cell route identically; the routing
        // agrees with scheduler ownership, so the shard applying a cell's
        // updates is also the only one clustering it.
        let p = Point::new(123.0, 456.0);
        let shard = cluster.shard_for_point(&p);
        let cell = cfg.space.cell_at(cfg.clustering_level, &p);
        assert_eq!(cluster.shard_for_cell(cell), shard);
        let leaf = cfg.space.leaf_cell(&p);
        assert_eq!(cluster.shard_for_cell(leaf), shard);
        assert!(cluster
            .with_shard(shard, |s| s.scheduler().owns(cell.index))
            .unwrap());
        for other in 0..cluster.num_shards() {
            if other != shard {
                assert!(!cluster
                    .with_shard(other, |s| s.scheduler().owns(cell.index))
                    .unwrap());
            }
        }
    }

    #[test]
    fn clustering_partition_covers_level_exactly_once() {
        let store = Bigtable::new();
        let cfg = MoistConfig {
            clustering_level: 3,
            cluster_interval_secs: 10.0,
            ..MoistConfig::default()
        };
        let cluster = MoistCluster::new(&store, cfg, 4).unwrap();
        let owned: usize = (0..cluster.num_shards())
            .map(|i| {
                cluster
                    .with_shard(i, |s| s.scheduler().owned_count())
                    .unwrap()
            })
            .sum();
        assert_eq!(owned as u64, cells_at_level(cfg.clustering_level));
        // One sweep past every staggered deadline: each cell fires once,
        // on its owner, so total runs equal the cell count exactly.
        let now = Timestamp::from_secs(25);
        for i in 0..cluster.num_shards() {
            cluster.run_due_clustering_shard(i, now).unwrap();
        }
        assert_eq!(
            cluster.stats().cluster_runs,
            cells_at_level(cfg.clustering_level)
        );
    }

    #[test]
    fn schools_form_and_shed_through_the_tier() {
        let store = Bigtable::new();
        let cfg = MoistConfig {
            epsilon: 50.0,
            clustering_level: 2,
            ..MoistConfig::default()
        };
        let cluster = MoistCluster::new(&store, cfg, 3).unwrap();
        // Two co-moving objects in one cell.
        cluster.update(&msg(1, 100.0, 100.0, 1.0, 0.0)).unwrap();
        cluster.update(&msg(2, 101.0, 100.0, 1.0, 0.0)).unwrap();
        cluster
            .run_due_clustering(Timestamp::from_secs(30))
            .unwrap();
        for t in 1..=10u64 {
            let x = 101.0 + t as f64;
            cluster.update(&msg(2, x, 100.0, 1.0, t as f64)).unwrap();
        }
        let stats = cluster.stats();
        assert!(stats.shed >= 9, "stats: {stats:?}");
        assert!(stats.balanced(), "counters must sum: {stats:?}");
    }

    #[test]
    fn add_shard_migrates_only_the_joiners_wins_and_keeps_phase() {
        let store = Bigtable::new();
        let cfg = MoistConfig {
            clustering_level: 4, // 256 cells
            cluster_interval_secs: 10.0,
            ..MoistConfig::default()
        };
        let cluster = MoistCluster::new(&store, cfg, 3).unwrap();
        assert_eq!(cluster.epoch(), 0);
        let cells = cells_at_level(cfg.clustering_level);
        // Record each cell's owner *id* and deadline before the join.
        let owners_before = sole_owners(&cluster);
        let before: Vec<(u64, u64)> = (0..cells)
            .map(|index| {
                let pos = owners_before[index as usize];
                let id = cluster.shard_ids()[pos];
                let due = cluster
                    .with_shard(pos, |s| s.scheduler().deadline_of(index))
                    .unwrap()
                    .unwrap();
                (id, due)
            })
            .collect();

        let joiner = cluster.add_shard().unwrap();
        assert_eq!(cluster.num_shards(), 4);
        assert_eq!(cluster.epoch(), 1);
        assert!(cluster.shard_ids().contains(&joiner));

        let owners_after = sole_owners(&cluster);
        let mut migrated = 0u64;
        for index in 0..cells {
            let pos = owners_after[index as usize];
            let id_after = cluster.shard_ids()[pos];
            let due_after = cluster
                .with_shard(pos, |s| s.scheduler().deadline_of(index))
                .unwrap()
                .unwrap();
            let (id_before, due_before) = before[index as usize];
            assert_eq!(due_after, due_before, "cell {index} must keep its phase");
            if id_after != id_before {
                migrated += 1;
                assert_eq!(id_after, joiner, "only the joiner may steal cells");
            }
        }
        // ~cells/(N+1) migrate; generous statistical slack, but far below
        // the near-total remap a modular hash would cause.
        assert!(migrated > 0, "the joiner must win some cells");
        assert!(
            migrated <= cells / 4 + cells / 8,
            "migrated {migrated} of {cells} — not a minimal remap"
        );
    }

    #[test]
    fn remove_shard_reassigns_only_the_departed_cells() {
        let store = Bigtable::new();
        let cfg = MoistConfig {
            epsilon: 50.0,
            clustering_level: 3, // 64 cells
            cluster_interval_secs: 10.0,
            ..MoistConfig::default()
        };
        let cluster = MoistCluster::new(&store, cfg, 4).unwrap();
        for i in 0..64u64 {
            let x = 15.0 + 970.0 * (i % 8) as f64 / 8.0;
            let y = 15.0 + 970.0 * (i / 8) as f64 / 8.0;
            cluster.update(&msg(i, x, y, 1.0, 0.0)).unwrap();
        }
        let cells = cells_at_level(cfg.clustering_level);
        let owners_before: Vec<u64> = {
            let owners = sole_owners(&cluster);
            owners.iter().map(|&pos| cluster.shard_ids()[pos]).collect()
        };
        let victim = cluster.shard_ids()[1];
        let victim_updates = cluster.shard_stats()[1].updates;
        cluster.remove_shard(victim).unwrap();
        assert_eq!(cluster.num_shards(), 3);
        assert_eq!(cluster.epoch(), 1);
        assert!(!cluster.shard_ids().contains(&victim));

        let owners_after = sole_owners(&cluster);
        for index in 0..cells {
            let id_after = cluster.shard_ids()[owners_after[index as usize]];
            let id_before = owners_before[index as usize];
            if id_before != victim {
                assert_eq!(id_after, id_before, "cell {index} must not move");
            } else {
                assert_ne!(id_after, victim);
            }
        }
        // The departed shard's updates stay in the aggregate…
        let agg = cluster.stats();
        assert_eq!(agg.updates, 64);
        assert!(victim_updates > 0, "victim should have taken traffic");
        // …and the whole map still answers queries.
        let (nn, _) = cluster
            .nn(Point::new(500.0, 500.0), 64, Timestamp::ZERO)
            .unwrap();
        assert_eq!(nn.len(), 64);
    }

    /// Deterministic xorshift scatter in (0, 1000)².
    fn scattered(n: u64) -> Vec<(u64, f64, f64)> {
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|i| (i, next() * 1000.0, next() * 1000.0))
            .collect()
    }

    #[test]
    fn scattered_region_matches_anchor_routing_and_fans_out() {
        let store = Bigtable::new();
        let cfg = MoistConfig {
            clustering_level: 3, // 64 cells spread over the shards
            ..MoistConfig::default()
        };
        let cluster = MoistCluster::new(&store, cfg, 4).unwrap();
        for &(i, x, y) in &scattered(200) {
            cluster.update(&msg(i, x, y, 0.0, 0.0)).unwrap();
        }
        let rects = [
            cfg.space.world,
            Rect::new(100.0, 100.0, 900.0, 450.0),
            Rect::new(700.0, 700.0, 780.0, 790.0),
        ];
        for rect in &rects {
            let (anchor, _) = cluster.region_anchor(rect, Timestamp::ZERO, 0.0).unwrap();
            let (fanout, stats) = cluster.region(rect, Timestamp::ZERO, 0.0).unwrap();
            let a: Vec<u64> = anchor.iter().map(|n| n.oid.0).collect();
            let f: Vec<u64> = fanout.iter().map(|n| n.oid.0).collect();
            assert_eq!(a, f, "fan-out must return the anchor answer");
            let mut unique = f.clone();
            unique.dedup();
            assert_eq!(unique.len(), f.len(), "no duplicated objects");
            assert!(stats.ranges_scanned >= 1);
        }
        // The whole map genuinely scatters across several shards, and its
        // client-visible cost is the slowest slice, below the serialized
        // anchor scan.
        let (_, anchor_stats) = cluster
            .region_anchor(&cfg.space.world, Timestamp::ZERO, 0.0)
            .unwrap();
        let (_, fan_stats) = cluster
            .region(&cfg.space.world, Timestamp::ZERO, 0.0)
            .unwrap();
        assert!(
            fan_stats.shards_scattered >= 2,
            "whole-map query must scatter, got {fan_stats:?}"
        );
        assert!(
            fan_stats.cost_us < anchor_stats.cost_us,
            "overlapped slices must beat the serialized scan: {} vs {}",
            fan_stats.cost_us,
            anchor_stats.cost_us
        );
    }

    #[test]
    fn scattered_nn_agrees_with_the_single_shard_frontier_search() {
        let store = Bigtable::new();
        let cfg = MoistConfig {
            epsilon: 50.0,
            clustering_level: 3,
            ..MoistConfig::default()
        };
        let cluster = MoistCluster::new(&store, cfg, 5).unwrap();
        for &(i, x, y) in &scattered(300) {
            cluster.update(&msg(i, x, y, 0.0, 0.0)).unwrap();
        }
        // Form schools: zero-velocity co-located leaders merge, so many
        // probes now return followers displaced up to a clustering-cell
        // diagonal from their leader's spatial entry — exactly the shape
        // that would diverge if the merge trusted cell distances instead
        // of replaying the frontier.
        cluster
            .run_due_clustering(Timestamp::from_secs(25))
            .unwrap();
        let queries_before = cluster.stats().nn_queries;
        let oracle = MoistServer::new(&store, cfg).unwrap();
        // Probe points include cell-boundary huggers (the scatter case)
        // and interior points (the single-shard case).
        let probes = [
            Point::new(500.0, 500.0),
            Point::new(499.9, 250.1),
            Point::new(125.3, 875.2),
            Point::new(3.0, 3.0),
            Point::new(750.1, 749.9),
        ];
        let mut total = 0u64;
        for p in &probes {
            for k in [1usize, 5, 20] {
                let (got, _) = cluster.nn(*p, k, Timestamp::ZERO).unwrap();
                let level = oracle.flag_level(p, Timestamp::ZERO).unwrap();
                let (want, _) = oracle.nn_at_level(*p, k, Timestamp::ZERO, level).unwrap();
                let got_ids: Vec<u64> = got.iter().map(|n| n.oid.0).collect();
                let want_ids: Vec<u64> = want.iter().map(|n| n.oid.0).collect();
                assert_eq!(got_ids, want_ids, "probe {p:?} k={k}");
                total += 1;
            }
        }
        // Every client query counts exactly once, whichever path (pure
        // scatter, scatter + fallback, or single-shard) served it.
        assert_eq!(cluster.stats().nn_queries - queries_before, total);
    }

    /// Asserts the live shards' schedulers own every routing key (unsplit
    /// cells + children of split cells) exactly once, and that each key's
    /// owner agrees with the tier's routing.
    fn assert_routing_partition(cluster: &MoistCluster) {
        let cfg = *cluster.config();
        let split: std::collections::HashSet<u64> = cluster.split_cells().into_iter().collect();
        let mut keys = Vec::new();
        for cell in 0..cells_at_level(cfg.clustering_level) {
            if split.contains(&cell) {
                keys.extend(SplitTable::child_keys(cell));
            } else {
                keys.push(cell);
            }
        }
        for key in keys {
            let owners: Vec<usize> = (0..cluster.num_shards())
                .filter(|&i| cluster.with_shard(i, |s| s.scheduler().owns(key)).unwrap())
                .collect();
            assert_eq!(owners.len(), 1, "key {key:#x} owners: {owners:?}");
            let cell = crate::cluster::routing_key_cell(key, cfg.clustering_level);
            assert_eq!(
                cluster.shard_for_cell(cell),
                owners[0],
                "routing and scheduling disagree on key {key:#x}"
            );
        }
    }

    #[test]
    fn rebalance_splits_hot_cells_and_downweights_hot_shards() {
        let store = Bigtable::new();
        let cfg = MoistConfig {
            epsilon: 50.0,
            clustering_level: 3, // 64 cells
            cluster_interval_secs: 10.0,
            ..MoistConfig::default()
        };
        let cluster = MoistCluster::new(&store, cfg, 4).unwrap();
        let hot = Point::new(437.0, 437.0);
        let hot_cell = cfg.space.cell_at(cfg.clustering_level, &hot).index;
        let hot_shard_before = cluster.shard_for_point(&hot);
        // 80% of updates hammer one cell, the rest scatter; timestamps
        // advance so the EWMA windows fold.
        let mut oid = 0u64;
        for sec in 0..40u64 {
            for i in 0..25u64 {
                let (x, y) = if i < 20 {
                    (hot.x + (i % 5) as f64, hot.y + (i / 5) as f64)
                } else {
                    (
                        31.0 + 211.0 * (oid % 4) as f64,
                        31.0 + 311.0 * (oid % 3) as f64,
                    )
                };
                cluster
                    .update(&msg(oid % 600, x, y, 0.0, sec as f64 + i as f64 / 25.0))
                    .unwrap();
                oid += 1;
            }
        }
        let before_skew = cluster
            .cluster_stats(Timestamp::from_secs(40))
            .utilization_skew();
        let report = cluster.rebalance(Timestamp::from_secs(40)).unwrap();
        assert_eq!(report.epoch, 1, "a skewed fleet must publish a new epoch");
        assert!(
            report.split_cells.contains(&hot_cell),
            "the hot cell {hot_cell} must split: {report:?}"
        );
        assert!(report.migrated_keys > 0);
        assert!(cluster.split_cells().contains(&hot_cell));
        // The hot shard measured busiest: its weight must have dropped
        // below the fleet mean (weights are normalized to mean 1).
        let weights = cluster.shard_weights();
        assert!(
            weights[hot_shard_before] < 1.0,
            "hot shard kept weight {weights:?}"
        );
        // Ownership is still an exact partition of the routing keys, and
        // the stats layer exposes what moved.
        assert_routing_partition(&cluster);
        let stats = cluster.cluster_stats(Timestamp::from_secs(40));
        assert_eq!(stats.split_cells, cluster.split_cells());
        assert_eq!(stats.split_migrations, report.migrated_keys);
        assert!(stats.shards.iter().any(|s| s.update_rate > 0.0));
        let _ = before_skew; // skew improvement is pinned by fig16_skew
                             // The tier still answers exactly: every object is found where a
                             // fresh single-server oracle finds it.
        let oracle = MoistServer::new(&store, cfg).unwrap();
        for probe in [hot, Point::new(100.0, 500.0), Point::new(900.0, 80.0)] {
            let (got, _) = cluster.nn(probe, 5, Timestamp::from_secs(40)).unwrap();
            let level = oracle.flag_level(&probe, Timestamp::from_secs(40)).unwrap();
            let (want, _) = oracle
                .nn_at_level(probe, 5, Timestamp::from_secs(40), level)
                .unwrap();
            let got_ids: Vec<u64> = got.iter().map(|n| n.oid.0).collect();
            let want_ids: Vec<u64> = want.iter().map(|n| n.oid.0).collect();
            assert_eq!(got_ids, want_ids, "probe {probe:?}");
        }
        // Updates keep landing after the rebalance, on the new owners.
        let agg_before = cluster.stats().updates;
        cluster
            .update(&msg(9_999, hot.x, hot.y, 0.0, 41.0))
            .unwrap();
        assert_eq!(cluster.stats().updates, agg_before + 1);
        // A follow-up rebalance on the (now quieter) fleet must keep the
        // partition exact even if it moves more keys.
        cluster.rebalance(Timestamp::from_secs(80)).unwrap();
        assert_routing_partition(&cluster);
    }

    #[test]
    fn rebalance_is_a_noop_on_a_level_fleet() {
        let store = Bigtable::new();
        let cfg = MoistConfig {
            clustering_level: 3,
            ..MoistConfig::default()
        };
        let cluster = MoistCluster::new(&store, cfg, 4).unwrap();
        // Perfectly uniform traffic over the whole map.
        for sec in 0..30u64 {
            for i in 0..64u64 {
                let x = 8.0 + 984.0 * (i % 8) as f64 / 8.0;
                let y = 8.0 + 984.0 * (i / 8) as f64 / 8.0;
                cluster
                    .update(&msg(i, x, y, 0.0, sec as f64 + i as f64 / 64.0))
                    .unwrap();
            }
        }
        let report = cluster.rebalance(Timestamp::from_secs(30)).unwrap();
        assert!(
            report.split_cells.is_empty(),
            "uniform load must not split: {report:?}"
        );
        assert!(cluster.split_cells().is_empty());
        assert_routing_partition(&cluster);
        // Epoch may bump only if utilization genuinely wobbled past the
        // dead-band; either way no key may be double-owned and weights
        // stay within the clamp.
        for w in cluster.shard_weights() {
            assert!((0.1..=8.0).contains(&w), "weight {w} out of bounds");
        }
    }

    /// Pins that a failing post-publish ingest drain surfaces through
    /// `rebalance` instead of being swallowed: a poisoned buffered update
    /// must turn the placement step into an error the caller sees.
    #[test]
    fn rebalance_propagates_a_failing_ingest_drain() {
        let store = Bigtable::new();
        let cfg = MoistConfig {
            epsilon: 50.0,
            clustering_level: 3,
            cluster_interval_secs: 10.0,
            ..MoistConfig::default()
        };
        let cluster = MoistCluster::new(&store, cfg, 4).unwrap();
        // Skew the fleet hard enough that rebalance publishes a new epoch
        // (same workload shape the hot-cell test pins).
        let hot = Point::new(437.0, 437.0);
        let mut oid = 0u64;
        for sec in 0..40u64 {
            for i in 0..25u64 {
                let (x, y) = if i < 20 {
                    (hot.x + (i % 5) as f64, hot.y + (i / 5) as f64)
                } else {
                    (
                        31.0 + 211.0 * (oid % 4) as f64,
                        31.0 + 311.0 * (oid % 3) as f64,
                    )
                };
                cluster
                    .update(&msg(oid % 600, x, y, 0.0, sec as f64 + i as f64 / 25.0))
                    .unwrap();
                oid += 1;
            }
        }
        // Poison the ingest queue behind `submit`'s validation (a real
        // deployment can always buffer a message that later fails to
        // apply — e.g. a store error): the drain inside rebalance must
        // hit it and propagate.
        let bad = UpdateMessage {
            oid: ObjectId(77),
            loc: Point::new(f64::NAN, 1.0),
            vel: Velocity::new(0.0, 0.0),
            ts: Timestamp::from_secs(40),
        };
        match cluster.ingest.enqueue(&cluster.ingest_cfg, 0, &bad) {
            EnqueueResult::Queued { .. } => {}
            other => panic!("poisoned message must buffer, got {other:?}"),
        }
        let err = cluster
            .rebalance(Timestamp::from_secs(40))
            .expect_err("a failing drain must fail the rebalance");
        assert!(
            matches!(err, MoistError::Inconsistent(_)),
            "wrong error: {err:?}"
        );
        // The failure is in the drain, not the placement: the routing
        // partition stays exact and the tier keeps serving.
        assert_routing_partition(&cluster);
        cluster
            .update(&msg(9_999, hot.x, hot.y, 0.0, 41.0))
            .unwrap();
    }

    #[test]
    fn split_cell_updates_route_to_child_owners_and_cluster_once() {
        let store = Bigtable::new();
        let cfg = MoistConfig {
            epsilon: 50.0,
            clustering_level: 2, // 16 cells
            cluster_interval_secs: 10.0,
            ..MoistConfig::default()
        };
        let cluster = MoistCluster::new(&store, cfg, 4).unwrap();
        let hot = Point::new(300.0, 300.0);
        let hot_cell = cfg.space.cell_at(cfg.clustering_level, &hot).index;
        for sec in 0..40u64 {
            for i in 0..10u64 {
                cluster
                    .update(&msg(
                        i,
                        hot.x + (i % 3) as f64 * 80.0,
                        hot.y + (i / 3) as f64 * 60.0,
                        0.0,
                        sec as f64 + i as f64 / 10.0,
                    ))
                    .unwrap();
            }
        }
        let report = cluster.rebalance(Timestamp::from_secs(40)).unwrap();
        assert!(
            report.split_cells.contains(&hot_cell),
            "the only loaded cell must split: {report:?}"
        );
        assert_routing_partition(&cluster);
        // A sweep past every deadline clusters each routing key exactly
        // once: unsplit cells as whole cells, the split cell as its four
        // finer children, each on its own owner.
        let key_count = cells_at_level(cfg.clustering_level) - 1 + 4;
        let runs_before = cluster.stats().cluster_runs;
        let sweep_at = Timestamp::from_secs(40 + 2 * cfg.cluster_interval_secs as u64);
        for shard in 0..cluster.num_shards() {
            cluster.run_due_clustering_shard(shard, sweep_at).unwrap();
        }
        assert_eq!(cluster.stats().cluster_runs - runs_before, key_count);
    }

    #[test]
    fn shard_errors_are_typed_not_panics() {
        let store = Bigtable::new();
        let cluster = MoistCluster::new(&store, MoistConfig::default(), 2).unwrap();
        // Position past the membership.
        let err = cluster.with_shard(7, |_| ()).unwrap_err();
        assert!(matches!(err, MoistError::NoSuchShard(_)), "got {err:?}");
        let err = cluster
            .run_due_clustering_shard(7, Timestamp::ZERO)
            .unwrap_err();
        assert!(matches!(err, MoistError::NoSuchShard(_)), "got {err:?}");
        // Unknown id.
        let err = cluster.remove_shard(999).unwrap_err();
        assert!(matches!(err, MoistError::NoSuchShard(_)), "got {err:?}");
        // Removing the last shard.
        let ids = cluster.shard_ids();
        cluster.remove_shard(ids[0]).unwrap();
        let err = cluster.remove_shard(ids[1]).unwrap_err();
        assert!(matches!(err, MoistError::NoSuchShard(_)), "got {err:?}");
        assert_eq!(cluster.num_shards(), 1);
    }

    #[test]
    fn replicated_reads_serve_from_followers_and_stay_correct() {
        let store = Bigtable::new();
        let cfg = MoistConfig::default();
        let cluster = MoistCluster::new(&store, cfg, 4).unwrap().with_replicas(2);
        assert_eq!(cluster.replicas(), 2);
        for i in 0..64u64 {
            let x = 15.0 + 970.0 * (i % 8) as f64 / 8.0;
            let y = 15.0 + 970.0 * (i / 8) as f64 / 8.0;
            cluster.update(&msg(i, x, y, 1.0, 0.0)).unwrap();
        }
        // Reads stay exactly correct whichever replica serves them.
        let (nn, _) = cluster
            .nn(Point::new(500.0, 500.0), 64, Timestamp::ZERO)
            .unwrap();
        assert_eq!(nn.len(), 64);
        let mut seen: Vec<u64> = nn.iter().map(|n| n.oid.0).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 64, "replica routing must not duplicate");
        for i in [0u64, 31, 63] {
            assert!(cluster
                .position(ObjectId(i), Timestamp::ZERO)
                .unwrap()
                .is_some());
        }
        // The primaries carry the whole update load, so their clocks lead
        // their followers' — repeated point reads must route some serves
        // to the less-loaded followers and count them.
        for round in 0..8u64 {
            for i in 0..8u64 {
                let p = Point::new(60.0 + 120.0 * i as f64, 500.0);
                cluster.nn(p, 3, Timestamp::from_secs(round)).unwrap();
            }
        }
        let cstats = cluster.cluster_stats(Timestamp::ZERO);
        assert_eq!(cstats.replicas, 2);
        assert!(
            cstats.replica_reads > 0,
            "followers must serve reads: {cstats:?}"
        );
        // k=2 accounting: every routing key has exactly one primary and
        // one follower across the fleet.
        let keys: usize = cstats.shards.iter().map(|s| s.primary_keys).sum();
        let follows: usize = cstats.shards.iter().map(|s| s.follower_keys).sum();
        assert_eq!(keys as u64, cells_at_level(cfg.clustering_level));
        assert_eq!(follows, keys);
        let counted: u64 = cstats.shards.iter().map(|s| s.replica_reads).sum();
        assert_eq!(counted, cstats.replica_reads);
    }

    #[test]
    fn remove_shard_promotes_the_next_ranked_replica_for_every_key() {
        let store = Bigtable::new();
        let cfg = MoistConfig {
            clustering_level: 3, // 64 cells
            cluster_interval_secs: 10.0,
            ..MoistConfig::default()
        };
        let cluster = MoistCluster::new(&store, cfg, 4).unwrap().with_replicas(2);
        let cells = cells_at_level(cfg.clustering_level);
        let before: Vec<Vec<u64>> = {
            let snap = cluster.snapshot();
            (0..cells)
                .map(|key| snap.owners_of(key).iter().map(|e| e.id).collect())
                .collect()
        };
        let victim = cluster.shard_ids()[1];
        cluster.remove_shard(victim).unwrap();

        // Prefix stability in action: a key led by the victim is adopted
        // by its old rank-1 follower — never by a stranger — and every
        // other key keeps its primary.
        let snap = cluster.snapshot();
        let mut expected_promotions = 0u64;
        for (key, owners) in before.iter().enumerate() {
            let new_primary = snap.owners_of(key as u64)[0].id;
            if owners[0] == victim {
                expected_promotions += 1;
                assert_eq!(
                    new_primary, owners[1],
                    "key {key}: the rank-1 follower must step up"
                );
            } else {
                assert_eq!(
                    new_primary, owners[0],
                    "key {key}: primary moved without cause"
                );
            }
        }
        drop(snap);
        assert!(
            expected_promotions > 0,
            "the victim must have led some keys"
        );
        let cstats = cluster.cluster_stats(Timestamp::ZERO);
        assert_eq!(cstats.promotions, expected_promotions);
        // The scheduler partition (primaries only) is still exact.
        sole_owners(&cluster);
    }

    #[test]
    fn pipelined_submissions_match_the_synchronous_tier_and_cost_less() {
        let store_sync = Bigtable::new();
        let store_pipe = Bigtable::new();
        let cfg = MoistConfig::default();
        let sync = MoistCluster::new(&store_sync, cfg, 4).unwrap();
        let pipe = MoistCluster::new(&store_pipe, cfg, 4)
            .unwrap()
            .with_ingest(IngestConfig {
                batch_size: 16,
                ..IngestConfig::default()
            });
        // Two reporting rounds over a spread map: the second round is
        // refreshes (leaders + sheddable followers), where batching pays.
        let mut msgs = Vec::new();
        for round in 0..2u64 {
            for i in 0..64u64 {
                let x = 15.0 + 970.0 * (i % 8) as f64 / 8.0;
                let y = 15.0 + 970.0 * (i / 8) as f64 / 8.0;
                msgs.push(msg(i, x + round as f64, y, 1.0, 10.0 * round as f64));
            }
        }
        for m in &msgs {
            sync.update(m).unwrap();
            pipe.submit(m).unwrap();
        }
        pipe.drain_ingest().unwrap();

        let (a, b) = (sync.stats(), pipe.stats());
        assert_eq!(a.updates, b.updates);
        assert_eq!(a.registered, b.registered);
        assert_eq!(a.shed, b.shed);
        // Same routing: per-shard update counts agree exactly.
        let per_shard =
            |c: &MoistCluster| -> Vec<u64> { c.shard_stats().iter().map(|s| s.updates).collect() };
        assert_eq!(per_shard(&sync), per_shard(&pipe));
        // Amortization is real: the pipelined tier consumed less virtual
        // store time for the same stream.
        assert!(
            pipe.total_elapsed_us() < sync.total_elapsed_us(),
            "batched {} µs vs sync {} µs",
            pipe.total_elapsed_us(),
            sync.total_elapsed_us()
        );
        let is = pipe.ingest_stats();
        assert_eq!(is.submitted, msgs.len() as u64);
        assert_eq!(is.enqueued, msgs.len() as u64);
        assert_eq!(is.flushed_updates, msgs.len() as u64);
        assert_eq!(is.queued, 0, "drain left nothing behind");
        assert!(is.size_flushes >= 1, "16-deep queues must size-flush");
        assert!(is.max_batch >= 2);
        assert_eq!(is.backpressure + is.overload_shed, 0);
        let cstats = pipe.cluster_stats(Timestamp::from_secs(20));
        assert_eq!(cstats.ingest, is);
        assert_eq!(cstats.shed_or_backpressure(), cstats.ops.shed);
        assert!(cstats.shards.iter().all(|s| s.queue_depth == 0));
    }

    #[test]
    fn deadline_flush_applies_a_stranded_trickle() {
        let store = Bigtable::new();
        let cluster = MoistCluster::new(&store, MoistConfig::default(), 2)
            .unwrap()
            .with_ingest(IngestConfig {
                batch_size: 1000,
                flush_deadline_secs: 5.0,
                ..IngestConfig::default()
            });
        for i in 0..3u64 {
            let out = cluster.submit(&msg(i, 100.0, 100.0, 1.0, 0.0)).unwrap();
            assert!(matches!(out, SubmitOutcome::Enqueued { .. }));
        }
        // Before the oldest message ages past the deadline: nothing due.
        assert_eq!(cluster.flush_due(Timestamp::from_secs(3)).unwrap(), 0);
        assert_eq!(cluster.stats().updates, 0);
        // Past it: the whole trickle applies as one batch.
        assert_eq!(cluster.flush_due(Timestamp::from_secs(5)).unwrap(), 3);
        assert_eq!(cluster.stats().updates, 3);
        let is = cluster.ingest_stats();
        assert_eq!(is.deadline_flushes, 1);
        assert_eq!(is.queued, 0);
        // Queue wait was accounted in virtual time: 5s + 5s + 5s.
        assert_eq!(is.queue_wait_us, 15_000_000);
    }

    /// Runs the backpressure dance under `policy`: one thread pins the
    /// target shard's lock, another submits a full batch that blocks
    /// applying against it, and the main thread keeps submitting until
    /// the outstanding cap trips. Returns what the tripping submission
    /// got.
    fn provoke_full_queue(policy: BackpressurePolicy) -> (MoistCluster, Result<SubmitOutcome>) {
        let store = Bigtable::new();
        let cluster = MoistCluster::new(&store, MoistConfig::default(), 2)
            .unwrap()
            .with_ingest(IngestConfig {
                batch_size: 4,
                queue_cap: 5,
                policy,
                ..IngestConfig::default()
            });
        let p = Point::new(100.0, 100.0);
        let shard_pos = cluster.shard_for_point(&p);
        let pinned = std::sync::atomic::AtomicBool::new(false);
        let release = std::sync::atomic::AtomicBool::new(false);
        let tripped = std::thread::scope(|scope| {
            // Pin the owner's lock so the size-flush below cannot finish.
            let pin = scope.spawn(|| {
                cluster
                    .with_shard(shard_pos, |_| {
                        pinned.store(true, Ordering::Release);
                        while !release.load(Ordering::Acquire) {
                            std::thread::yield_now();
                        }
                    })
                    .unwrap();
            });
            // 4th submission fills the batch and blocks applying it
            // (submitting only after the pin visibly holds the lock).
            let flusher = scope.spawn(|| {
                while !pinned.load(Ordering::Acquire) {
                    std::thread::yield_now();
                }
                for i in 0..4u64 {
                    cluster.submit(&msg(i, 100.0, 100.0, 1.0, 0.0)).unwrap();
                }
            });
            // Wait until the blocked batch's slots are visibly held.
            while cluster.ingest_stats().queued < 4 {
                std::thread::yield_now();
            }
            // 5th fits the cap (5), 6th trips it.
            let under = cluster.submit(&msg(10, 100.0, 100.0, 1.0, 0.0)).unwrap();
            assert!(matches!(under, SubmitOutcome::Enqueued { depth: 5, .. }));
            let tripped = cluster.submit(&msg(11, 100.0, 100.0, 1.0, 0.0));
            release.store(true, Ordering::Release);
            pin.join().unwrap();
            flusher.join().unwrap();
            tripped
        });
        cluster.drain_ingest().unwrap();
        (cluster, tripped)
    }

    #[test]
    fn full_queue_rejects_with_typed_backpressure() {
        let (cluster, tripped) = provoke_full_queue(BackpressurePolicy::Reject);
        match tripped {
            Err(MoistError::Backpressure { shard, depth }) => {
                assert_eq!(depth, 5);
                assert!(cluster.shard_ids().contains(&shard));
            }
            other => panic!("expected typed backpressure, got {other:?}"),
        }
        let is = cluster.ingest_stats();
        assert_eq!(is.backpressure, 1);
        assert_eq!(is.overload_shed, 0);
        // The rejected message was never accepted; everything accepted
        // (4 batched + 1 straggler) applied.
        assert_eq!(cluster.stats().updates, 5);
        assert_eq!(is.queued, 0);
        assert_eq!(
            cluster
                .cluster_stats(Timestamp::ZERO)
                .shed_or_backpressure(),
            1
        );
    }

    #[test]
    fn full_queue_sheds_under_the_shed_policy() {
        let (cluster, tripped) = provoke_full_queue(BackpressurePolicy::Shed);
        match tripped {
            Ok(SubmitOutcome::ShedOverload { shard }) => {
                assert!(cluster.shard_ids().contains(&shard));
            }
            other => panic!("expected an overload shed, got {other:?}"),
        }
        let is = cluster.ingest_stats();
        assert_eq!(is.overload_shed, 1);
        assert_eq!(is.backpressure, 0);
        assert_eq!(cluster.stats().updates, 5);
    }

    #[test]
    fn epoch_bumps_drain_buffered_batches_to_the_new_owners() {
        let store = Bigtable::new();
        let cfg = MoistConfig {
            clustering_level: 3,
            cluster_interval_secs: 10.0,
            ..MoistConfig::default()
        };
        let cluster = MoistCluster::new(&store, cfg, 3)
            .unwrap()
            .with_ingest(IngestConfig {
                batch_size: 1000, // nothing size-flushes: all drain-driven
                ..IngestConfig::default()
            });
        // Buffer a spread of registrations, none applied yet.
        for i in 0..32u64 {
            let x = 20.0 + 960.0 * (i % 8) as f64 / 8.0;
            let y = 20.0 + 960.0 * (i / 8) as f64 / 8.0;
            cluster.submit(&msg(i, x, y, 1.0, 0.0)).unwrap();
        }
        assert_eq!(cluster.stats().updates, 0);
        assert_eq!(cluster.ingest_stats().queued, 32);
        // A join drains them — under the *new* epoch's ownership.
        let joiner = cluster.add_shard().unwrap();
        assert_eq!(cluster.stats().updates, 32);
        assert_eq!(cluster.ingest_stats().queued, 0);
        assert!(cluster.ingest_stats().drain_flushes >= 1);
        sole_owners(&cluster);
        // Buffer more, then kill a shard: its buffered messages re-route
        // to the survivors instead of being lost.
        for i in 32..48u64 {
            let x = 20.0 + 960.0 * (i % 8) as f64 / 8.0;
            let y = 20.0 + 960.0 * ((i / 8) % 8) as f64 / 8.0;
            cluster.submit(&msg(i, x, y, 1.0, 1.0)).unwrap();
        }
        cluster.remove_shard(joiner).unwrap();
        assert_eq!(cluster.stats().updates, 48, "zero buffered updates lost");
        assert_eq!(cluster.ingest_stats().queued, 0);
        sole_owners(&cluster);
        // Every buffered object is really in the store.
        for i in [0u64, 31, 32, 47] {
            assert!(cluster
                .position(ObjectId(i), Timestamp::from_secs(2))
                .unwrap()
                .is_some());
        }
    }

    #[test]
    fn cluster_update_batch_groups_by_owner_and_keeps_order() {
        let store = Bigtable::new();
        let cluster = MoistCluster::new(&store, MoistConfig::default(), 4).unwrap();
        let mut msgs = Vec::new();
        for i in 0..24u64 {
            let x = 15.0 + 970.0 * (i % 6) as f64 / 6.0;
            let y = 15.0 + 970.0 * (i / 6) as f64 / 6.0;
            msgs.push(msg(i, x, y, 1.0, 0.0));
        }
        let outcomes = cluster.update_batch(&msgs).unwrap();
        assert_eq!(outcomes.len(), msgs.len());
        assert!(outcomes
            .iter()
            .all(|o| matches!(o, UpdateOutcome::Registered)));
        assert_eq!(cluster.stats().updates, 24);
        // Routed like the synchronous path: only owners saw their cells.
        for (i, m) in msgs.iter().enumerate() {
            let pos = cluster.shard_for_point(&m.loc);
            let upd = cluster.with_shard(pos, |s| s.stats().updates).unwrap();
            assert!(upd > 0, "message {i} must have landed on shard {pos}");
        }
    }

    #[test]
    fn builder_and_legacy_constructors_build_identical_tiers() {
        let cfg = MoistConfig::default();
        let cells = cells_at_level(cfg.clustering_level);

        // `new(n)` vs `builder().shards(n).build()`: same fleet, same
        // routing table, same defaults everywhere.
        let legacy = MoistCluster::new(&Bigtable::new(), cfg, 6).unwrap();
        let built = MoistCluster::builder(&Bigtable::new(), cfg)
            .shards(6)
            .build()
            .unwrap();
        assert_eq!(legacy.num_shards(), built.num_shards());
        assert_eq!(legacy.shard_ids(), built.shard_ids());
        assert_eq!(legacy.epoch(), built.epoch());
        assert_eq!(legacy.shard_weights(), built.shard_weights());
        assert_eq!(legacy.replicas(), built.replicas());
        assert_eq!(legacy.ingest_config(), built.ingest_config());
        assert!(legacy.split_cells().is_empty() && built.split_cells().is_empty());
        assert!(built.controller_config().is_none());
        for index in 0..cells {
            let cell = CellId {
                level: cfg.clustering_level,
                index,
            };
            assert_eq!(
                legacy.shard_for_cell(cell),
                built.shard_for_cell(cell),
                "routing diverged on cell {index}"
            );
        }

        // `with_replicas` / `with_ingest` combinators vs builder knobs.
        let icfg = IngestConfig {
            batch_size: 16,
            queue_cap: 128,
            flush_deadline_secs: 0.25,
            policy: BackpressurePolicy::Shed,
        };
        let legacy = MoistCluster::new(&Bigtable::new(), cfg, 5)
            .unwrap()
            .with_replicas(2)
            .with_ingest(icfg);
        let built = MoistCluster::builder(&Bigtable::new(), cfg)
            .shards(5)
            .replicas(2)
            .ingest(icfg)
            .build()
            .unwrap();
        assert_eq!(legacy.replicas(), built.replicas());
        assert_eq!(legacy.ingest_config(), built.ingest_config());
        assert_eq!(legacy.epoch(), built.epoch());
        for index in 0..cells {
            let cell = CellId {
                level: cfg.clustering_level,
                index,
            };
            assert_eq!(legacy.shard_for_cell(cell), built.shard_for_cell(cell));
        }
        // A controller attached through the builder reports its
        // (normalized) config back.
        let ccfg = ControllerConfig {
            min_shards: 2,
            max_shards: 8,
            ..ControllerConfig::default()
        };
        let with_ctl = MoistCluster::builder(&Bigtable::new(), cfg)
            .shards(2)
            .controller(ccfg)
            .build()
            .unwrap();
        assert_eq!(with_ctl.controller_config(), Some(ccfg.normalized()));
    }

    #[test]
    fn rebalance_unsplits_cells_whose_demand_faded() {
        let store = Bigtable::new();
        let cfg = MoistConfig {
            epsilon: 50.0,
            clustering_level: 3, // 64 cells
            cluster_interval_secs: 10.0,
            ..MoistConfig::default()
        };
        let cluster = MoistCluster::new(&store, cfg, 4).unwrap();
        let hot_a = Point::new(437.0, 437.0);
        let a_cell = cfg.space.cell_at(cfg.clustering_level, &hot_a).index;
        let hot_b = Point::new(100.0, 900.0);
        let b_cell = cfg.space.cell_at(cfg.clustering_level, &hot_b).index;
        assert_ne!(a_cell, b_cell);
        // Phase one: hammer cell A, 80/20 like the split test above.
        let mut oid = 0u64;
        for sec in 0..40u64 {
            for i in 0..25u64 {
                let (x, y) = if i < 20 {
                    (hot_a.x + (i % 5) as f64, hot_a.y + (i / 5) as f64)
                } else {
                    (
                        31.0 + 211.0 * (oid % 4) as f64,
                        31.0 + 311.0 * (oid % 3) as f64,
                    )
                };
                cluster
                    .update(&msg(oid % 600, x, y, 0.0, sec as f64 + i as f64 / 25.0))
                    .unwrap();
                oid += 1;
            }
        }
        let report = cluster.rebalance(Timestamp::from_secs(40)).unwrap();
        assert!(report.split_cells.contains(&a_cell));
        assert!(report.unsplit_cells.is_empty());
        // Phase two: the hot spot moves to cell B; A goes silent and its
        // EWMA rate decays far below the (B-driven) mean.
        for sec in 40..80u64 {
            for i in 0..25u64 {
                let (x, y) = if i < 20 {
                    (hot_b.x + (i % 5) as f64, hot_b.y + (i / 5) as f64)
                } else {
                    (
                        531.0 + 111.0 * (oid % 4) as f64,
                        31.0 + 211.0 * (oid % 3) as f64,
                    )
                };
                cluster
                    .update(&msg(oid % 600, x, y, 0.0, sec as f64 + i as f64 / 25.0))
                    .unwrap();
                oid += 1;
            }
        }
        let report = cluster.rebalance(Timestamp::from_secs(80)).unwrap();
        assert!(
            report.unsplit_cells.contains(&a_cell),
            "faded cell {a_cell} must un-split: {report:?}"
        );
        assert!(
            report.split_cells.contains(&b_cell),
            "the new hot cell {b_cell} must split: {report:?}"
        );
        let split = cluster.split_cells();
        assert!(!split.contains(&a_cell), "split table still holds {a_cell}");
        assert!(split.contains(&b_cell));
        // The handover through the (split → plain) transition kept the
        // routing-key partition exact, and updates keep landing — both to
        // the reunited cell and the freshly split one.
        assert_routing_partition(&cluster);
        let before = cluster.stats().updates;
        cluster
            .update(&msg(7_001, hot_a.x, hot_a.y, 0.0, 81.0))
            .unwrap();
        cluster
            .update(&msg(7_002, hot_b.x, hot_b.y, 0.0, 81.0))
            .unwrap();
        assert_eq!(cluster.stats().updates, before + 2);
        assert!(cluster
            .position(ObjectId(7_001), Timestamp::from_secs(81))
            .unwrap()
            .is_some());
    }

    #[test]
    fn region_fanout_learns_scan_costs_that_reprice_slices() {
        let store = Bigtable::new();
        let cfg = MoistConfig {
            clustering_level: 3,
            cluster_interval_secs: 10.0,
            ..MoistConfig::default()
        };
        let cluster = MoistCluster::new(&store, cfg, 4).unwrap();
        let dense = Point::new(437.0, 437.0);
        let dense_cell = cfg.space.cell_at(cfg.clustering_level, &dense).index;
        let sparse = Point::new(100.0, 900.0);
        let sparse_cell = cfg.space.cell_at(cfg.clustering_level, &sparse).index;
        // 200 objects crowd one cell, 5 sit in another.
        for i in 0..200u64 {
            let x = dense.x + (i % 20) as f64;
            let y = dense.y + (i / 20) as f64;
            cluster.update(&msg(i, x, y, 0.0, 0.0)).unwrap();
        }
        for i in 200..205u64 {
            cluster
                .update(&msg(i, sparse.x + (i % 5) as f64, sparse.y, 0.0, 0.0))
                .unwrap();
        }
        assert!(cluster.learned_scan_costs().is_empty());
        // A whole-map region query fans out over every shard's slices;
        // each shard attributes its measured per-range scan cost back to
        // the clustering cells the range covered.
        let rect = Rect::new(0.0, 0.0, 999.0, 999.0);
        let (hits, _) = cluster.region(&rect, Timestamp::from_secs(1), 0.0).unwrap();
        assert_eq!(hits.len(), 205);
        // Rebalance merges the per-shard samples into the shared price map.
        cluster.rebalance(Timestamp::from_secs(5)).unwrap();
        let learned = cluster.learned_scan_costs();
        assert!(!learned.is_empty(), "fan-out scans must leave cost samples");
        let dense_price = learned.get(&dense_cell).copied().unwrap_or(0.0);
        let sparse_price = learned.get(&sparse_cell).copied().unwrap_or(f64::MAX);
        assert!(
            dense_price > sparse_price,
            "200-object cell must price above 5-object cell: \
             dense {dense_price} vs sparse {sparse_price}"
        );
        // Learned prices are normalized to average 2.0 over measured cells
        // (the density prior's scale), so they stay comparable with the
        // prior used for never-scanned cells.
        let mean = learned.values().sum::<f64>() / learned.len() as f64;
        assert!((mean - 2.0).abs() < 1e-6, "price scale drifted: {mean}");
        // The repriced fan-out still answers exactly.
        let (hits, _) = cluster.region(&rect, Timestamp::from_secs(6), 0.0).unwrap();
        assert_eq!(hits.len(), 205);
    }

    #[test]
    fn controller_grows_on_surge_and_shrinks_back_when_idle() {
        let store = Bigtable::new();
        let cfg = MoistConfig {
            clustering_level: 3,
            cluster_interval_secs: 10.0,
            ..MoistConfig::default()
        };
        // A tier with no controller ticks as a no-op.
        let bare = MoistCluster::new(&store, cfg, 2).unwrap();
        assert!(bare
            .controller_tick(Timestamp::from_secs(1))
            .unwrap()
            .is_empty());
        assert!(bare.controller_events().is_empty());

        let ccfg = ControllerConfig {
            min_shards: 2,
            max_shards: 5,
            window_secs: 2.0,
            cooldown_secs: 5.0,
            rebalance_every_secs: 10.0,
            // Virtual busy-µs per virtual second: tiny, so the surge below
            // clearly saturates it and idling clearly undershoots it.
            target_shard_busy_us: 300.0,
            ..ControllerConfig::default()
        };
        let store = Bigtable::new();
        let cluster = MoistCluster::builder(&store, cfg)
            .shards(2)
            .controller(ccfg)
            .build()
            .unwrap();
        // Surge: 100 updates/s spread over the map, controller ticking
        // every virtual second like a client loop would.
        let mut oid = 0u64;
        for sec in 0..20u64 {
            for i in 0..100u64 {
                let x = 15.0 + 970.0 * ((oid * 7) % 64 % 8) as f64 / 8.0;
                let y = 15.0 + 970.0 * ((oid * 7) % 64 / 8) as f64 / 8.0;
                cluster
                    .update(&msg(oid % 900, x, y, 0.0, sec as f64 + i as f64 / 100.0))
                    .unwrap();
                oid += 1;
            }
            cluster
                .controller_tick(Timestamp::from_secs(sec + 1))
                .unwrap();
        }
        let peak = cluster.num_shards();
        assert!(
            peak > 2,
            "surge must grow the fleet past its floor, stuck at {peak}"
        );
        assert!(peak <= 5, "fleet exceeded max_shards: {peak}");
        // Idle: no traffic, just ticks. Each closed window under the
        // scale-down band sheds one shard per cooldown until the floor.
        for sec in 20..80u64 {
            cluster
                .controller_tick(Timestamp::from_secs(sec + 1))
                .unwrap();
        }
        assert_eq!(
            cluster.num_shards(),
            2,
            "idle fleet must shrink back to min_shards"
        );
        assert_routing_partition(&cluster);
        // Every scaling decision is logged, and decisions from different
        // ticks respect the cooldown (same-tick batches share one stamp).
        let events = cluster.controller_events();
        let adds = events
            .iter()
            .filter(|e| matches!(e.action, ControllerAction::AddShard { .. }))
            .count();
        let removes = events
            .iter()
            .filter(|e| matches!(e.action, ControllerAction::RemoveShard { .. }))
            .count();
        assert!(adds >= 1, "no add events logged: {events:?}");
        assert_eq!(
            removes,
            peak - 2,
            "every removal back to the floor must be logged: {events:?}"
        );
        let scale_times: Vec<f64> = events
            .iter()
            .filter(|e| e.action.is_scaling())
            .map(|e| e.at_secs)
            .collect();
        for pair in scale_times.windows(2) {
            let gap = pair[1] - pair[0];
            assert!(
                gap == 0.0 || gap >= ccfg.cooldown_secs - 1e-9,
                "scale events {gap}s apart violate the {}s cooldown: {events:?}",
                ccfg.cooldown_secs
            );
        }
        // All objects written during the surge are still served.
        for i in [0u64, 450, 899] {
            assert!(cluster
                .position(ObjectId(i), Timestamp::from_secs(80))
                .unwrap()
                .is_some());
        }
    }
}
