//! The sharded multi-server front-end tier (§4.3.3).
//!
//! The paper's headline numbers are *fleet* numbers: 5 and 10 front-end
//! servers share one BigTable and split the update stream between them.
//! [`MoistCluster`] is that deployment shape: it owns N [`MoistServer`]
//! shards over one shared [`Bigtable`] and routes every operation to a
//! shard by **rendezvous hash** ([`crate::cluster::rendezvous_owner`] over the cell of the
//! operation's location at the configured clustering level).
//!
//! Routing by clustering cell buys two invariants:
//!
//! * **Clustering exclusivity** — each shard's [`ClusterScheduler`] owns
//!   exactly the cells it wins under the same hash, so every clustering
//!   cell is lazily clustered by *exactly one* shard (naively running
//!   `run_due_clustering` on N servers clusters the whole map N times
//!   over).
//! * **School-merge locality** — school merges only ever happen between
//!   leaders of one clustering cell, and all updates for a cell serialize
//!   through its owner shard, so a school is never torn by two shards
//!   rewriting it concurrently.
//!
//! ## Elastic membership
//!
//! The fleet can grow and shrink live. Membership is an epoch-stamped,
//! read-mostly snapshot: each operation grabs an `Arc` of the current
//! [`Membership`] (one brief read-lock), routes against it, and keeps the
//! target shard alive through the `Arc` even if the membership changes
//! mid-flight. [`add_shard`] and [`remove_shard`] bump the epoch and swap
//! the snapshot. Updates additionally validate their routing against a
//! membership seqlock after taking the owner's lock and re-route if an
//! epoch bump raced them (see [`update`](MoistCluster::update)), so a
//! write never lands on a migrated cell's old owner — no torn routing,
//! no lost updates; read-only queries route on the snapshot alone.
//!
//! Because ownership is a **rendezvous** (highest-random-weight) hash over
//! the stable shard *ids* — not a modular hash over the shard *count* —
//! a membership change remaps the minimum: a join steals only the ~1/(N+1)
//! of cells the newcomer now wins, a leave reassigns only the departed
//! shard's cells, and every other cell's owner (and therefore its school
//! state's home shard) is untouched. Each migrating cell's clustering
//! deadline is handed over at its current phase
//! ([`ClusterScheduler::release`] → [`ClusterScheduler::adopt`]), so a
//! join causes neither a thundering re-cluster of the stolen cells nor a
//! missed round.
//!
//! The shards share one cluster-wide object-count estimate (FLAG's `n`),
//! seeded from the store, so a shard that joins an already-populated store
//! guesses sensible NN levels from its first query.
//!
//! Shards are individually locked: concurrent clients contend per shard,
//! not on the whole tier, and operations on different shards proceed in
//! parallel on real OS threads (drive it with
//! `moist_workload::ClientPool`).
//!
//! ## Query fan-out (scatter-gather)
//!
//! Updates route to one shard by design — a cell's writes must serialize
//! on its owner. Queries have no such constraint: any shard reads a
//! consistent view of the shared store. [`region`](MoistCluster::region)
//! therefore plans its merged leaf ranges once, slices them by rendezvous
//! owner ([`crate::cluster::slice_ranges_by_owner`] — an exact partition
//! of the plan), scans every slice on a pooled worker
//! ([`crate::query_pool::QueryPool`]) against its owner shard, and merges
//! the partials: hits move (never clone) into one list and each object is
//! deduplicated exactly once at the merge — the same per-object dedup that
//! heals the clustering-vs-move races, now applied across shards. The
//! client-visible cost is the *slowest* partial, not the sum, because the
//! slices consume store time in parallel. [`nn`](MoistCluster::nn)
//! scatters only when its candidate ring (query cell + edge neighbours at
//! the FLAG level) crosses an ownership boundary, and the merge *replays*
//! the single-shard frontier search over the scanned candidates
//! ([`crate::nn::merge_ring_partials`]) — if the replayed frontier would
//! escape the ring, the query falls back to the real single-shard search,
//! so fan-out never trades exactness for speed. An epoch bump mid-scatter re-routes
//! only the migrated slices: each worker re-validates its slice against
//! the freshest membership snapshot and hands back the pieces whose cells
//! moved, which the gather loop re-slices and re-dispatches.
//!
//! [`add_shard`]: MoistCluster::add_shard
//! [`remove_shard`]: MoistCluster::remove_shard
//!
//! ```
//! use moist_bigtable::{Bigtable, Timestamp};
//! use moist_core::{MoistCluster, MoistConfig, ObjectId, UpdateMessage};
//! use moist_spatial::{Point, Velocity};
//!
//! let store = Bigtable::new();
//! let cluster = MoistCluster::new(&store, MoistConfig::default(), 4)?;
//! cluster.update(&UpdateMessage {
//!     oid: ObjectId(1),
//!     loc: Point::new(420.0, 500.0),
//!     vel: Velocity::new(1.8, 0.0),
//!     ts: Timestamp::from_secs(10),
//! })?;
//! // Grow the fleet live: only the joiner's rendezvous wins migrate.
//! let id = cluster.add_shard()?;
//! assert_eq!(cluster.num_shards(), 5);
//! // Any front-end answers queries over the whole map.
//! let (nn, _) = cluster.nn(Point::new(400.0, 500.0), 1, Timestamp::from_secs(11))?;
//! assert_eq!(nn[0].oid, ObjectId(1));
//! // And shrink again: the departed shard's cells are re-adopted.
//! cluster.remove_shard(id)?;
//! # Ok::<(), moist_core::MoistError>(())
//! ```

use crate::cluster::{rendezvous_max, slice_ranges_by_owner, ClusterReport, ClusterScheduler};
use crate::config::MoistConfig;
use crate::error::{MoistError, Result};
use crate::ids::ObjectId;
use crate::nn::{merge_ring_partials, nn_candidate_ring};
use crate::nn::{Neighbor, NnOptions, NnPartial, NnStats};
use crate::query_pool::QueryPool;
use crate::region::{merge_region_partials, plan_region_ranges, RegionPartial, RegionStats};
use crate::server::{MoistServer, ServerStats};
use crate::update::{UpdateMessage, UpdateOutcome};
use moist_archive::PppArchiver;
use moist_bigtable::{Bigtable, Timestamp};
use moist_spatial::{cells_at_level, CellId, Point, Rect};
use parking_lot::{Mutex, RwLock};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Scatter rounds after which a region query stops re-validating slice
/// ownership and scans wherever the last slicing routed them. Reads are
/// correct on any shard (the store is shared); the cap only bounds the
/// re-route loop under pathological non-stop churn.
const MAX_REROUTE_ROUNDS: usize = 4;

/// One live shard: its stable id plus the mutexed server.
struct ShardEntry {
    /// Stable shard id — never reused, survives other shards' churn.
    id: u64,
    server: Mutex<MoistServer>,
}

/// An immutable snapshot of the tier's membership at one epoch.
///
/// Operations route against one snapshot end to end; the `Arc`s keep a
/// shard alive for in-flight operations even after it leaves the tier
/// (its writes still land in the shared store, so nothing is lost).
struct Membership {
    /// Monotonic epoch, bumped by every join/leave.
    epoch: u64,
    /// Live shards, sorted by id (positions index this order).
    shards: Vec<Arc<ShardEntry>>,
}

impl Membership {
    fn ids(&self) -> Vec<u64> {
        self.shards.iter().map(|e| e.id).collect()
    }

    fn position_of(&self, id: u64) -> Option<usize> {
        self.shards.iter().position(|e| e.id == id)
    }

    /// The entry owning clustering-cell index `key` (rendezvous winner).
    ///
    /// Picks the winner directly over the entries — one scan, no id-list
    /// allocation — because this sits on the per-operation hot path; the
    /// selection is the shared [`rendezvous_max`], so it agrees with
    /// [`crate::cluster::rendezvous_owner`] by definition.
    fn owner_of(&self, key: u64) -> &Arc<ShardEntry> {
        rendezvous_max(key, self.shards.iter(), |e| e.id).expect("membership is never empty")
    }

    fn entry(&self, shard: usize) -> Result<&Arc<ShardEntry>> {
        self.shards.get(shard).ok_or_else(|| {
            MoistError::NoSuchShard(format!(
                "position {shard} out of {} live shards (epoch {})",
                self.shards.len(),
                self.epoch
            ))
        })
    }

    fn entry_by_id(&self, id: u64) -> Option<&Arc<ShardEntry>> {
        self.shards.iter().find(|e| e.id == id)
    }
}

/// A set of merged `[start, end)` leaf-index ranges.
type RangeSet = Vec<(u64, u64)>;

/// Bookkeeping for shards that left the tier: folded counters plus the
/// entries that may still be referenced by in-flight operations.
#[derive(Default)]
struct RetiredShards {
    /// Counters of retired shards whose last reference has dropped.
    folded: ServerStats,
    /// Retired entries possibly still held by in-flight snapshots.
    entries: Vec<Arc<ShardEntry>>,
}

impl RetiredShards {
    /// Folds quiescent entries (no outstanding in-flight `Arc`s, so their
    /// counters can no longer move) into the aggregate and drops them.
    fn compact(&mut self) {
        self.entries.retain(|entry| {
            if Arc::strong_count(entry) == 1 {
                self.folded.merge_from(&entry.server.lock().stats());
                false
            } else {
                true
            }
        });
    }

    /// Total counters across folded and still-referenced retirees.
    fn stats(&mut self) -> ServerStats {
        self.compact();
        let mut total = self.folded;
        for entry in &self.entries {
            total.merge_from(&entry.server.lock().stats());
        }
        total
    }
}

/// A sharded tier of MOIST front-end servers over one shared store, with
/// live shard join/leave (see the module docs for the membership design).
pub struct MoistCluster {
    cfg: MoistConfig,
    store: Arc<Bigtable>,
    /// Read-mostly membership snapshot; swapped whole on epoch bumps.
    /// Behind an `Arc` so scatter workers on the [`QueryPool`] can
    /// re-validate slice ownership against the freshest snapshot.
    membership: Arc<RwLock<Arc<Membership>>>,
    /// Shared worker pool running scattered query slices in parallel.
    query_pool: QueryPool,
    /// Counters of shards that left the tier (their updates — absorbed
    /// while live or in flight — must stay in [`stats`]). A departed
    /// shard's entry lingers only until its last in-flight `Arc` drops,
    /// then folds into the aggregate, so churn does not accumulate dead
    /// servers.
    ///
    /// [`stats`]: MoistCluster::stats
    retired: Mutex<RetiredShards>,
    /// Cluster-wide object-count estimate shared by every shard's FLAG.
    object_estimate: Arc<AtomicU64>,
    /// Archiver handed to every current and future shard.
    archiver: Option<Arc<PppArchiver>>,
    /// Next stable shard id to assign.
    next_shard_id: AtomicU64,
    /// Seqlock guarding the update path against stale routing: odd while
    /// a membership change is migrating cells, bumped to even once the new
    /// snapshot is published. [`update`](MoistCluster::update) re-reads it
    /// after taking the shard lock and re-routes if it moved, so a write
    /// never lands on a cell's *old* owner concurrently with the new
    /// owner clustering that cell.
    version: AtomicU64,
}

impl MoistCluster {
    /// Opens (or on first use creates) the MOIST tables in `store` and
    /// builds a tier of `shards` front-end servers around them.
    ///
    /// Each shard gets the rendezvous slice of the clustering schedule it
    /// wins and the shared object-count estimate (seeded from the store's
    /// row count, so a tier over a populated store starts with the right
    /// FLAG `n`).
    pub fn new(store: &Arc<Bigtable>, cfg: MoistConfig, shards: usize) -> Result<Self> {
        let shards = shards.max(1);
        let object_estimate = Arc::new(AtomicU64::new(0));
        let ids: Vec<u64> = (0..shards as u64).collect();
        let entries: Vec<Arc<ShardEntry>> = ids
            .iter()
            .map(|&id| {
                Ok(Arc::new(ShardEntry {
                    id,
                    server: Mutex::new(
                        MoistServer::new(store, cfg)?
                            .with_scheduler(ClusterScheduler::for_member(&cfg, id, &ids))
                            .with_shared_estimate(Arc::clone(&object_estimate)),
                    ),
                }))
            })
            .collect::<Result<_>>()?;
        Ok(MoistCluster {
            cfg,
            store: Arc::clone(store),
            membership: Arc::new(RwLock::new(Arc::new(Membership {
                epoch: 0,
                shards: entries,
            }))),
            query_pool: QueryPool::sized_for_host(),
            retired: Mutex::new(RetiredShards::default()),
            object_estimate,
            archiver: None,
            next_shard_id: AtomicU64::new(shards as u64),
            version: AtomicU64::new(0),
        })
    }

    /// Attaches one PPP archiver to every shard (current and future
    /// joiners): all non-shed location writes stream into the shared
    /// aged-data pipeline.
    pub fn with_archiver(mut self, archiver: Arc<PppArchiver>) -> Self {
        let snap = self.membership.read().clone();
        for entry in &snap.shards {
            entry.server.lock().set_archiver(Arc::clone(&archiver));
        }
        self.archiver = Some(archiver);
        self
    }

    /// The current membership snapshot.
    fn snapshot(&self) -> Arc<Membership> {
        self.membership.read().clone()
    }

    /// The entry owning clustering-cell index `key` in the current
    /// snapshot, as an owned `Arc` (keeps the shard alive for this
    /// operation across a concurrent membership change).
    fn owner_entry(&self, key: u64) -> Arc<ShardEntry> {
        Arc::clone(self.snapshot().owner_of(key))
    }

    /// The entry at position `shard` in the current snapshot, as an owned
    /// `Arc`.
    fn entry_at(&self, shard: usize) -> Result<Arc<ShardEntry>> {
        Ok(Arc::clone(self.snapshot().entry(shard)?))
    }

    /// Number of live front-end shards.
    pub fn num_shards(&self) -> usize {
        self.snapshot().shards.len()
    }

    /// The live shards' stable ids, in position order.
    pub fn shard_ids(&self) -> Vec<u64> {
        self.snapshot().ids()
    }

    /// The current membership epoch (bumped by every join/leave).
    pub fn epoch(&self) -> u64 {
        self.snapshot().epoch
    }

    /// The tier's configuration.
    pub fn config(&self) -> &MoistConfig {
        &self.cfg
    }

    /// Cluster-wide object-count estimate (FLAG's `n`).
    pub fn object_estimate(&self) -> u64 {
        self.object_estimate.load(Ordering::Relaxed)
    }

    /// Adds a fresh shard to the tier and returns its stable id.
    ///
    /// The joiner starts with an empty schedule; only the clustering cells
    /// whose rendezvous winner changed (≈ cells/(N+1) of them — exactly
    /// the joiner's wins) migrate, each adopted at the deadline phase it
    /// had on its old owner. In-flight operations keep routing against
    /// the pre-join snapshot and land correctly in the shared store.
    pub fn add_shard(&self) -> Result<u64> {
        let mut guard = self.membership.write();
        let old = Arc::clone(&guard);
        let id = self.next_shard_id.fetch_add(1, Ordering::Relaxed);
        let mut server = MoistServer::new(&self.store, self.cfg)?
            .with_scheduler(ClusterScheduler::empty(&self.cfg))
            .with_shared_estimate(Arc::clone(&self.object_estimate));
        if let Some(archiver) = &self.archiver {
            server = server.with_archiver(Arc::clone(archiver));
        }
        let joiner = Arc::new(ShardEntry {
            id,
            server: Mutex::new(server),
        });

        let mut shards = old.shards.clone();
        let pos = shards.partition_point(|e| e.id < id);
        shards.insert(pos, Arc::clone(&joiner));
        let new = Membership {
            epoch: old.epoch + 1,
            shards,
        };

        // Seqlock odd phase: updates started against the old snapshot
        // will re-validate and re-route rather than land on a cell whose
        // owner is mid-migration.
        self.version.fetch_add(1, Ordering::AcqRel);
        // Migrate exactly the cells whose rendezvous winner changed. With
        // rendezvous hashing those are precisely the joiner's wins, but
        // the loop stays generic: release from the old winner, adopt on
        // the new one, preserving each cell's deadline phase.
        for cell in 0..cells_at_level(self.cfg.clustering_level) {
            let old_owner = old.owner_of(cell);
            let new_owner = new.owner_of(cell);
            if old_owner.id == new_owner.id {
                continue;
            }
            let due = old_owner
                .server
                .lock()
                .scheduler_mut()
                .release(cell)
                .expect("old owner held the migrating cell");
            new_owner.server.lock().scheduler_mut().adopt(cell, due);
        }
        *guard = Arc::new(new);
        self.version.fetch_add(1, Ordering::AcqRel);
        Ok(id)
    }

    /// Removes the shard with stable id `id` from the tier.
    ///
    /// Only the departed shard's cells are reassigned — every other
    /// cell's owner is untouched (the rendezvous property) — and each
    /// reassigned cell is adopted by its new owner at its current deadline
    /// phase. The removed shard's counters remain in [`stats`] so no
    /// update it absorbed (live or in flight) goes unaccounted.
    ///
    /// Fails with [`MoistError::NoSuchShard`] if `id` is not a live shard
    /// or it is the last one (an empty tier could serve nothing).
    ///
    /// [`stats`]: MoistCluster::stats
    pub fn remove_shard(&self, id: u64) -> Result<()> {
        let mut guard = self.membership.write();
        let old = Arc::clone(&guard);
        let pos = old.position_of(id).ok_or_else(|| {
            MoistError::NoSuchShard(format!(
                "shard id {id} is not in the live membership {:?} (epoch {})",
                old.ids(),
                old.epoch
            ))
        })?;
        if old.shards.len() == 1 {
            return Err(MoistError::NoSuchShard(format!(
                "cannot remove shard id {id}: it is the last live shard"
            )));
        }
        let departed = Arc::clone(&old.shards[pos]);
        let mut shards = old.shards.clone();
        shards.remove(pos);
        let new = Membership {
            epoch: old.epoch + 1,
            shards,
        };

        // Seqlock odd phase (see `add_shard`).
        self.version.fetch_add(1, Ordering::AcqRel);
        // Hand every cell the departed shard owned to its new rendezvous
        // winner, at the deadline phase it had on the departed shard.
        let handoff = departed.server.lock().scheduler_mut().drain();
        for (cell, due) in handoff {
            new.owner_of(cell)
                .server
                .lock()
                .scheduler_mut()
                .adopt(cell, due);
        }
        let mut retired = self.retired.lock();
        retired.entries.push(departed);
        retired.compact();
        drop(retired);
        *guard = Arc::new(new);
        self.version.fetch_add(1, Ordering::AcqRel);
        Ok(())
    }

    /// The position (in current membership order) of the shard owning the
    /// clustering cell containing `p`.
    pub fn shard_for_point(&self, p: &Point) -> usize {
        let cell = self.cfg.space.cell_at(self.cfg.clustering_level, p);
        self.owner_position(cell.index)
    }

    /// The position of the rendezvous winner for `key` in the current
    /// snapshot.
    fn owner_position(&self, key: u64) -> usize {
        let snap = self.snapshot();
        let id = snap.owner_of(key).id;
        snap.position_of(id).expect("winner is live")
    }

    /// The position of the shard owning clustering cell `cell` (coarser or
    /// finer cells are mapped through their ancestor/descendant at the
    /// clustering level).
    pub fn shard_for_cell(&self, cell: CellId) -> usize {
        self.owner_position(self.clustering_index_of(cell))
    }

    /// `cell`'s ancestor/descendant index at the clustering level.
    fn clustering_index_of(&self, cell: CellId) -> u64 {
        if cell.level >= self.cfg.clustering_level {
            cell.index >> (2 * (cell.level - self.cfg.clustering_level) as u64)
        } else {
            cell.index << (2 * (self.cfg.clustering_level - cell.level) as u64)
        }
    }

    /// The position of the shard answering object-keyed lookups for `oid`
    /// (pure load spreading — any shard could serve them from the shared
    /// store).
    pub fn shard_for_object(&self, oid: ObjectId) -> usize {
        self.owner_position(oid.0)
    }

    /// Runs `f` against one shard's server by position (stats inspection,
    /// clock resets, direct table access in tests). Fails with
    /// [`MoistError::NoSuchShard`] when `shard` is past the current
    /// membership instead of panicking, so callers racing a shard removal
    /// degrade gracefully.
    pub fn with_shard<R>(&self, shard: usize, f: impl FnOnce(&mut MoistServer) -> R) -> Result<R> {
        let entry = self.entry_at(shard)?;
        let mut server = entry.server.lock();
        Ok(f(&mut server))
    }

    /// Applies one update on the shard owning the update's clustering cell.
    ///
    /// Routing is seqlock-validated against membership changes: the
    /// version is read before routing and re-read *after* the owner's
    /// lock is held; if a join/leave ran (or is running) in between, the
    /// lock is dropped and routing retries on the new snapshot. This
    /// keeps the exclusivity invariant — a cell's updates and its
    /// clustering serialize on the current owner's lock — across epoch
    /// bumps: without it, an update routed on a pre-bump snapshot could
    /// mutate a migrated cell's school state on the *old* owner while the
    /// new owner is already clustering that cell. Read-only queries skip
    /// the validation deliberately (a stale-routed read still scans a
    /// consistent store).
    pub fn update(&self, msg: &UpdateMessage) -> Result<UpdateOutcome> {
        let cell = self.cfg.space.cell_at(self.cfg.clustering_level, &msg.loc);
        loop {
            let v1 = self.version.load(Ordering::Acquire);
            if v1 % 2 == 1 {
                // A membership change is migrating cells right now.
                std::thread::yield_now();
                continue;
            }
            let entry = self.owner_entry(cell.index);
            let mut server = entry.server.lock();
            if self.version.load(Ordering::Acquire) == v1 {
                return server.update(msg);
            }
            // Membership moved while we were acquiring the lock; this
            // entry may no longer own the cell. Re-route.
            drop(server);
        }
    }

    /// FLAG-tuned k-nearest-neighbour query.
    ///
    /// When the candidate ring (query cell + edge neighbours at the FLAG
    /// level) crosses a shard-ownership boundary, the ring's scans scatter
    /// across the owning shards in parallel and the partials merge; when
    /// the merged ring cannot *prove* the k-th neighbour (its distance
    /// exceeds the ring's covered radius) the query falls back to the
    /// exact single-shard frontier search, so the answer is always the
    /// plain Algorithm 2 answer. Rings on one shard skip the scatter
    /// entirely — the current anchor-routed path.
    pub fn nn(&self, center: Point, k: usize, at: Timestamp) -> Result<(Vec<Neighbor>, NnStats)> {
        let cell = self.cfg.space.cell_at(self.cfg.clustering_level, &center);
        let anchor = self.owner_entry(cell.index);
        let level = { anchor.server.lock().flag_level(&center, at)? };
        self.nn_scatter(center, k, at, level, &anchor)
    }

    /// The scatter-or-fallback NN body shared by [`nn`](MoistCluster::nn).
    fn nn_scatter(
        &self,
        center: Point,
        k: usize,
        at: Timestamp,
        nn_level: u8,
        anchor: &Arc<ShardEntry>,
    ) -> Result<(Vec<Neighbor>, NnStats)> {
        let ring = nn_candidate_ring(&self.cfg, &center, nn_level);
        let snap = self.snapshot();
        let mut by_owner: Vec<(Arc<ShardEntry>, Vec<CellId>)> = Vec::new();
        for &cell in &ring {
            let owner = snap.owner_of(self.clustering_index_of(cell));
            match by_owner.iter_mut().find(|(e, _)| e.id == owner.id) {
                Some((_, cells)) => cells.push(cell),
                None => by_owner.push((Arc::clone(owner), vec![cell])),
            }
        }
        if k == 0 || by_owner.len() <= 1 {
            // The whole ring lives on one shard: plain Algorithm 2 there.
            let mut server = anchor.server.lock();
            return server.nn_at_level(center, k, at, nn_level);
        }

        let opts = NnOptions::new(k, nn_level);
        let tasks: Vec<_> = by_owner
            .into_iter()
            .map(|(entry, cells)| {
                move || -> Result<NnPartial> {
                    let mut server = entry.server.lock();
                    server.nn_partial(&cells, center, at, &opts)
                }
            })
            .collect();
        let mut parts = Vec::new();
        for outcome in self.query_pool.scatter(tasks) {
            parts.push(outcome?);
        }
        let (merged, mut stats) = merge_ring_partials(&self.cfg, &center, &ring, parts, &opts);
        if let Some(nn) = merged {
            // One client query: the scattered partials are not counted
            // individually, so credit the anchor shard with the query.
            anchor.server.lock().note_query_served();
            return Ok((nn, stats));
        }
        // The replayed frontier escaped the ring (sparse cells, or a
        // school/velocity bound the ring cannot prove): run the exact
        // frontier search on the anchor. The scattered scan stays on the
        // bill — the client saw both phases.
        let (nn, fallback) = {
            let mut server = anchor.server.lock();
            server.nn_at_level(center, k, at, nn_level)?
        };
        stats.cells_scanned += fallback.cells_scanned;
        stats.leaders_fetched += fallback.leaders_fetched;
        stats.cost_us += fallback.cost_us;
        Ok((nn, stats))
    }

    /// k-NN at a fixed search level, routed like [`MoistCluster::nn`].
    pub fn nn_at_level(
        &self,
        center: Point,
        k: usize,
        at: Timestamp,
        nn_level: u8,
    ) -> Result<(Vec<Neighbor>, NnStats)> {
        let cell = self.cfg.space.cell_at(self.cfg.clustering_level, &center);
        let entry = self.owner_entry(cell.index);
        let mut server = entry.server.lock();
        server.nn_at_level(center, k, at, nn_level)
    }

    /// Region query, scatter-gathered across the owning shards.
    ///
    /// The merged leaf ranges are planned once, owner-sliced (an exact
    /// partition — see [`slice_ranges_by_owner`]), scanned in parallel on
    /// the [`QueryPool`] (one slice per owning shard, each under its own
    /// shard lock), and merged: hits move into one list and each object
    /// dedups exactly once at the merge. `cost_us` in the returned stats
    /// is the client-visible latency of the fan-out: within a scatter
    /// round the slices overlap, so the round costs its *slowest* partial,
    /// and the (rare, churn-only) re-route rounds run back to back, so
    /// rounds *add*. `shards_scattered` counts distinct shards that
    /// scanned. A plan whose ranges all belong to one shard runs inline on
    /// that shard, no pool hop.
    ///
    /// Workers re-validate their slice against the freshest membership
    /// snapshot (re-slicing it with the same property-tested
    /// [`slice_ranges_by_owner`] the dispatch used), so an epoch bump
    /// mid-scatter re-routes only the slices whose cells actually
    /// migrated; reads are correct on any shard (one shared store), the
    /// re-route just keeps load on the current owners.
    pub fn region(
        &self,
        rect: &Rect,
        at: Timestamp,
        margin: f64,
    ) -> Result<(Vec<Neighbor>, RegionStats)> {
        let clustering_level = self.cfg.clustering_level;
        let leaf_level = self.cfg.space.leaf_level;
        let mut pending = plan_region_ranges(&self.cfg, rect, margin);
        let mut parts: Vec<RegionPartial> = Vec::new();
        let mut scanned_shards: std::collections::HashSet<u64> = std::collections::HashSet::new();
        let mut cost_us = 0.0f64;
        let mut round = 0usize;
        while !pending.is_empty() {
            round += 1;
            let revalidate = round < MAX_REROUTE_ROUNDS;
            let snap = self.snapshot();
            let slices = slice_ranges_by_owner(&pending, clustering_level, leaf_level, &snap.ids());
            pending = Vec::new();
            let rect = *rect;
            let dispatch_epoch = snap.epoch;
            let tasks: Vec<_> = slices
                .into_iter()
                .map(|(id, ranges)| {
                    let entry = Arc::clone(snap.entry_by_id(id).expect("sliced to a live owner"));
                    let membership = Arc::clone(&self.membership);
                    move || -> Result<(u64, RegionPartial, RangeSet)> {
                        let (mine, migrated) = if revalidate {
                            // Freshest snapshot; the read guard drops
                            // before the shard lock is taken, so there is
                            // no ordering cycle with add/remove_shard
                            // (which hold the write lock while locking
                            // shards for the handoff). Same epoch — the
                            // common, churn-free case — means the dispatch
                            // slicing is still exact: skip re-hashing.
                            let now = membership.read().clone();
                            if now.epoch == dispatch_epoch {
                                (ranges, Vec::new())
                            } else {
                                let mut mine = Vec::new();
                                let mut migrated = Vec::new();
                                for (owner, slice) in slice_ranges_by_owner(
                                    &ranges,
                                    clustering_level,
                                    leaf_level,
                                    &now.ids(),
                                ) {
                                    if owner == entry.id {
                                        mine = slice;
                                    } else {
                                        migrated.extend(slice);
                                    }
                                }
                                (mine, migrated)
                            }
                        } else {
                            (ranges, Vec::new())
                        };
                        if mine.is_empty() {
                            return Ok((entry.id, RegionPartial::default(), migrated));
                        }
                        let mut server = entry.server.lock();
                        let part = server.region_partial(&mine, &rect, at)?;
                        Ok((entry.id, part, migrated))
                    }
                })
                .collect();
            let mut round_cost = 0.0f64;
            for outcome in self.query_pool.scatter(tasks) {
                let (id, part, migrated) = outcome?;
                round_cost = round_cost.max(part.stats.cost_us);
                if part.stats.shards_scattered > 0 {
                    scanned_shards.insert(id);
                    parts.push(part);
                }
                pending.extend(migrated);
            }
            // Rounds run sequentially: the client waits for each round's
            // slowest slice in turn.
            cost_us += round_cost;
        }
        let (hits, mut stats) = merge_region_partials(parts);
        stats.cost_us = cost_us;
        stats.shards_scattered = scanned_shards.len();
        Ok((hits, stats))
    }

    /// The pre-fan-out region path: the whole query runs on the single
    /// shard owning the rectangle's centre cell. Kept as the baseline the
    /// `fig15_fanout` bench compares scatter-gather against (and the
    /// right call when a deployment pins queries for cache locality).
    pub fn region_anchor(
        &self,
        rect: &Rect,
        at: Timestamp,
        margin: f64,
    ) -> Result<(Vec<Neighbor>, RegionStats)> {
        let center = rect.center();
        let cell = self.cfg.space.cell_at(self.cfg.clustering_level, &center);
        let entry = self.owner_entry(cell.index);
        let mut server = entry.server.lock();
        server.region(rect, at, margin)
    }

    /// Current position of one object, routed by object id.
    pub fn position(&self, oid: ObjectId, at: Timestamp) -> Result<Option<Point>> {
        let entry = self.owner_entry(oid.0);
        let mut server = entry.server.lock();
        server.position(oid, at)
    }

    /// Runs lazy clustering on one shard by position: only the cells that
    /// shard owns and that are due fire, so across shards each cell is
    /// clustered by exactly one server. Workers call this for "their"
    /// shard on a tick; a worker racing a shard removal gets
    /// [`MoistError::NoSuchShard`], not a panic.
    pub fn run_due_clustering_shard(&self, shard: usize, now: Timestamp) -> Result<ClusterReport> {
        let entry = self.entry_at(shard)?;
        let mut server = entry.server.lock();
        server.run_due_clustering(now)
    }

    /// Runs lazy clustering on every shard in turn (single-driver mode).
    pub fn run_due_clustering(&self, now: Timestamp) -> Result<ClusterReport> {
        let snap = self.snapshot();
        let mut total = ClusterReport::default();
        for entry in &snap.shards {
            total.merge_from(&entry.server.lock().run_due_clustering(now)?);
        }
        Ok(total)
    }

    /// Ages out cold records. The aging columns are table-global, so this
    /// runs once (through the first live shard), not once per shard.
    pub fn age_data(&self, now: Timestamp) -> Result<usize> {
        let entry = self.entry_at(0)?;
        let mut server = entry.server.lock();
        server.age_data(now)
    }

    /// Aggregate operation counters across all shards, including shards
    /// that have since left the tier (so a failover never "loses" the
    /// updates the departed shard absorbed).
    pub fn stats(&self) -> ServerStats {
        let snap = self.snapshot();
        let mut total = self.retired.lock().stats();
        for entry in &snap.shards {
            total.merge_from(&entry.server.lock().stats());
        }
        total
    }

    /// Per-shard operation counters for the live shards, in position
    /// order.
    pub fn shard_stats(&self) -> Vec<ServerStats> {
        let snap = self.snapshot();
        snap.shards
            .iter()
            .map(|e| e.server.lock().stats())
            .collect()
    }

    /// Per-shard virtual elapsed microseconds for the live shards, in
    /// position order.
    pub fn shard_elapsed_us(&self) -> Vec<f64> {
        let snap = self.snapshot();
        snap.shards
            .iter()
            .map(|e| e.server.lock().elapsed_us())
            .collect()
    }

    /// Virtual elapsed microseconds of the busiest live shard — the tier's
    /// makespan, since shards consume store time in parallel.
    pub fn max_elapsed_us(&self) -> f64 {
        self.shard_elapsed_us().into_iter().fold(0.0, f64::max)
    }

    /// Sum of the live shards' virtual elapsed microseconds (total store
    /// work).
    pub fn total_elapsed_us(&self) -> f64 {
        self.shard_elapsed_us().into_iter().sum()
    }

    /// Resets every live shard's session clock (benches do this after
    /// warm-up).
    pub fn reset_clocks(&self) {
        let snap = self.snapshot();
        for entry in &snap.shards {
            entry.server.lock().session_mut().reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moist_spatial::Velocity;

    fn msg(oid: u64, x: f64, y: f64, vx: f64, secs: f64) -> UpdateMessage {
        UpdateMessage {
            oid: ObjectId(oid),
            loc: Point::new(x, y),
            vel: Velocity::new(vx, 0.0),
            ts: Timestamp::from_secs_f64(secs),
        }
    }

    /// Owner positions of every clustering cell: asserts exactly one live
    /// shard owns each cell and returns the owners.
    fn sole_owners(cluster: &MoistCluster) -> Vec<usize> {
        let cells = cells_at_level(cluster.config().clustering_level);
        (0..cells)
            .map(|index| {
                let owners: Vec<usize> = (0..cluster.num_shards())
                    .filter(|&i| {
                        cluster
                            .with_shard(i, |s| s.scheduler().owns(index))
                            .unwrap()
                    })
                    .collect();
                assert_eq!(owners.len(), 1, "cell {index} owners: {owners:?}");
                owners[0]
            })
            .collect()
    }

    #[test]
    fn routes_by_clustering_cell_and_serves_cross_shard_queries() {
        let store = Bigtable::new();
        let cfg = MoistConfig::default();
        let cluster = MoistCluster::new(&store, cfg, 4).unwrap();
        // Spread objects over the whole map so several shards see traffic.
        for i in 0..64u64 {
            let x = 15.0 + 970.0 * (i % 8) as f64 / 8.0;
            let y = 15.0 + 970.0 * (i / 8) as f64 / 8.0;
            cluster.update(&msg(i, x, y, 1.0, 0.0)).unwrap();
        }
        let stats = cluster.stats();
        assert_eq!(stats.updates, 64);
        assert_eq!(stats.registered, 64);
        assert_eq!(cluster.object_estimate(), 64);
        let active = cluster
            .shard_stats()
            .iter()
            .filter(|s| s.updates > 0)
            .count();
        assert!(active >= 2, "hash routing must spread load, got {active}");
        // A query lands on one shard but sees every shard's writes.
        let (nn, _) = cluster
            .nn(Point::new(500.0, 500.0), 64, Timestamp::ZERO)
            .unwrap();
        assert_eq!(nn.len(), 64);
        // Object-keyed reads work for every object from any routing.
        for i in [0u64, 31, 63] {
            assert!(cluster
                .position(ObjectId(i), Timestamp::ZERO)
                .unwrap()
                .is_some());
        }
    }

    #[test]
    fn same_cell_updates_always_hit_the_same_shard() {
        let store = Bigtable::new();
        let cfg = MoistConfig::default();
        let cluster = MoistCluster::new(&store, cfg, 5).unwrap();
        // Points in one clustering cell route identically; the routing
        // agrees with scheduler ownership, so the shard applying a cell's
        // updates is also the only one clustering it.
        let p = Point::new(123.0, 456.0);
        let shard = cluster.shard_for_point(&p);
        let cell = cfg.space.cell_at(cfg.clustering_level, &p);
        assert_eq!(cluster.shard_for_cell(cell), shard);
        let leaf = cfg.space.leaf_cell(&p);
        assert_eq!(cluster.shard_for_cell(leaf), shard);
        assert!(cluster
            .with_shard(shard, |s| s.scheduler().owns(cell.index))
            .unwrap());
        for other in 0..cluster.num_shards() {
            if other != shard {
                assert!(!cluster
                    .with_shard(other, |s| s.scheduler().owns(cell.index))
                    .unwrap());
            }
        }
    }

    #[test]
    fn clustering_partition_covers_level_exactly_once() {
        let store = Bigtable::new();
        let cfg = MoistConfig {
            clustering_level: 3,
            cluster_interval_secs: 10.0,
            ..MoistConfig::default()
        };
        let cluster = MoistCluster::new(&store, cfg, 4).unwrap();
        let owned: usize = (0..cluster.num_shards())
            .map(|i| {
                cluster
                    .with_shard(i, |s| s.scheduler().owned_count())
                    .unwrap()
            })
            .sum();
        assert_eq!(owned as u64, cells_at_level(cfg.clustering_level));
        // One sweep past every staggered deadline: each cell fires once,
        // on its owner, so total runs equal the cell count exactly.
        let now = Timestamp::from_secs(25);
        for i in 0..cluster.num_shards() {
            cluster.run_due_clustering_shard(i, now).unwrap();
        }
        assert_eq!(
            cluster.stats().cluster_runs,
            cells_at_level(cfg.clustering_level)
        );
    }

    #[test]
    fn schools_form_and_shed_through_the_tier() {
        let store = Bigtable::new();
        let cfg = MoistConfig {
            epsilon: 50.0,
            clustering_level: 2,
            ..MoistConfig::default()
        };
        let cluster = MoistCluster::new(&store, cfg, 3).unwrap();
        // Two co-moving objects in one cell.
        cluster.update(&msg(1, 100.0, 100.0, 1.0, 0.0)).unwrap();
        cluster.update(&msg(2, 101.0, 100.0, 1.0, 0.0)).unwrap();
        cluster
            .run_due_clustering(Timestamp::from_secs(30))
            .unwrap();
        for t in 1..=10u64 {
            let x = 101.0 + t as f64;
            cluster.update(&msg(2, x, 100.0, 1.0, t as f64)).unwrap();
        }
        let stats = cluster.stats();
        assert!(stats.shed >= 9, "stats: {stats:?}");
        assert!(stats.balanced(), "counters must sum: {stats:?}");
    }

    #[test]
    fn add_shard_migrates_only_the_joiners_wins_and_keeps_phase() {
        let store = Bigtable::new();
        let cfg = MoistConfig {
            clustering_level: 4, // 256 cells
            cluster_interval_secs: 10.0,
            ..MoistConfig::default()
        };
        let cluster = MoistCluster::new(&store, cfg, 3).unwrap();
        assert_eq!(cluster.epoch(), 0);
        let cells = cells_at_level(cfg.clustering_level);
        // Record each cell's owner *id* and deadline before the join.
        let owners_before = sole_owners(&cluster);
        let before: Vec<(u64, u64)> = (0..cells)
            .map(|index| {
                let pos = owners_before[index as usize];
                let id = cluster.shard_ids()[pos];
                let due = cluster
                    .with_shard(pos, |s| s.scheduler().deadline_of(index))
                    .unwrap()
                    .unwrap();
                (id, due)
            })
            .collect();

        let joiner = cluster.add_shard().unwrap();
        assert_eq!(cluster.num_shards(), 4);
        assert_eq!(cluster.epoch(), 1);
        assert!(cluster.shard_ids().contains(&joiner));

        let owners_after = sole_owners(&cluster);
        let mut migrated = 0u64;
        for index in 0..cells {
            let pos = owners_after[index as usize];
            let id_after = cluster.shard_ids()[pos];
            let due_after = cluster
                .with_shard(pos, |s| s.scheduler().deadline_of(index))
                .unwrap()
                .unwrap();
            let (id_before, due_before) = before[index as usize];
            assert_eq!(due_after, due_before, "cell {index} must keep its phase");
            if id_after != id_before {
                migrated += 1;
                assert_eq!(id_after, joiner, "only the joiner may steal cells");
            }
        }
        // ~cells/(N+1) migrate; generous statistical slack, but far below
        // the near-total remap a modular hash would cause.
        assert!(migrated > 0, "the joiner must win some cells");
        assert!(
            migrated <= cells / 4 + cells / 8,
            "migrated {migrated} of {cells} — not a minimal remap"
        );
    }

    #[test]
    fn remove_shard_reassigns_only_the_departed_cells() {
        let store = Bigtable::new();
        let cfg = MoistConfig {
            epsilon: 50.0,
            clustering_level: 3, // 64 cells
            cluster_interval_secs: 10.0,
            ..MoistConfig::default()
        };
        let cluster = MoistCluster::new(&store, cfg, 4).unwrap();
        for i in 0..64u64 {
            let x = 15.0 + 970.0 * (i % 8) as f64 / 8.0;
            let y = 15.0 + 970.0 * (i / 8) as f64 / 8.0;
            cluster.update(&msg(i, x, y, 1.0, 0.0)).unwrap();
        }
        let cells = cells_at_level(cfg.clustering_level);
        let owners_before: Vec<u64> = {
            let owners = sole_owners(&cluster);
            owners.iter().map(|&pos| cluster.shard_ids()[pos]).collect()
        };
        let victim = cluster.shard_ids()[1];
        let victim_updates = cluster.shard_stats()[1].updates;
        cluster.remove_shard(victim).unwrap();
        assert_eq!(cluster.num_shards(), 3);
        assert_eq!(cluster.epoch(), 1);
        assert!(!cluster.shard_ids().contains(&victim));

        let owners_after = sole_owners(&cluster);
        for index in 0..cells {
            let id_after = cluster.shard_ids()[owners_after[index as usize]];
            let id_before = owners_before[index as usize];
            if id_before != victim {
                assert_eq!(id_after, id_before, "cell {index} must not move");
            } else {
                assert_ne!(id_after, victim);
            }
        }
        // The departed shard's updates stay in the aggregate…
        let agg = cluster.stats();
        assert_eq!(agg.updates, 64);
        assert!(victim_updates > 0, "victim should have taken traffic");
        // …and the whole map still answers queries.
        let (nn, _) = cluster
            .nn(Point::new(500.0, 500.0), 64, Timestamp::ZERO)
            .unwrap();
        assert_eq!(nn.len(), 64);
    }

    /// Deterministic xorshift scatter in (0, 1000)².
    fn scattered(n: u64) -> Vec<(u64, f64, f64)> {
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|i| (i, next() * 1000.0, next() * 1000.0))
            .collect()
    }

    #[test]
    fn scattered_region_matches_anchor_routing_and_fans_out() {
        let store = Bigtable::new();
        let cfg = MoistConfig {
            clustering_level: 3, // 64 cells spread over the shards
            ..MoistConfig::default()
        };
        let cluster = MoistCluster::new(&store, cfg, 4).unwrap();
        for &(i, x, y) in &scattered(200) {
            cluster.update(&msg(i, x, y, 0.0, 0.0)).unwrap();
        }
        let rects = [
            cfg.space.world,
            Rect::new(100.0, 100.0, 900.0, 450.0),
            Rect::new(700.0, 700.0, 780.0, 790.0),
        ];
        for rect in &rects {
            let (anchor, _) = cluster.region_anchor(rect, Timestamp::ZERO, 0.0).unwrap();
            let (fanout, stats) = cluster.region(rect, Timestamp::ZERO, 0.0).unwrap();
            let a: Vec<u64> = anchor.iter().map(|n| n.oid.0).collect();
            let f: Vec<u64> = fanout.iter().map(|n| n.oid.0).collect();
            assert_eq!(a, f, "fan-out must return the anchor answer");
            let mut unique = f.clone();
            unique.dedup();
            assert_eq!(unique.len(), f.len(), "no duplicated objects");
            assert!(stats.ranges_scanned >= 1);
        }
        // The whole map genuinely scatters across several shards, and its
        // client-visible cost is the slowest slice, below the serialized
        // anchor scan.
        let (_, anchor_stats) = cluster
            .region_anchor(&cfg.space.world, Timestamp::ZERO, 0.0)
            .unwrap();
        let (_, fan_stats) = cluster
            .region(&cfg.space.world, Timestamp::ZERO, 0.0)
            .unwrap();
        assert!(
            fan_stats.shards_scattered >= 2,
            "whole-map query must scatter, got {fan_stats:?}"
        );
        assert!(
            fan_stats.cost_us < anchor_stats.cost_us,
            "overlapped slices must beat the serialized scan: {} vs {}",
            fan_stats.cost_us,
            anchor_stats.cost_us
        );
    }

    #[test]
    fn scattered_nn_agrees_with_the_single_shard_frontier_search() {
        let store = Bigtable::new();
        let cfg = MoistConfig {
            epsilon: 50.0,
            clustering_level: 3,
            ..MoistConfig::default()
        };
        let cluster = MoistCluster::new(&store, cfg, 5).unwrap();
        for &(i, x, y) in &scattered(300) {
            cluster.update(&msg(i, x, y, 0.0, 0.0)).unwrap();
        }
        // Form schools: zero-velocity co-located leaders merge, so many
        // probes now return followers displaced up to a clustering-cell
        // diagonal from their leader's spatial entry — exactly the shape
        // that would diverge if the merge trusted cell distances instead
        // of replaying the frontier.
        cluster
            .run_due_clustering(Timestamp::from_secs(25))
            .unwrap();
        let queries_before = cluster.stats().nn_queries;
        let mut oracle = MoistServer::new(&store, cfg).unwrap();
        // Probe points include cell-boundary huggers (the scatter case)
        // and interior points (the single-shard case).
        let probes = [
            Point::new(500.0, 500.0),
            Point::new(499.9, 250.1),
            Point::new(125.3, 875.2),
            Point::new(3.0, 3.0),
            Point::new(750.1, 749.9),
        ];
        let mut total = 0u64;
        for p in &probes {
            for k in [1usize, 5, 20] {
                let (got, _) = cluster.nn(*p, k, Timestamp::ZERO).unwrap();
                let level = oracle.flag_level(p, Timestamp::ZERO).unwrap();
                let (want, _) = oracle.nn_at_level(*p, k, Timestamp::ZERO, level).unwrap();
                let got_ids: Vec<u64> = got.iter().map(|n| n.oid.0).collect();
                let want_ids: Vec<u64> = want.iter().map(|n| n.oid.0).collect();
                assert_eq!(got_ids, want_ids, "probe {p:?} k={k}");
                total += 1;
            }
        }
        // Every client query counts exactly once, whichever path (pure
        // scatter, scatter + fallback, or single-shard) served it.
        assert_eq!(cluster.stats().nn_queries - queries_before, total);
    }

    #[test]
    fn shard_errors_are_typed_not_panics() {
        let store = Bigtable::new();
        let cluster = MoistCluster::new(&store, MoistConfig::default(), 2).unwrap();
        // Position past the membership.
        let err = cluster.with_shard(7, |_| ()).unwrap_err();
        assert!(matches!(err, MoistError::NoSuchShard(_)), "got {err:?}");
        let err = cluster
            .run_due_clustering_shard(7, Timestamp::ZERO)
            .unwrap_err();
        assert!(matches!(err, MoistError::NoSuchShard(_)), "got {err:?}");
        // Unknown id.
        let err = cluster.remove_shard(999).unwrap_err();
        assert!(matches!(err, MoistError::NoSuchShard(_)), "got {err:?}");
        // Removing the last shard.
        let ids = cluster.shard_ids();
        cluster.remove_shard(ids[0]).unwrap();
        let err = cluster.remove_shard(ids[1]).unwrap_err();
        assert!(matches!(err, MoistError::NoSuchShard(_)), "got {err:?}");
        assert_eq!(cluster.num_shards(), 1);
    }
}
