//! FLAG — Fast Level Adaptive Grid (§3.4.2, Algorithms 3 and 4).
//!
//! The NN level `l_n` decides how many objects one batch scan returns. FLAG
//! tunes it so every visited NN cell holds about σ objects: starting from
//! the uniform-density guess `l_n = ½·log₂(n/σ)`, it measures the actual
//! population `m` of the candidate cell and moves by `δ = ½·log₂(m/σ)`
//! levels, bisection-bounded, until converged.
//!
//! Computed levels are cached per *key range* with a timestamp (Algorithm
//! 4): urban and rural areas cache different levels, and entries go stale so
//! business districts re-tune after office hours.

use crate::config::MoistConfig;
use crate::error::Result;
use crate::tables::MoistTables;
use moist_bigtable::{Session, Timestamp};
use moist_spatial::Point;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Cache + tuner statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlagStats {
    /// Queries answered from the cache.
    pub cache_hits: u64,
    /// Queries that ran Algorithm 3.
    pub cache_misses: u64,
    /// Total population probes (cell counts) issued by Algorithm 3.
    pub probes: u64,
}

#[derive(Debug, Clone, Copy)]
struct CacheEntry {
    right: u64,
    level: u8,
    created: Timestamp,
}

/// Outcome of a shared-guard cache probe (the fast path of Algorithm 4).
///
/// Splitting the lookup from the insert lets a server hold only a *read*
/// guard on the tuner for cache hits — the common case — and upgrade to
/// the write guard only when a query actually re-tunes the level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlagLookup {
    /// Fresh cached level; `cache_hits` has been counted.
    Hit(u8),
    /// A covering entry exists but has expired — pass its key to
    /// [`FlagTuner::complete_miss`] so it gets evicted with the insert.
    Stale(u64),
    /// No covering entry.
    Miss,
}

/// The FLAG tuner with its location-sensitive level cache.
///
/// Statistics counters are atomics so the hit path and Algorithm 3's
/// probe loop work through `&self`; only [`FlagTuner::complete_miss`]
/// (cache mutation) needs `&mut`.
#[derive(Debug)]
pub struct FlagTuner {
    sigma: usize,
    ttl_secs: f64,
    /// Entries keyed by range start (leaf index).
    cache: BTreeMap<u64, CacheEntry>,
    max_entries: usize,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    probes: AtomicU64,
}

impl FlagTuner {
    /// Creates a tuner using `cfg`'s σ and cache TTL.
    pub fn new(cfg: &MoistConfig) -> Self {
        FlagTuner {
            sigma: cfg.sigma.max(1),
            ttl_secs: cfg.flag_cache_ttl_secs.max(0.0),
            cache: BTreeMap::new(),
            max_entries: 4096,
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            probes: AtomicU64::new(0),
        }
    }

    /// Tuner statistics.
    pub fn stats(&self) -> FlagStats {
        FlagStats {
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            probes: self.probes.load(Ordering::Relaxed),
        }
    }

    /// Cached entries currently held.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Drops every cached level (e.g. after bulk loads).
    pub fn invalidate(&mut self) {
        self.cache.clear();
    }

    /// Algorithm 4 fast path: probes the cache for a level covering leaf
    /// `index`, counting a hit when the entry is fresh. Shared access
    /// only — safe under a read guard.
    pub fn lookup(&self, index: u64, now: Timestamp) -> FlagLookup {
        // Look back through a few candidate ranges (entries are keyed by
        // range start; nested/overlapping ranges from earlier epochs may
        // shadow each other — missing just costs a recompute).
        for (&left, entry) in self.cache.range(..=index).rev().take(4) {
            if index < entry.right {
                if now.secs_since(entry.created) <= self.ttl_secs {
                    self.cache_hits.fetch_add(1, Ordering::Relaxed);
                    return FlagLookup::Hit(entry.level);
                }
                return FlagLookup::Stale(left);
            }
        }
        FlagLookup::Miss
    }

    /// Algorithm 4 slow path: records the miss, evicts the stale entry
    /// from [`FlagTuner::lookup`] (if any), and caches `level` for the
    /// whole cell at that level containing `loc`. The only method that
    /// mutates the cache — callers take the write guard just for this.
    pub fn complete_miss(
        &mut self,
        stale_key: Option<u64>,
        cfg: &MoistConfig,
        loc: &Point,
        level: u8,
        now: Timestamp,
    ) {
        if let Some(k) = stale_key {
            self.cache.remove(&k);
        }
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
        let cell = cfg.space.cell_at(level, loc);
        if let Some((left, right)) = cell.descendant_range(cfg.space.leaf_level) {
            if self.cache.len() >= self.max_entries {
                // Evict the oldest entry.
                if let Some((&k, _)) = self.cache.iter().min_by_key(|(_, e)| e.created) {
                    self.cache.remove(&k);
                }
            }
            self.cache.insert(
                left,
                CacheEntry {
                    right,
                    level,
                    created: now,
                },
            );
        }
    }

    /// Algorithm 4: cached best level for `loc`, recomputing on miss or
    /// staleness. `total_objects` is the global object count `n` feeding
    /// Algorithm 3's initial guess.
    pub fn best_level(
        &mut self,
        s: &mut Session,
        tables: &MoistTables,
        cfg: &MoistConfig,
        loc: &Point,
        total_objects: u64,
        now: Timestamp,
    ) -> Result<u8> {
        let index = cfg.space.leaf_cell(loc).index;
        let stale_key = match self.lookup(index, now) {
            FlagLookup::Hit(level) => return Ok(level),
            FlagLookup::Stale(k) => Some(k),
            FlagLookup::Miss => None,
        };
        let level = self.calculate_best_level(s, tables, cfg, loc, total_objects)?;
        self.complete_miss(stale_key, cfg, loc, level, now);
        Ok(level)
    }

    /// Algorithm 3: bisection on the level so the cell containing `loc`
    /// holds about σ objects.
    pub fn calculate_best_level(
        &self,
        s: &mut Session,
        tables: &MoistTables,
        cfg: &MoistConfig,
        loc: &Point,
        total_objects: u64,
    ) -> Result<u8> {
        let sigma = self.sigma as f64;
        let leaf = cfg.space.leaf_level;
        let clamp = |l: i64| -> u8 { l.clamp(0, leaf as i64) as u8 };
        let n = total_objects.max(1) as f64;
        // Line 1: uniform-distribution guess.
        let mut ln: i64 = (0.5 * (n / sigma).log2()).round() as i64;
        ln = ln.clamp(0, leaf as i64);
        let mut min_ln: i64 = i64::MIN;
        let mut max_ln: i64 = i64::MAX;
        loop {
            let cell = cfg.space.cell_at(clamp(ln), loc);
            let m = tables.spatial_count_cell(s, cell, leaf)? as f64;
            self.probes.fetch_add(1, Ordering::Relaxed);
            // δ = ½ log₂(m/σ); empty cells push strongly coarser.
            let delta_f = 0.5 * (m.max(0.25) / sigma).log2();
            let delta = delta_f.round() as i64;
            if delta == 0 {
                break;
            }
            if delta > 0 {
                min_ln = ln;
            } else {
                max_ln = ln;
            }
            let ln_next = (ln + delta).clamp(0, leaf as i64);
            if ln_next <= min_ln || ln_next >= max_ln || ln_next == ln {
                break;
            }
            ln = ln_next;
        }
        Ok(clamp(ln))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ObjectId;
    use crate::update::{apply_update, UpdateMessage};
    use moist_bigtable::{Bigtable, CostProfile, Session};
    use moist_spatial::Velocity;
    use std::sync::Arc;

    fn setup(sigma: usize) -> (Arc<Bigtable>, MoistTables, Session, MoistConfig) {
        let store = Bigtable::new();
        let cfg = MoistConfig {
            sigma,
            ..MoistConfig::default()
        };
        let tables = MoistTables::create(&store, &cfg).unwrap();
        let session = store.session_with(CostProfile::free());
        (store, tables, session, cfg)
    }

    /// Deterministically scatters `n` leaders over the given world rect.
    #[allow(clippy::too_many_arguments)]
    fn scatter(
        s: &mut Session,
        t: &MoistTables,
        cfg: &MoistConfig,
        n: u64,
        x0: f64,
        y0: f64,
        w: f64,
        h: f64,
    ) {
        let mut state = 0xA5A5_5A5A_1234_5678u64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        for i in 0..n {
            apply_update(
                s,
                t,
                cfg,
                &UpdateMessage {
                    oid: ObjectId(i),
                    loc: Point::new(x0 + next() * w, y0 + next() * h),
                    vel: Velocity::ZERO,
                    ts: Timestamp::from_secs(1),
                },
            )
            .unwrap();
        }
    }

    #[test]
    fn converged_level_holds_about_sigma_objects() {
        let (_st, t, mut s, cfg) = setup(32);
        scatter(&mut s, &t, &cfg, 2000, 0.0, 0.0, 1000.0, 1000.0);
        let tuner = FlagTuner::new(&cfg);
        let loc = Point::new(500.0, 500.0);
        let level = tuner
            .calculate_best_level(&mut s, &t, &cfg, &loc, 2000)
            .unwrap();
        let cell = cfg.space.cell_at(level, &loc);
        let m = t
            .spatial_count_cell(&mut s, cell, cfg.space.leaf_level)
            .unwrap();
        // Converged when δ rounds to 0: m/σ within [2^-1, 2^1].
        assert!(
            (16..=64).contains(&m),
            "level {level} holds {m} objects, want ≈32"
        );
    }

    #[test]
    fn denser_regions_get_finer_levels() {
        let (_st, t, mut s, cfg) = setup(16);
        // Dense cluster bottom-left, sparse everywhere else.
        scatter(&mut s, &t, &cfg, 3000, 0.0, 0.0, 120.0, 120.0);
        scatter(&mut s, &t, &cfg, 50, 500.0, 500.0, 500.0, 500.0);
        let tuner = FlagTuner::new(&cfg);
        let dense = tuner
            .calculate_best_level(&mut s, &t, &cfg, &Point::new(60.0, 60.0), 3050)
            .unwrap();
        let sparse = tuner
            .calculate_best_level(&mut s, &t, &cfg, &Point::new(750.0, 750.0), 3050)
            .unwrap();
        assert!(
            dense > sparse,
            "dense {dense} must be finer than sparse {sparse}"
        );
    }

    #[test]
    fn cache_hits_within_ttl_and_expires_after() {
        let (_st, t, mut s, cfg) = setup(16);
        scatter(&mut s, &t, &cfg, 500, 0.0, 0.0, 1000.0, 1000.0);
        let mut tuner = FlagTuner::new(&cfg); // ttl = 300 s
        let loc = Point::new(400.0, 400.0);
        let l1 = tuner
            .best_level(&mut s, &t, &cfg, &loc, 500, Timestamp::from_secs(0))
            .unwrap();
        assert_eq!(tuner.stats().cache_misses, 1);
        // Nearby query inside the cached cell: hit.
        let l2 = tuner
            .best_level(
                &mut s,
                &t,
                &cfg,
                &Point::new(401.0, 401.0),
                500,
                Timestamp::from_secs(10),
            )
            .unwrap();
        assert_eq!(l1, l2);
        assert_eq!(tuner.stats().cache_hits, 1);
        // After the TTL the entry is recomputed.
        let _ = tuner
            .best_level(&mut s, &t, &cfg, &loc, 500, Timestamp::from_secs(10_000))
            .unwrap();
        assert_eq!(tuner.stats().cache_misses, 2);
    }

    #[test]
    fn empty_map_converges_to_a_coarse_level() {
        let (_st, t, mut s, cfg) = setup(32);
        let tuner = FlagTuner::new(&cfg);
        let level = tuner
            .calculate_best_level(&mut s, &t, &cfg, &Point::new(500.0, 500.0), 0)
            .unwrap();
        assert!(level <= 2, "empty space should coarsen, got {level}");
    }

    #[test]
    fn invalidate_clears_cache() {
        let (_st, t, mut s, cfg) = setup(32);
        scatter(&mut s, &t, &cfg, 100, 0.0, 0.0, 1000.0, 1000.0);
        let mut tuner = FlagTuner::new(&cfg);
        tuner
            .best_level(
                &mut s,
                &t,
                &cfg,
                &Point::new(1.0, 1.0),
                100,
                Timestamp::ZERO,
            )
            .unwrap();
        assert_eq!(tuner.cache_len(), 1);
        tuner.invalidate();
        assert_eq!(tuner.cache_len(), 0);
    }
}
