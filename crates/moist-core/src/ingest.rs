//! Per-shard bounded ingestion queues: the buffering half of the
//! pipelined update path (the batched apply half lives in
//! [`crate::update::apply_update_batch`]).
//!
//! The shape follows the log-shipper sink architecture: clients
//! [`submit`] instead of calling the tier synchronously, submissions
//! buffer in a bounded queue per shard (routed by the same membership
//! snapshot the synchronous path uses), and a queue flushes as one
//! batched apply when it reaches [`IngestConfig::batch_size`] *or* when
//! its oldest message exceeds [`IngestConfig::flush_deadline_secs`] —
//! whichever comes first.
//!
//! The bound is on **outstanding** messages — buffered plus taken into a
//! batch that has not finished applying — so `queue_cap / batch_size` is
//! the per-shard in-flight batch limit: when concurrent submitters
//! outrun a shard's apply rate, batches pile up waiting on its lock and
//! the cap trips. A full queue is **explicit backpressure**: the
//! submission is refused with a typed
//! [`MoistError::Backpressure`](crate::MoistError::Backpressure) (policy
//! [`BackpressurePolicy::Reject`]) or dropped like a school shed (policy
//! [`BackpressurePolicy::Shed`]); it is never silently queued unbounded.
//!
//! Everything here runs on *virtual* time — deadlines compare message
//! report timestamps, flushes are driven by the callers' ticks
//! ([`MoistCluster::flush_due`]), and there are no background threads —
//! so the pipeline inherits the cost model's determinism.
//!
//! [`submit`]: crate::MoistCluster::submit
//! [`MoistCluster::flush_due`]: crate::MoistCluster::flush_due

use crate::update::UpdateMessage;
use moist_bigtable::Timestamp;
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Knobs of the per-shard ingestion pipeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IngestConfig {
    /// Flush a shard's queue as soon as it holds this many messages.
    pub batch_size: usize,
    /// Hard bound on a shard's **outstanding** messages (buffered plus in
    /// batches still applying). Submissions that would exceed it hit the
    /// [`BackpressurePolicy`]; `queue_cap / batch_size` is the effective
    /// in-flight batch limit per shard.
    pub queue_cap: usize,
    /// Flush a queue whose **oldest** buffered message is older than this
    /// many (virtual) seconds at the next
    /// [`flush_due`](crate::MoistCluster::flush_due) tick, so a trickle
    /// of updates is never stranded waiting for a full batch. `0.0` (or
    /// any non-positive value) means "no batching delay": every
    /// non-empty queue flushes on every tick, regardless of how its
    /// message timestamps compare to the tick's `now`.
    pub flush_deadline_secs: f64,
    /// What a full queue does to the submission.
    pub policy: BackpressurePolicy,
}

impl Default for IngestConfig {
    fn default() -> Self {
        IngestConfig {
            batch_size: 64,
            queue_cap: 1024,
            flush_deadline_secs: 1.0,
            policy: BackpressurePolicy::Reject,
        }
    }
}

impl IngestConfig {
    /// Sanity-clamps degenerate values (zero sizes) to workable minima.
    pub(crate) fn normalized(mut self) -> Self {
        self.batch_size = self.batch_size.max(1);
        self.queue_cap = self.queue_cap.max(self.batch_size);
        self
    }
}

/// Per-client choice of what a full ingest queue does with a submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackpressurePolicy {
    /// Refuse the submission with
    /// [`MoistError::Backpressure`](crate::MoistError::Backpressure):
    /// nothing is accepted, the client owns the retry. The default —
    /// lossless, so acknowledged-update accounting stays exact.
    #[default]
    Reject,
    /// Drop the submission like an overload shed: the call succeeds with
    /// [`SubmitOutcome::ShedOverload`] and the update never reaches the
    /// store. Counted separately from school sheds (see
    /// [`IngestStats::overload_shed`]) so client-visible QPS derivations
    /// stay honest.
    Shed,
}

/// What [`submit`](crate::MoistCluster::submit) did with a message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitOutcome {
    /// Buffered; `depth` is the shard's outstanding count afterwards.
    Enqueued {
        /// Stable id of the shard the message routed to.
        shard: u64,
        /// Outstanding messages (buffered + applying) after the enqueue.
        depth: usize,
    },
    /// The enqueue filled the batch and this call flushed it inline:
    /// `batch` messages (this one included) were applied.
    Flushed {
        /// Stable id of the shard the message routed to.
        shard: u64,
        /// Number of messages in the flushed batch.
        batch: usize,
    },
    /// Dropped by [`BackpressurePolicy::Shed`] on a full queue.
    ShedOverload {
        /// Stable id of the shard whose queue was full.
        shard: u64,
    },
}

/// Point-in-time ingestion pipeline counters, embedded in
/// [`ClusterStats`](crate::ClusterStats).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct IngestStats {
    /// Messages offered to [`submit`](crate::MoistCluster::submit).
    pub submitted: u64,
    /// Messages accepted into a queue (includes ones later flushed).
    pub enqueued: u64,
    /// Submissions refused with a typed `Backpressure` error.
    pub backpressure: u64,
    /// Submissions dropped by the `Shed` overload policy — **distinct**
    /// from school sheds ([`ServerStats`](crate::ServerStats)`::shed`),
    /// which are applied updates the school model absorbed.
    pub overload_shed: u64,
    /// Batches flushed (size + deadline + drain).
    pub batches: u64,
    /// Messages applied through flushed batches.
    pub flushed_updates: u64,
    /// Batches flushed because the queue hit `batch_size`.
    pub size_flushes: u64,
    /// Batches flushed because the oldest message aged past the deadline.
    pub deadline_flushes: u64,
    /// Batches flushed by an explicit drain (membership changes, client
    /// end-of-stream).
    pub drain_flushes: u64,
    /// Largest single flushed batch.
    pub max_batch: u64,
    /// Total virtual µs flushed messages spent buffered (flush time −
    /// report time, summed; divide by `flushed_updates` for the mean).
    pub queue_wait_us: u64,
    /// Messages currently outstanding (buffered or in an applying batch)
    /// across all queues (gauge).
    pub queued: u64,
}

impl IngestStats {
    /// Mean flushed-batch size (0 when nothing flushed).
    pub fn avg_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.flushed_updates as f64 / self.batches as f64
        }
    }

    /// Mean virtual µs a flushed message waited in its queue.
    pub fn avg_queue_wait_us(&self) -> f64 {
        if self.flushed_updates == 0 {
            0.0
        } else {
            self.queue_wait_us as f64 / self.flushed_updates as f64
        }
    }
}

/// Why a batch left its queue (flush-trigger accounting).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FlushKind {
    Size,
    Deadline,
    Drain,
}

/// What one enqueue attempt did (the cluster translates this into a
/// [`SubmitOutcome`] / typed error per the configured policy).
#[derive(Debug)]
pub(crate) enum EnqueueResult {
    /// Buffered below the batch threshold; `depth` is the outstanding
    /// count after the enqueue.
    Queued { depth: usize },
    /// The enqueue completed a batch: apply it, then call
    /// [`IngestQueues::note_flush`] with [`FlushKind::Size`] (which
    /// releases the batch's outstanding slots).
    Batch(Vec<UpdateMessage>),
    /// Queue full — nothing was buffered; `depth` is the outstanding
    /// count that tripped the cap.
    Full { depth: usize },
}

/// One shard's queue: the buffered messages plus the outstanding count
/// the cap is enforced against. `outstanding` ≥ `buf.len()` — the excess
/// is messages taken into batches that have not finished applying.
#[derive(Default)]
struct ShardQueue {
    buf: Mutex<Vec<UpdateMessage>>,
    outstanding: AtomicUsize,
}

/// The per-shard bounded queues plus their counters. Queues are keyed by
/// *stable shard id*; the key is advisory (flushes re-route every message
/// by the then-current membership), so keys going stale across epochs is
/// harmless.
#[derive(Default)]
pub(crate) struct IngestQueues {
    queues: RwLock<HashMap<u64, Arc<ShardQueue>>>,
    submitted: AtomicU64,
    enqueued: AtomicU64,
    backpressure: AtomicU64,
    overload_shed: AtomicU64,
    batches: AtomicU64,
    flushed_updates: AtomicU64,
    size_flushes: AtomicU64,
    deadline_flushes: AtomicU64,
    drain_flushes: AtomicU64,
    max_batch: AtomicU64,
    queue_wait_us: AtomicU64,
}

impl IngestQueues {
    fn queue(&self, shard: u64) -> Arc<ShardQueue> {
        if let Some(q) = self.queues.read().get(&shard) {
            return Arc::clone(q);
        }
        Arc::clone(self.queues.write().entry(shard).or_default())
    }

    /// Buffers `msg` in `shard`'s queue, enforcing the cap and the batch
    /// threshold. Counter updates for the outcome happen here; flush
    /// counters (and the release of a batch's outstanding slots) are
    /// deferred to [`note_flush`](Self::note_flush), so an in-flight
    /// batch still counts against the cap while it applies.
    pub(crate) fn enqueue(
        &self,
        cfg: &IngestConfig,
        shard: u64,
        msg: &UpdateMessage,
    ) -> EnqueueResult {
        self.submitted.fetch_add(1, Ordering::Relaxed);
        let queue = self.queue(shard);
        let mut buf = queue.buf.lock();
        let depth = queue.outstanding.load(Ordering::Relaxed);
        if depth >= cfg.queue_cap {
            drop(buf);
            match cfg.policy {
                BackpressurePolicy::Reject => {
                    self.backpressure.fetch_add(1, Ordering::Relaxed);
                }
                BackpressurePolicy::Shed => {
                    self.overload_shed.fetch_add(1, Ordering::Relaxed);
                }
            }
            return EnqueueResult::Full { depth };
        }
        queue.outstanding.fetch_add(1, Ordering::Relaxed);
        buf.push(*msg);
        if buf.len() >= cfg.batch_size {
            EnqueueResult::Batch(std::mem::take(&mut *buf))
        } else {
            EnqueueResult::Queued { depth: depth + 1 }
        }
    }

    /// Takes every queue whose oldest buffered message is older than the
    /// flush deadline at `now`. Returns `(shard, batch)` pairs; the
    /// caller applies each and calls [`note_flush`](Self::note_flush).
    pub(crate) fn take_due(
        &self,
        cfg: &IngestConfig,
        now: Timestamp,
    ) -> Vec<(u64, Vec<UpdateMessage>)> {
        let deadline_us = (cfg.flush_deadline_secs.max(0.0) * 1e6) as u64;
        let queues: Vec<(u64, Arc<ShardQueue>)> = self
            .queues
            .read()
            .iter()
            .map(|(&shard, q)| (shard, Arc::clone(q)))
            .collect();
        let mut out = Vec::new();
        for (shard, queue) in queues {
            let mut buf = queue.buf.lock();
            // A zero deadline means "no batching delay": any non-empty
            // queue is due, even one whose messages are timestamped ahead
            // of `now` (the age test below would strand those forever).
            let due = if deadline_us == 0 {
                !buf.is_empty()
            } else {
                buf.iter()
                    .map(|m| m.ts.0)
                    .min()
                    .is_some_and(|oldest| oldest.saturating_add(deadline_us) <= now.0)
            };
            if due {
                out.push((shard, std::mem::take(&mut *buf)));
            }
        }
        out
    }

    /// Takes everything buffered, empty queues skipped (drains).
    pub(crate) fn take_all(&self) -> Vec<(u64, Vec<UpdateMessage>)> {
        let queues: Vec<(u64, Arc<ShardQueue>)> = self
            .queues
            .read()
            .iter()
            .map(|(&shard, q)| (shard, Arc::clone(q)))
            .collect();
        queues
            .into_iter()
            .filter_map(|(shard, queue)| {
                let mut buf = queue.buf.lock();
                if buf.is_empty() {
                    None
                } else {
                    Some((shard, std::mem::take(&mut *buf)))
                }
            })
            .collect()
    }

    /// Records one applied flush and releases the batch's outstanding
    /// slots on `shard`: trigger kind, batch size, and the virtual queue
    /// wait of every message in it (flush time − report time). `flush_ts`
    /// is the batch's newest message timestamp for size/drain flushes and
    /// the driving tick's `now` for deadline flushes. Must be called
    /// exactly once per taken batch — a batch whose apply errored keeps
    /// its slots, deliberately: a store error is fatal to the tier, and
    /// wedging the queue beats silently un-counting lost messages.
    pub(crate) fn note_flush(
        &self,
        kind: FlushKind,
        shard: u64,
        batch: &[UpdateMessage],
        flush_ts: Timestamp,
    ) {
        self.queue(shard)
            .outstanding
            .fetch_sub(batch.len(), Ordering::Relaxed);
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.flushed_updates
            .fetch_add(batch.len() as u64, Ordering::Relaxed);
        self.enqueued
            .fetch_add(batch.len() as u64, Ordering::Relaxed);
        match kind {
            FlushKind::Size => self.size_flushes.fetch_add(1, Ordering::Relaxed),
            FlushKind::Deadline => self.deadline_flushes.fetch_add(1, Ordering::Relaxed),
            FlushKind::Drain => self.drain_flushes.fetch_add(1, Ordering::Relaxed),
        };
        self.max_batch
            .fetch_max(batch.len() as u64, Ordering::Relaxed);
        let wait: u64 = batch
            .iter()
            .map(|m| flush_ts.0.saturating_sub(m.ts.0))
            .sum();
        self.queue_wait_us.fetch_add(wait, Ordering::Relaxed);
    }

    /// Current outstanding count of `shard`'s queue (0 when it has none).
    pub(crate) fn depth(&self, shard: u64) -> usize {
        self.queues
            .read()
            .get(&shard)
            .map_or(0, |q| q.outstanding.load(Ordering::Relaxed))
    }

    /// Counter snapshot, including the live outstanding gauge.
    pub(crate) fn stats(&self) -> IngestStats {
        let queued: u64 = self
            .queues
            .read()
            .values()
            .map(|q| q.outstanding.load(Ordering::Relaxed) as u64)
            .sum();
        IngestStats {
            submitted: self.submitted.load(Ordering::Relaxed),
            enqueued: self.enqueued.load(Ordering::Relaxed) + queued,
            backpressure: self.backpressure.load(Ordering::Relaxed),
            overload_shed: self.overload_shed.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            flushed_updates: self.flushed_updates.load(Ordering::Relaxed),
            size_flushes: self.size_flushes.load(Ordering::Relaxed),
            deadline_flushes: self.deadline_flushes.load(Ordering::Relaxed),
            drain_flushes: self.drain_flushes.load(Ordering::Relaxed),
            max_batch: self.max_batch.load(Ordering::Relaxed),
            queue_wait_us: self.queue_wait_us.load(Ordering::Relaxed),
            queued,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ObjectId;
    use moist_spatial::{Point, Velocity};

    fn msg(oid: u64, secs: u64) -> UpdateMessage {
        UpdateMessage {
            oid: ObjectId(oid),
            loc: Point::new(100.0, 100.0),
            vel: Velocity::ZERO,
            ts: Timestamp::from_secs(secs),
        }
    }

    #[test]
    fn enqueue_batches_on_size_and_caps_on_outstanding() {
        let q = IngestQueues::default();
        let cfg = IngestConfig {
            batch_size: 3,
            queue_cap: 4,
            ..IngestConfig::default()
        }
        .normalized();
        assert!(matches!(
            q.enqueue(&cfg, 0, &msg(1, 0)),
            EnqueueResult::Queued { depth: 1 }
        ));
        assert!(matches!(
            q.enqueue(&cfg, 0, &msg(2, 1)),
            EnqueueResult::Queued { depth: 2 }
        ));
        let batch = match q.enqueue(&cfg, 0, &msg(3, 2)) {
            EnqueueResult::Batch(b) => b,
            _ => panic!("hitting batch_size must hand the batch out"),
        };
        assert_eq!(batch.len(), 3);
        // The taken batch is still applying: its 3 slots count against
        // the cap. One more enqueue fits (4/4)...
        assert!(matches!(
            q.enqueue(&cfg, 0, &msg(4, 3)),
            EnqueueResult::Queued { depth: 4 }
        ));
        // ...and the next trips backpressure.
        assert!(matches!(
            q.enqueue(&cfg, 0, &msg(5, 3)),
            EnqueueResult::Full { depth: 4 }
        ));
        assert_eq!(q.depth(0), 4);
        // Applying the batch releases its slots; submissions flow again.
        q.note_flush(FlushKind::Size, 0, &batch, batch.last().unwrap().ts);
        assert_eq!(q.depth(0), 1);
        assert!(matches!(
            q.enqueue(&cfg, 0, &msg(5, 4)),
            EnqueueResult::Queued { depth: 2 }
        ));
        let s = q.stats();
        assert_eq!(s.submitted, 6);
        assert_eq!(s.backpressure, 1);
        assert_eq!(s.overload_shed, 0);
        assert_eq!(s.enqueued, 5, "3 flushed + 2 still buffered");
        assert_eq!(s.size_flushes, 1);
        assert_eq!(s.flushed_updates, 3);
        assert_eq!(s.max_batch, 3);
        assert_eq!(s.avg_batch(), 3.0);
        assert_eq!(s.queued, 2);
        assert_eq!(q.depth(7), 0, "unknown shard has an empty queue");
    }

    #[test]
    fn shed_policy_counts_separately_from_backpressure() {
        let q = IngestQueues::default();
        let cfg = IngestConfig {
            batch_size: 2,
            queue_cap: 2,
            policy: BackpressurePolicy::Shed,
            ..IngestConfig::default()
        }
        .normalized();
        assert!(matches!(
            q.enqueue(&cfg, 3, &msg(1, 0)),
            EnqueueResult::Queued { .. }
        ));
        let batch = match q.enqueue(&cfg, 3, &msg(2, 0)) {
            EnqueueResult::Batch(b) => b,
            _ => panic!("second enqueue fills the batch"),
        };
        // Batch still applying → cap (2) is exhausted → overload shed.
        assert!(matches!(
            q.enqueue(&cfg, 3, &msg(3, 0)),
            EnqueueResult::Full { depth: 2 }
        ));
        q.note_flush(FlushKind::Size, 3, &batch, batch[1].ts);
        let s = q.stats();
        assert_eq!((s.overload_shed, s.backpressure), (1, 0));
    }

    #[test]
    fn deadline_takes_only_aged_queues_and_drain_takes_all() {
        let q = IngestQueues::default();
        let cfg = IngestConfig {
            batch_size: 100,
            flush_deadline_secs: 5.0,
            ..IngestConfig::default()
        }
        .normalized();
        q.enqueue(&cfg, 0, &msg(1, 0)); // oldest at t=0
        q.enqueue(&cfg, 0, &msg(2, 9));
        q.enqueue(&cfg, 1, &msg(3, 9)); // young queue
        let due = q.take_due(&cfg, Timestamp::from_secs(6));
        assert_eq!(due.len(), 1, "only the aged queue flushes");
        let (shard, batch) = &due[0];
        assert_eq!((*shard, batch.len()), (0, 2));
        q.note_flush(FlushKind::Deadline, *shard, batch, Timestamp::from_secs(6));
        // Queue-wait accounting: (6-0)s + (6-9 → saturates to 0)s.
        assert_eq!(q.stats().queue_wait_us, 6_000_000);
        assert_eq!(q.stats().deadline_flushes, 1);
        assert_eq!(q.depth(0), 0);
        let rest = q.take_all();
        assert_eq!(rest.len(), 1);
        assert_eq!((rest[0].0, rest[0].1.len()), (1, 1));
        q.note_flush(FlushKind::Drain, 1, &rest[0].1, rest[0].1[0].ts);
        let s = q.stats();
        assert_eq!(s.queued, 0);
        assert_eq!(s.drain_flushes, 1);
        assert_eq!(s.enqueued, 3);
    }

    #[test]
    fn zero_deadline_flushes_every_nonempty_queue_each_tick() {
        let q = IngestQueues::default();
        let cfg = IngestConfig {
            batch_size: 100,
            flush_deadline_secs: 0.0,
            ..IngestConfig::default()
        }
        .normalized();
        // One message timestamped *ahead* of the tick's `now`: the age
        // test alone would never flush it, but a zero deadline means "no
        // batching delay" — it flushes anyway.
        q.enqueue(&cfg, 0, &msg(1, 9));
        q.enqueue(&cfg, 1, &msg(2, 0));
        let due = q.take_due(&cfg, Timestamp::from_secs(1));
        assert_eq!(due.len(), 2, "every non-empty queue is due");
        for (shard, batch) in &due {
            q.note_flush(FlushKind::Deadline, *shard, batch, Timestamp::from_secs(1));
        }
        assert_eq!(q.stats().queued, 0);
        // Empty queues stay untaken.
        assert!(q.take_due(&cfg, Timestamp::from_secs(2)).is_empty());
        // The default (positive) deadline still honours message age.
        let aged = IngestConfig::default().normalized();
        q.enqueue(&aged, 2, &msg(3, 9));
        assert!(
            q.take_due(&aged, Timestamp::from_secs(1)).is_empty(),
            "young queue must wait out a positive deadline"
        );
    }

    #[test]
    fn normalized_clamps_degenerate_sizes() {
        let cfg = IngestConfig {
            batch_size: 0,
            queue_cap: 0,
            ..IngestConfig::default()
        }
        .normalized();
        assert_eq!(cfg.batch_size, 1);
        assert_eq!(cfg.queue_cap, 1);
    }
}
