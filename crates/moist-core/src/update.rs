//! The MOIST update procedure (Algorithm 1, §3.3.1).
//!
//! An update message is the 4-tuple `(ID, Loc, V, t)`. The procedure has
//! three branches: leader update, shed follower update, and follower
//! departure. A fourth branch — first sight of an object — registers it as
//! the leader of a fresh single-member school (the paper leaves
//! registration implicit).

use crate::codec::{LfRecord, LocationRecord};
use crate::config::MoistConfig;
use crate::error::{MoistError, Result};
use crate::ids::ObjectId;
use crate::school::within_school;
use crate::tables::{MoistTables, WriteBatch};
use moist_bigtable::{Session, Timestamp};
use moist_spatial::{Point, Velocity};
use std::collections::{HashMap, HashSet};

/// One location update from a mobile client.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UpdateMessage {
    /// The reporting object.
    pub oid: ObjectId,
    /// Reported world-coordinate location.
    pub loc: Point,
    /// Reported velocity.
    pub vel: Velocity,
    /// Report time.
    pub ts: Timestamp,
}

/// What the update procedure did with a message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateOutcome {
    /// First sight: the object became the leader of a new school.
    Registered,
    /// Leader branch: Location (and, unless a racing clustering merge
    /// absorbed the object mid-move, Spatial Index) tables updated.
    LeaderUpdated,
    /// Follower within ε of its estimate: the update was shed — zero
    /// writes reached the store.
    Shed,
    /// Follower left its school and became a leader of a new school.
    Departed {
        /// The school it left.
        old_leader: ObjectId,
    },
}

/// Applies Algorithm 1 for one message. Returns what happened, so callers
/// can track shed ratios.
pub fn apply_update(
    s: &mut Session,
    tables: &MoistTables,
    cfg: &MoistConfig,
    msg: &UpdateMessage,
) -> Result<UpdateOutcome> {
    if !msg.loc.is_finite() || !msg.vel.is_finite() {
        return Err(MoistError::Inconsistent(format!(
            "non-finite update for {}",
            msg.oid
        )));
    }
    let new_leaf = cfg.space.leaf_cell(&msg.loc).index;
    let record = LocationRecord {
        loc: msg.loc,
        vel: msg.vel,
        leaf_index: new_leaf,
    };

    // Line 1: is the object a leader or a follower? The follower branch
    // re-runs from the top when a racing clustering merge re-affiliates
    // the object between our affiliation read and our guarded promotion —
    // the re-read sees the new school and the departure decision is made
    // against it.
    loop {
        return match tables.lf(s, msg.oid)? {
            None => {
                // First sight: become a leader of a new (singleton) school.
                tables.set_lf(
                    s,
                    msg.oid,
                    &LfRecord::Leader {
                        since_us: msg.ts.0,
                        last_leaf: new_leaf,
                    },
                    msg.ts,
                )?;
                tables.put_location(s, msg.oid, &record, msg.ts)?;
                tables.spatial_insert(s, new_leaf, msg.oid, &record, msg.ts)?;
                Ok(UpdateOutcome::Registered)
            }
            Some(LfRecord::Leader {
                since_us,
                last_leaf,
            }) => {
                // Lines 2–3: leader path.
                tables.put_location(s, msg.oid, &record, msg.ts)?;
                if last_leaf == new_leaf {
                    // Same leaf — same routing key — so this update serializes
                    // with the cell's clustering on the owner's lock; a plain
                    // overwrite cannot race a merge.
                    tables.spatial_move(s, last_leaf, new_leaf, msg.oid, &record, msg.ts)?;
                } else {
                    // A cross-cell move is applied by the *destination* cell's
                    // owner and can race the old cell's clustering merge on
                    // another shard. The old spatial row is the
                    // mutual-exclusion point: delete it only while it still
                    // holds its scanned value (the same check-and-mutate the
                    // merge commits through), so exactly one side wins.
                    // Losing means the merge just absorbed this object: skip
                    // the superseded spatial rewrite — the Location Table
                    // already carries the report, and the next update takes
                    // the follower branch against the merged school (and
                    // departs from it if the move really escaped).
                    if !tables
                        .spatial_move_guarded(s, last_leaf, new_leaf, msg.oid, &record, msg.ts)?
                    {
                        return Ok(UpdateOutcome::LeaderUpdated);
                    }
                    tables.set_lf(
                        s,
                        msg.oid,
                        &LfRecord::Leader {
                            since_us,
                            last_leaf: new_leaf,
                        },
                        msg.ts,
                    )?;
                }
                Ok(UpdateOutcome::LeaderUpdated)
            }
            Some(
                observed @ LfRecord::Follower {
                    leader,
                    displacement,
                    ..
                },
            ) => {
                // Lines 5–6: estimate the follower's location from its leader.
                let (leader_ts, leader_rec) = match tables.latest_location(s, leader)? {
                    Some(x) => x,
                    None => {
                        // The leader's hot Location row is gone (aged out to
                        // the disk family after a long quiet spell): self-heal
                        // by promotion rather than estimating from stale data.
                        match promote_to_leader(s, tables, msg, &record, new_leaf, &observed, None)?
                        {
                            Some(out) => return Ok(out),
                            None => continue,
                        }
                    }
                };
                // Lines 7–8: within ε → shed, zero store writes.
                if within_school(
                    &leader_rec,
                    leader_ts,
                    displacement,
                    &msg.loc,
                    msg.ts,
                    cfg.epsilon,
                ) {
                    return Ok(UpdateOutcome::Shed);
                }
                // Lines 10–13: departure — become a leader of a new school.
                match promote_to_leader(s, tables, msg, &record, new_leaf, &observed, Some(leader))?
                {
                    Some(out) => Ok(out),
                    None => continue,
                }
            }
        };
    }
}

/// Applies Algorithm 1 to a whole batch of messages, amortizing store
/// round-trips across the batch. Semantically equivalent to running
/// [`apply_update`] message by message in order; the store ends in the
/// same state and the returned outcomes align with `msgs`.
///
/// The amortization has two halves:
///
/// * **prefetch** — one batched affiliation read classifies every
///   distinct OID, one batched Location read serves every follower's
///   shed test, and one batched spatial read arms the cross-cell move
///   guards. Each replaces a per-message point read (rpc base charged
///   per row) with a scan-rate batch row.
/// * **deferral** — plain row writes (registrations, Location appends,
///   same-leaf spatial refreshes) accumulate in a [`WriteBatch`] and
///   land as one multi-row RPC per table at the end.
///
/// Correctness rests on a *dirty set*: once the batch writes (or
/// defers a write for) an OID, every later message touching that OID —
/// or a follower whose leader is that OID — flushes the deferred
/// writes and falls back to the synchronous [`apply_update`], so no
/// decision is ever made against a prefetched value the batch itself
/// has superseded. Guarded commits (cross-cell spatial moves, follower
/// promotions) stay synchronous: they are the mutual-exclusion points
/// against clustering merges on other shards and cannot be reordered.
///
/// Every message is validated up front, so a malformed message fails
/// the whole batch *before* any store write — callers can reject the
/// batch without partial application.
pub fn apply_update_batch(
    s: &mut Session,
    tables: &MoistTables,
    cfg: &MoistConfig,
    msgs: &[UpdateMessage],
) -> Result<Vec<UpdateOutcome>> {
    for msg in msgs {
        if !msg.loc.is_finite() || !msg.vel.is_finite() {
            return Err(MoistError::Inconsistent(format!(
                "non-finite update for {}",
                msg.oid
            )));
        }
    }
    if msgs.len() <= 1 {
        // Nothing to amortize: the prefetches would cost more than the
        // point reads they replace.
        return msgs
            .iter()
            .map(|m| apply_update(s, tables, cfg, m))
            .collect();
    }

    // Phase 1: classify every distinct OID with one batched affiliation
    // read (head timestamps included, for local supersede-clamping of
    // deferred L/F writes).
    let mut uniq: Vec<ObjectId> = Vec::new();
    let mut seen: HashSet<u64> = HashSet::new();
    for msg in msgs {
        if seen.insert(msg.oid.0) {
            uniq.push(msg.oid);
        }
    }
    let lf_heads = tables.batch_lf_versions(s, &uniq)?;
    let lf_of: HashMap<u64, Option<(Timestamp, LfRecord)>> = uniq
        .iter()
        .zip(lf_heads)
        .map(|(oid, head)| (oid.0, head))
        .collect();

    // Phase 2: prefetch what the classified messages will read — the
    // leaders' latest locations (every follower's shed test) and the
    // old spatial rows of cross-cell-moving leaders (the guard's
    // expected values). First occurrence per OID decides; later
    // occurrences hit the dirty-set fallback anyway.
    let mut leader_oids: Vec<ObjectId> = Vec::new();
    let mut leader_seen: HashSet<u64> = HashSet::new();
    let mut move_keys: Vec<(u64, ObjectId)> = Vec::new();
    let mut move_seen: HashSet<u64> = HashSet::new();
    for msg in msgs {
        match lf_of.get(&msg.oid.0) {
            Some(Some((_, LfRecord::Follower { leader, .. }))) if leader_seen.insert(leader.0) => {
                leader_oids.push(*leader);
            }
            Some(Some((_, LfRecord::Leader { last_leaf, .. }))) => {
                let new_leaf = cfg.space.leaf_cell(&msg.loc).index;
                if new_leaf != *last_leaf && move_seen.insert(msg.oid.0) {
                    move_keys.push((*last_leaf, msg.oid));
                }
            }
            _ => {}
        }
    }
    let leader_locs: HashMap<u64, Option<(Timestamp, LocationRecord)>> = if leader_oids.is_empty() {
        HashMap::new()
    } else {
        leader_oids
            .iter()
            .zip(tables.batch_latest_locations(s, &leader_oids)?)
            .map(|(oid, loc)| (oid.0, loc))
            .collect()
    };
    let move_vals: HashMap<u64, Option<Vec<u8>>> = if move_keys.is_empty() {
        HashMap::new()
    } else {
        move_keys
            .iter()
            .zip(tables.batch_spatial_values(s, &move_keys)?)
            .map(|(&(_, oid), val)| (oid.0, val))
            .collect()
    };

    // Phase 3: apply in message order. Deferrable writes go to `wb`;
    // anything touching an already-written OID flushes and falls back
    // to the synchronous path.
    let mut wb = WriteBatch::new();
    let mut dirty: HashSet<u64> = HashSet::new();
    let mut out = Vec::with_capacity(msgs.len());
    for msg in msgs {
        let new_leaf = cfg.space.leaf_cell(&msg.loc).index;
        let record = LocationRecord {
            loc: msg.loc,
            vel: msg.vel,
            leaf_index: new_leaf,
        };
        // The prefetched snapshot is valid only while this batch has not
        // written the rows it describes.
        let fallback = dirty.contains(&msg.oid.0)
            || match lf_of.get(&msg.oid.0) {
                Some(Some((_, LfRecord::Follower { leader, .. }))) => {
                    dirty.contains(&leader.0)
                        || !matches!(leader_locs.get(&leader.0), Some(Some(_)))
                }
                _ => false,
            };
        if fallback {
            if !wb.is_empty() {
                tables.flush_write_batch(s, &mut wb)?;
            }
            let outcome = apply_update(s, tables, cfg, msg)?;
            dirty.insert(msg.oid.0);
            out.push(outcome);
            continue;
        }
        let outcome = match lf_of.get(&msg.oid.0).and_then(|h| h.as_ref()) {
            None => {
                // First sight: no head version exists, so the deferred
                // L/F write lands at the raw report time unclamped.
                wb.set_lf_at(
                    msg.oid,
                    &LfRecord::Leader {
                        since_us: msg.ts.0,
                        last_leaf: new_leaf,
                    },
                    msg.ts,
                );
                wb.put_location(msg.oid, &record, msg.ts);
                wb.spatial_insert(new_leaf, msg.oid, &record, msg.ts);
                dirty.insert(msg.oid.0);
                UpdateOutcome::Registered
            }
            Some((
                head_ts,
                LfRecord::Leader {
                    since_us,
                    last_leaf,
                },
            )) => {
                wb.put_location(msg.oid, &record, msg.ts);
                if *last_leaf == new_leaf {
                    // Same routing key as the cell's clustering — the
                    // shard lock this batch holds serializes them, so
                    // the plain refresh can be deferred.
                    wb.spatial_insert(new_leaf, msg.oid, &record, msg.ts);
                } else {
                    // Cross-cell move: commit the guarded delete now
                    // (it is the mutual-exclusion point against the old
                    // cell's merge on another shard), with the expected
                    // value amortized into the phase-2 prefetch. Losing
                    // means a merge absorbed the object: skip the
                    // superseded rewrite, exactly like the sync path.
                    let won = match move_vals.get(&msg.oid.0).and_then(|v| v.as_deref()) {
                        None => false,
                        Some(expected) => tables
                            .spatial_check_and_delete_value(s, *last_leaf, msg.oid, expected)?,
                    };
                    if won {
                        wb.spatial_insert(new_leaf, msg.oid, &record, msg.ts);
                        // Supersede-clamp locally against the prefetched
                        // head: no other actor can move this row's head
                        // while the batch holds the key's shard lock and
                        // the spatial guard has been won.
                        let lf_ts = if *head_ts >= msg.ts {
                            Timestamp(head_ts.0 + 1)
                        } else {
                            msg.ts
                        };
                        wb.set_lf_at(
                            msg.oid,
                            &LfRecord::Leader {
                                since_us: *since_us,
                                last_leaf: new_leaf,
                            },
                            lf_ts,
                        );
                    }
                }
                dirty.insert(msg.oid.0);
                UpdateOutcome::LeaderUpdated
            }
            Some((
                _,
                LfRecord::Follower {
                    leader,
                    displacement,
                    ..
                },
            )) => {
                let (leader_ts, leader_rec) = leader_locs
                    .get(&leader.0)
                    .and_then(|l| l.as_ref())
                    .expect("missing leader location routed to fallback above");
                if within_school(
                    leader_rec,
                    *leader_ts,
                    *displacement,
                    &msg.loc,
                    msg.ts,
                    cfg.epsilon,
                ) {
                    // Shed: zero writes, so the prefetched snapshot for
                    // this OID stays valid — no dirty mark.
                    UpdateOutcome::Shed
                } else {
                    // Departure: the promotion is a guarded L/F commit
                    // racing clustering merges — flush and take the
                    // synchronous path end to end.
                    if !wb.is_empty() {
                        tables.flush_write_batch(s, &mut wb)?;
                    }
                    let outcome = apply_update(s, tables, cfg, msg)?;
                    dirty.insert(msg.oid.0);
                    outcome
                }
            }
        };
        out.push(outcome);
    }
    if !wb.is_empty() {
        tables.flush_write_batch(s, &mut wb)?;
    }
    Ok(out)
}

/// Lines 10–13 of Algorithm 1: remove the follower from its old school (if
/// any) and set it up as a leader.
///
/// The leader flag is flipped under a check-and-mutate guard on `observed`
/// (the affiliation record the departure decision was made against): a
/// clustering merge running on another shard may have re-affiliated the
/// object to a surviving leader between our read and this write, and a
/// blind overwrite would leave the object both inside the survivor's
/// school *and* holding its own spatial row — a permanent double sighting.
/// Returns `Ok(None)` when the guard fails, so the caller re-reads the
/// affiliation and re-decides against the new school.
fn promote_to_leader(
    s: &mut Session,
    tables: &MoistTables,
    msg: &UpdateMessage,
    record: &LocationRecord,
    new_leaf: u64,
    observed: &LfRecord,
    old_leader: Option<ObjectId>,
) -> Result<Option<UpdateOutcome>> {
    // Line 11: label ID a leader — only if nothing re-affiliated it since.
    let promoted = tables.lf_check_and_set(
        s,
        msg.oid,
        observed,
        &LfRecord::Leader {
            since_us: msg.ts.0,
            last_leaf: new_leaf,
        },
        msg.ts,
    )?;
    if !promoted {
        return Ok(None);
    }
    if let Some(leader) = old_leader {
        // Line 10: delete ID's entry from the old leader's Follower Info
        // *before* inserting the spatial row, so no instant shows the
        // object both as a school member and as a row of its own.
        tables.remove_follower(s, leader, msg.oid)?;
    }
    // A promoted follower owns no Spatial Index entry to clean up: the
    // clustering merge that demoted it deleted its row under a
    // check-and-mutate guard on the scanned value, so the row the merge
    // removed is exactly the row the object's last leader-path write
    // created (a racing move fails the guard and aborts the merge).
    // Line 12: Location Table.
    tables.put_location(s, msg.oid, record, msg.ts)?;
    // Line 13: Spatial Index Table.
    tables.spatial_insert(s, new_leaf, msg.oid, record, msg.ts)?;
    Ok(Some(match old_leader {
        Some(old_leader) => UpdateOutcome::Departed { old_leader },
        None => UpdateOutcome::Registered,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::LfRecord;
    use moist_bigtable::{Bigtable, CostProfile};
    use moist_spatial::Displacement;
    use std::sync::Arc;

    fn setup(epsilon: f64) -> (Arc<Bigtable>, MoistTables, Session, MoistConfig) {
        let store = Bigtable::new();
        let cfg = MoistConfig {
            epsilon,
            ..MoistConfig::default()
        };
        let tables = MoistTables::create(&store, &cfg).unwrap();
        let session = store.session_with(CostProfile::free());
        (store, tables, session, cfg)
    }

    fn msg(oid: u64, x: f64, y: f64, vx: f64, secs: u64) -> UpdateMessage {
        UpdateMessage {
            oid: ObjectId(oid),
            loc: Point::new(x, y),
            vel: Velocity::new(vx, 0.0),
            ts: Timestamp::from_secs(secs),
        }
    }

    #[test]
    fn first_update_registers_a_leader() {
        let (_st, t, mut s, cfg) = setup(5.0);
        let out = apply_update(&mut s, &t, &cfg, &msg(1, 100.0, 100.0, 1.0, 0)).unwrap();
        assert_eq!(out, UpdateOutcome::Registered);
        assert!(t.lf(&mut s, ObjectId(1)).unwrap().unwrap().is_leader());
        let (_, rec) = t.latest_location(&mut s, ObjectId(1)).unwrap().unwrap();
        assert_eq!(rec.loc, Point::new(100.0, 100.0));
        // Present in the spatial index.
        let cc = cfg
            .space
            .cell_at(cfg.clustering_level, &Point::new(100.0, 100.0));
        assert_eq!(
            t.spatial_count_cell(&mut s, cc, cfg.space.leaf_level)
                .unwrap(),
            1
        );
    }

    #[test]
    fn leader_update_moves_spatial_entry_exactly_once() {
        let (_st, t, mut s, cfg) = setup(5.0);
        apply_update(&mut s, &t, &cfg, &msg(1, 100.0, 100.0, 1.0, 0)).unwrap();
        let out = apply_update(&mut s, &t, &cfg, &msg(1, 600.0, 600.0, 1.0, 1)).unwrap();
        assert_eq!(out, UpdateOutcome::LeaderUpdated);
        // Old cell empty, new cell has exactly one entry.
        let old_cc = cfg
            .space
            .cell_at(cfg.clustering_level, &Point::new(100.0, 100.0));
        let new_cc = cfg
            .space
            .cell_at(cfg.clustering_level, &Point::new(600.0, 600.0));
        assert_eq!(
            t.spatial_count_cell(&mut s, old_cc, cfg.space.leaf_level)
                .unwrap(),
            0
        );
        assert_eq!(
            t.spatial_count_cell(&mut s, new_cc, cfg.space.leaf_level)
                .unwrap(),
            1
        );
        // The LF record tracks the new leaf.
        match t.lf(&mut s, ObjectId(1)).unwrap().unwrap() {
            LfRecord::Leader { last_leaf, .. } => {
                assert_eq!(
                    last_leaf,
                    cfg.space.leaf_cell(&Point::new(600.0, 600.0)).index
                );
            }
            _ => panic!("leader expected"),
        }
    }

    /// Builds a two-object school: 1 leads, 2 follows at displacement (0,2).
    fn build_school(t: &MoistTables, s: &mut Session, cfg: &MoistConfig) {
        apply_update(s, t, cfg, &msg(1, 100.0, 100.0, 1.0, 0)).unwrap();
        t.set_lf(
            s,
            ObjectId(2),
            &LfRecord::Follower {
                leader: ObjectId(1),
                displacement: Displacement::new(0.0, 2.0),
                since_us: 0,
            },
            Timestamp::ZERO,
        )
        .unwrap();
        t.add_follower(
            s,
            ObjectId(1),
            ObjectId(2),
            Displacement::new(0.0, 2.0),
            Timestamp::ZERO,
        )
        .unwrap();
    }

    #[test]
    fn follower_within_epsilon_is_shed() {
        let (st, t, mut s, cfg) = setup(5.0);
        build_school(&t, &mut s, &cfg);
        let writes_before = st.metrics_snapshot();
        // Leader at t=0 at (100,100) moving (1,0): estimate for follower at
        // t=10 is (110, 102). Report (111, 102): 1 unit off, ε=5 → shed.
        let out = apply_update(&mut s, &t, &cfg, &msg(2, 111.0, 102.0, 1.0, 10)).unwrap();
        assert_eq!(out, UpdateOutcome::Shed);
        let writes_after = st.metrics_snapshot();
        assert_eq!(
            writes_after.write_ops + writes_after.batch_ops,
            writes_before.write_ops + writes_before.batch_ops,
            "a shed update must not write"
        );
        // Follower has no Location Table row of its own.
        assert!(t.latest_location(&mut s, ObjectId(2)).unwrap().is_none());
    }

    #[test]
    fn follower_beyond_epsilon_departs_and_leads() {
        let (_st, t, mut s, cfg) = setup(5.0);
        build_school(&t, &mut s, &cfg);
        // Report 300 units away from the estimate.
        let out = apply_update(&mut s, &t, &cfg, &msg(2, 400.0, 102.0, 1.0, 10)).unwrap();
        assert_eq!(
            out,
            UpdateOutcome::Departed {
                old_leader: ObjectId(1)
            }
        );
        // Now a leader with its own rows.
        assert!(t.lf(&mut s, ObjectId(2)).unwrap().unwrap().is_leader());
        assert!(t.latest_location(&mut s, ObjectId(2)).unwrap().is_some());
        // Removed from the old leader's Follower Info.
        assert!(t.followers(&mut s, ObjectId(1)).unwrap().is_empty());
        // And it is in the spatial index at its reported location.
        let cc = cfg
            .space
            .cell_at(cfg.clustering_level, &Point::new(400.0, 102.0));
        assert_eq!(
            t.spatial_count_cell(&mut s, cc, cfg.space.leaf_level)
                .unwrap(),
            1
        );
    }

    #[test]
    fn epsilon_zero_sheds_nothing() {
        let (_st, t, mut s, cfg) = setup(0.0);
        build_school(&t, &mut s, &cfg);
        // Even a perfect report departs under ε=0 *if* it deviates at all;
        // an exact match is still within the school (distance 0 ≤ 0).
        let out = apply_update(&mut s, &t, &cfg, &msg(2, 110.0, 102.0, 1.0, 10)).unwrap();
        assert_eq!(out, UpdateOutcome::Shed, "exact estimate is distance 0");
        let out = apply_update(&mut s, &t, &cfg, &msg(2, 110.1, 102.0, 1.0, 10)).unwrap();
        assert!(matches!(out, UpdateOutcome::Departed { .. }));
    }

    #[test]
    fn follower_with_vanished_leader_self_heals() {
        let (_st, t, mut s, cfg) = setup(5.0);
        // A follower whose leader has no Location row at all.
        t.set_lf(
            &mut s,
            ObjectId(2),
            &LfRecord::Follower {
                leader: ObjectId(1),
                displacement: Displacement::ZERO,
                since_us: 0,
            },
            Timestamp::ZERO,
        )
        .unwrap();
        let out = apply_update(&mut s, &t, &cfg, &msg(2, 50.0, 50.0, 0.0, 1)).unwrap();
        assert_eq!(out, UpdateOutcome::Registered);
        assert!(t.lf(&mut s, ObjectId(2)).unwrap().unwrap().is_leader());
    }

    /// The batched apply is a pure optimization: same outcomes, same
    /// final table state as replaying the messages synchronously. The
    /// mix below exercises every branch — registration, leader moves,
    /// shed, departure, and dirty-set fallbacks (repeat OIDs and a
    /// follower whose leader updated earlier in the same batch).
    #[test]
    fn batch_apply_matches_synchronous_outcomes_and_state() {
        let (_st1, t1, mut s1, cfg) = setup(5.0);
        let (_st2, t2, mut s2, _) = setup(5.0);
        build_school(&t1, &mut s1, &cfg);
        build_school(&t2, &mut s2, &cfg);
        let batch = vec![
            msg(3, 200.0, 200.0, 1.0, 1),  // first sight: register
            msg(1, 101.0, 100.0, 1.0, 2),  // leader move (dirties 1)
            msg(2, 111.0, 102.0, 1.0, 10), // follower of dirty leader: fallback, shed
            msg(1, 600.0, 600.0, 1.0, 12), // dirty OID: fallback, cross-cell move
            msg(2, 900.0, 102.0, 1.0, 14), // departure
            msg(3, 205.0, 200.0, 1.0, 15), // dirty OID: fallback leader move
        ];
        let sync: Vec<UpdateOutcome> = batch
            .iter()
            .map(|m| apply_update(&mut s1, &t1, &cfg, m).unwrap())
            .collect();
        let batched = apply_update_batch(&mut s2, &t2, &cfg, &batch).unwrap();
        assert_eq!(sync, batched);
        assert!(matches!(batched[2], UpdateOutcome::Shed));
        assert!(matches!(batched[4], UpdateOutcome::Departed { .. }));
        for oid in [1u64, 2, 3] {
            assert_eq!(
                t1.lf(&mut s1, ObjectId(oid)).unwrap(),
                t2.lf(&mut s2, ObjectId(oid)).unwrap(),
                "L/F record of {oid} must match the sync replay"
            );
            assert_eq!(
                t1.latest_location(&mut s1, ObjectId(oid))
                    .unwrap()
                    .map(|(_, r)| r),
                t2.latest_location(&mut s2, ObjectId(oid))
                    .unwrap()
                    .map(|(_, r)| r),
                "latest location of {oid} must match the sync replay"
            );
        }
        // Spatial index converged identically: each live leader filed
        // under the same cell on both stores.
        for p in [
            Point::new(600.0, 600.0),
            Point::new(900.0, 102.0),
            Point::new(205.0, 200.0),
        ] {
            let cc = cfg.space.cell_at(cfg.clustering_level, &p);
            assert_eq!(
                t1.spatial_count_cell(&mut s1, cc, cfg.space.leaf_level)
                    .unwrap(),
                t2.spatial_count_cell(&mut s2, cc, cfg.space.leaf_level)
                    .unwrap()
            );
        }
    }

    /// A batch that is pure steady-state traffic (sheds + same-leaf
    /// leader refreshes) must write strictly fewer, batched ops than
    /// the synchronous replay — the whole point of the pipeline.
    #[test]
    fn batch_apply_sheds_without_writes_and_batches_the_rest() {
        let (st, t, mut s, cfg) = setup(5.0);
        build_school(&t, &mut s, &cfg);
        let before = st.metrics_snapshot();
        let batch = vec![
            msg(2, 111.0, 102.0, 1.0, 10), // shed
            msg(2, 112.0, 102.0, 1.0, 11), // shed again (not dirty: no writes)
        ];
        let out = apply_update_batch(&mut s, &t, &cfg, &batch).unwrap();
        assert_eq!(out, vec![UpdateOutcome::Shed, UpdateOutcome::Shed]);
        let after = st.metrics_snapshot();
        assert_eq!(
            after.write_ops + after.batch_ops,
            before.write_ops + before.batch_ops,
            "an all-shed batch must not write"
        );
    }

    #[test]
    fn batch_apply_rejects_bad_messages_before_writing_anything() {
        let (st, t, mut s, cfg) = setup(5.0);
        let bad = UpdateMessage {
            oid: ObjectId(9),
            loc: Point::new(f64::NAN, 0.0),
            vel: Velocity::ZERO,
            ts: Timestamp::ZERO,
        };
        let before = st.metrics_snapshot();
        let batch = vec![msg(1, 100.0, 100.0, 1.0, 0), bad];
        assert!(apply_update_batch(&mut s, &t, &cfg, &batch).is_err());
        let after = st.metrics_snapshot();
        assert_eq!(
            after.write_ops + after.batch_ops,
            before.write_ops + before.batch_ops,
            "validation must fail the batch before any store write"
        );
    }

    #[test]
    fn non_finite_updates_are_rejected() {
        let (_st, t, mut s, cfg) = setup(5.0);
        let bad = UpdateMessage {
            oid: ObjectId(1),
            loc: Point::new(f64::NAN, 0.0),
            vel: Velocity::ZERO,
            ts: Timestamp::ZERO,
        };
        assert!(apply_update(&mut s, &t, &cfg, &bad).is_err());
    }
}
