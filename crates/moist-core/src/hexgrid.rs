//! Hexagonal partitioning of the velocity space (§3.3.2).
//!
//! "We first partition the velocity space into identical hexagons …, which
//! guarantees that the maximum distance between two internal points is less
//! than Δm. … each leader is first mapped to the corresponding hexagon
//! partition in O(1) time" — this is what makes clustering `O(n)` in the
//! number of leaders instead of the `O(n log n)` of the comparison-based
//! schemes (§2.4).
//!
//! A regular hexagon's maximum internal distance (corner to opposite corner)
//! is twice its circumradius, so we use circumradius `R = Δm / 2`.

use moist_spatial::Velocity;
use serde::{Deserialize, Serialize};

/// Axial coordinates of one hexagonal bin.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct HexBin {
    /// Axial `q` coordinate.
    pub q: i64,
    /// Axial `r` coordinate.
    pub r: i64,
}

/// A hexagonal grid over velocity space with bin diameter `delta_m`.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct HexGrid {
    /// Hexagon circumradius (`Δm / 2`).
    radius: f64,
}

impl HexGrid {
    /// Creates a grid whose bins never contain two velocities further apart
    /// than `delta_m`.
    ///
    /// Non-positive or non-finite `delta_m` falls back to a tiny positive
    /// radius, which degenerates to "only identical velocities share a bin".
    pub fn new(delta_m: f64) -> Self {
        let delta = if delta_m.is_finite() && delta_m > 0.0 {
            delta_m
        } else {
            f64::MIN_POSITIVE.sqrt()
        };
        HexGrid {
            radius: delta / 2.0,
        }
    }

    /// The configured circumradius.
    pub fn radius(&self) -> f64 {
        self.radius
    }

    /// Maps a velocity to its bin in `O(1)` (pointy-top axial coordinates
    /// with cube rounding).
    pub fn bin(&self, v: &Velocity) -> HexBin {
        let x = v.vx / self.radius;
        let y = v.vy / self.radius;
        // Pointy-top axial transform.
        let qf = (3f64.sqrt() / 3.0) * x - (1.0 / 3.0) * y;
        let rf = (2.0 / 3.0) * y;
        Self::cube_round(qf, rf)
    }

    /// Centre velocity of a bin (the prototype velocity of a merged school).
    pub fn center(&self, bin: HexBin) -> Velocity {
        let q = bin.q as f64;
        let r = bin.r as f64;
        Velocity::new(
            self.radius * 3f64.sqrt() * (q + r / 2.0),
            self.radius * 1.5 * r,
        )
    }

    /// Standard cube rounding: rounds fractional axial coordinates to the
    /// nearest hexagon centre.
    fn cube_round(qf: f64, rf: f64) -> HexBin {
        let sf = -qf - rf;
        let mut q = qf.round();
        let mut r = rf.round();
        let s = sf.round();
        let dq = (q - qf).abs();
        let dr = (r - rf).abs();
        let ds = (s - sf).abs();
        if dq > dr && dq > ds {
            q = -r - s;
        } else if dr > ds {
            r = -q - s;
        }
        HexBin {
            q: q as i64,
            r: r as i64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_bin_implies_similar_velocity() {
        // The defining guarantee: two velocities in one bin differ by < Δm.
        let delta_m = 0.8;
        let grid = HexGrid::new(delta_m);
        let mut rng_state = 0x2545F4914F6CDD1Du64;
        let mut next = || {
            rng_state ^= rng_state << 13;
            rng_state ^= rng_state >> 7;
            rng_state ^= rng_state << 17;
            (rng_state >> 11) as f64 / (1u64 << 53) as f64
        };
        let velocities: Vec<Velocity> = (0..4000)
            .map(|_| Velocity::new(next() * 10.0 - 5.0, next() * 10.0 - 5.0))
            .collect();
        use std::collections::HashMap;
        let mut bins: HashMap<HexBin, Vec<Velocity>> = HashMap::new();
        for v in velocities {
            bins.entry(grid.bin(&v)).or_default().push(v);
        }
        for (_, members) in bins {
            for a in &members {
                for b in &members {
                    assert!(
                        a.difference(b) < delta_m + 1e-9,
                        "bin violated Δm: {a:?} vs {b:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn bin_center_roundtrips() {
        let grid = HexGrid::new(1.0);
        for q in -5..=5i64 {
            for r in -5..=5i64 {
                let bin = HexBin { q, r };
                assert_eq!(grid.bin(&grid.center(bin)), bin);
            }
        }
    }

    #[test]
    fn nearby_velocities_usually_share_bins() {
        let grid = HexGrid::new(1.0);
        let v = Velocity::new(2.0, 3.0);
        let w = Velocity::new(2.001, 3.001);
        assert_eq!(grid.bin(&v), grid.bin(&w));
    }

    #[test]
    fn zero_and_negative_delta_degenerate_safely() {
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let grid = HexGrid::new(bad);
            // Must not panic, and identical velocities still bin together.
            let v = Velocity::new(1.0, 1.0);
            assert_eq!(grid.bin(&v), grid.bin(&v));
        }
    }

    #[test]
    fn distinct_far_velocities_get_distinct_bins() {
        let grid = HexGrid::new(0.5);
        let a = grid.bin(&Velocity::new(0.0, 0.0));
        let b = grid.bin(&Velocity::new(3.0, 0.0));
        assert_ne!(a, b);
    }
}
