//! The load-signal layer: measured per-cell and per-shard demand.
//!
//! The paper's premise is that update/query load on a moving-object store
//! is wildly skewed — business-center cells dominate (§3.4.2 motivates
//! FLAG with exactly that skew) — yet placement decisions (which shard
//! owns which clustering cell, how a scattered query is sliced) are blind
//! without a measured signal. This module is that signal, consumed at
//! three layers:
//!
//! 1. **weighted rendezvous** ([`crate::cluster::weighted_rendezvous_owner`])
//!    — per-shard weights derived from measured utilization shift whole
//!    cells between shards with minimal remap;
//! 2. **hot-cell splitting** ([`crate::cluster::SplitTable`]) — the
//!    hottest clustering cells split ownership one level finer, so a
//!    single business-center cell stops pinning a shard;
//! 3. **fan-out slice balancing** ([`crate::region::balance_slices`]) —
//!    per-cell rates price a scattered region slice, so the planner can
//!    subdivide the costliest slices across idle shards.
//!
//! A [`LoadTracker`] lives inside every [`crate::server::MoistServer`]
//! (next to the FLAG machinery, which estimates *density* where this
//! tracks *demand*): updates and queries feed per-clustering-cell EWMA
//! rates in **virtual time** (the timestamps the operations carry), so the
//! signal is deterministic for a given workload and independent of
//! wall-clock scheduling. The cluster tier rolls the per-cell rates up
//! into per-shard utilization through
//! [`crate::cluster_tier::MoistCluster::cluster_stats`] and consumes them
//! in [`crate::cluster_tier::MoistCluster::rebalance`].

use moist_bigtable::Timestamp;
use std::collections::HashMap;

/// EWMA window length in virtual seconds: rates fold once per window.
const WINDOW_SECS: f64 = 5.0;

/// EWMA smoothing factor per folded window (higher = more reactive).
const ALPHA: f64 = 0.5;

/// Rates below this (events per virtual second) with nothing pending are
/// pruned — a cell that went cold stops occupying tracker memory.
const PRUNE_RATE: f64 = 1e-6;

/// EWMA smoothing for per-cell measured scan cost. Scan samples are
/// rarer than updates (one per fan-out slice), so smoothing is gentler
/// than the demand ALPHA: a single anomalous scan should not reprice a
/// cell.
const SCAN_COST_ALPHA: f64 = 0.3;

/// One cell's smoothed demand, in events per virtual second.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CellRates {
    /// EWMA update arrivals per virtual second.
    pub update_rate: f64,
    /// EWMA query arrivals per virtual second (queries anchored in the
    /// cell — scattered partial scans are *not* counted per cell, they are
    /// accounted by [`LoadTracker::note_scatter_slice`]).
    pub query_rate: f64,
}

impl CellRates {
    /// Combined demand rate (updates dominate store cost; queries count
    /// the same here — callers wanting a different mix read the fields).
    pub fn total(&self) -> f64 {
        self.update_rate + self.query_rate
    }
}

/// Per-cell windowed counters plus the folded EWMA.
#[derive(Debug, Clone, Copy)]
struct CellWindow {
    rates: CellRates,
    pending_updates: u64,
    pending_queries: u64,
    window_start_us: u64,
}

/// Per-clustering-cell EWMA demand rates, accumulated in virtual time.
///
/// Events are bucketed into fixed windows of the *operation timestamps*;
/// when a window closes (lazily, on the next event or read) the bucket
/// folds into the EWMA: `rate = (1 − α)·rate + α·count/window`. Windows
/// with no events decay the rate by `(1 − α)` each, so a cell that goes
/// quiet fades out instead of pinning its peak forever. Everything is
/// driven by the timestamps the workload carries, so a given update/query
/// stream produces the same rates regardless of thread interleaving.
#[derive(Debug)]
pub struct LoadTracker {
    window_us: u64,
    cells: HashMap<u64, CellWindow>,
    /// Scattered partial scans served by this shard (region + NN slices).
    scatter_slices: u64,
    /// Total virtual µs spent serving scattered partial scans.
    scatter_us: f64,
    /// Measured scan cost per clustering cell, in virtual µs per
    /// *full-cell* scan (samples covering a fraction of a cell are
    /// extrapolated before folding). Fed from the per-range costs the
    /// region fan-out already pays for ([`Self::note_cell_scan`]).
    scan_costs: HashMap<u64, f64>,
}

impl Default for LoadTracker {
    fn default() -> Self {
        LoadTracker::new(WINDOW_SECS)
    }
}

impl LoadTracker {
    /// Creates a tracker folding its EWMA every `window_secs` of virtual
    /// time.
    pub fn new(window_secs: f64) -> Self {
        LoadTracker {
            window_us: ((window_secs.max(1e-3)) * 1e6) as u64,
            cells: HashMap::new(),
            scatter_slices: 0,
            scatter_us: 0.0,
            scan_costs: HashMap::new(),
        }
    }

    /// Records one update landing in clustering cell `cell` at `now`.
    pub fn observe_update(&mut self, cell: u64, now: Timestamp) {
        self.observe(cell, now, true);
    }

    /// Records one query anchored in clustering cell `cell` at `now`.
    pub fn observe_query(&mut self, cell: u64, now: Timestamp) {
        self.observe(cell, now, false);
    }

    fn observe(&mut self, cell: u64, now: Timestamp, update: bool) {
        let window_us = self.window_us;
        let w = self.cells.entry(cell).or_insert(CellWindow {
            rates: CellRates::default(),
            pending_updates: 0,
            pending_queries: 0,
            window_start_us: now.0,
        });
        fold(w, now.0, window_us);
        if update {
            w.pending_updates += 1;
        } else {
            w.pending_queries += 1;
        }
    }

    /// Records one scattered partial scan (a region or NN slice) this
    /// shard served, costing `cost_us` virtual µs.
    pub fn note_scatter_slice(&mut self, cost_us: f64) {
        self.scatter_slices += 1;
        self.scatter_us += cost_us.max(0.0);
    }

    /// `(slices served, total virtual µs)` of scattered partial scans.
    pub fn scatter_slice_stats(&self) -> (u64, f64) {
        (self.scatter_slices, self.scatter_us)
    }

    /// Folds one measured scan sample for clustering cell `cell`:
    /// `cost_us` virtual µs were spent scanning `frac` of the cell's key
    /// span (`0 < frac ≤ 1`). The sample is extrapolated to a full-cell
    /// cost and folded into a per-cell EWMA, replacing the span×density
    /// *prior* with a *measured* price the next time the fan-out planner
    /// slices a scattered query.
    pub fn note_cell_scan(&mut self, cell: u64, frac: f64, cost_us: f64) {
        // NaN fracs/costs are rejected along with non-positive ones.
        if frac.is_nan() || frac <= 0.0 || cost_us.is_nan() || cost_us < 0.0 {
            return;
        }
        let sample = cost_us / frac.min(1.0);
        self.scan_costs
            .entry(cell)
            .and_modify(|c| *c = (1.0 - SCAN_COST_ALPHA) * *c + SCAN_COST_ALPHA * sample)
            .or_insert(sample);
    }

    /// The learned per-cell scan costs (virtual µs per full-cell scan),
    /// in ascending cell order. Cells never scanned are absent — callers
    /// fall back to their prior for those.
    pub fn cell_scan_costs(&self) -> Vec<(u64, f64)> {
        let mut out: Vec<(u64, f64)> = self.scan_costs.iter().map(|(&c, &v)| (c, v)).collect();
        out.sort_unstable_by_key(|&(c, _)| c);
        out
    }

    /// The per-cell rates as of `now`: every cell's pending windows fold
    /// first, so a cell that went quiet decays even though no event
    /// touched it. Cells whose rate decayed to ~0 are pruned. Returned in
    /// ascending cell order (deterministic for tests and rebalance).
    pub fn rates(&mut self, now: Timestamp) -> Vec<(u64, CellRates)> {
        let window_us = self.window_us;
        self.cells.retain(|_, w| {
            fold(w, now.0, window_us);
            w.rates.total() > PRUNE_RATE || w.pending_updates + w.pending_queries > 0
        });
        let mut out: Vec<(u64, CellRates)> =
            self.cells.iter().map(|(&c, w)| (c, w.rates)).collect();
        out.sort_unstable_by_key(|&(c, _)| c);
        out
    }

    /// Total `(update rate, query rate)` across all tracked cells at
    /// `now` — this shard's demand rollup.
    pub fn totals(&mut self, now: Timestamp) -> (f64, f64) {
        self.rates(now).iter().fold((0.0, 0.0), |(u, q), (_, r)| {
            (u + r.update_rate, q + r.query_rate)
        })
    }

    /// Number of cells currently tracked.
    pub fn tracked_cells(&self) -> usize {
        self.cells.len()
    }
}

/// Folds every window that closed before `now_us` into the EWMA: the
/// pending bucket contributes `α·count/window` once, then `k − 1` empty
/// windows decay by `(1 − α)` each. Events timestamped before the current
/// window (late arrivals from a concurrent client) count into the current
/// bucket — slightly smeared, never lost.
fn fold(w: &mut CellWindow, now_us: u64, window_us: u64) {
    if now_us < w.window_start_us + window_us {
        return;
    }
    let k = (now_us - w.window_start_us) / window_us;
    let window_secs = window_us as f64 / 1e6;
    let decay = (1.0 - ALPHA).powi(k.min(1_000) as i32);
    let fresh = ALPHA * (1.0 - ALPHA).powi((k.min(1_000) - 1) as i32);
    w.rates.update_rate =
        w.rates.update_rate * decay + fresh * w.pending_updates as f64 / window_secs;
    w.rates.query_rate =
        w.rates.query_rate * decay + fresh * w.pending_queries as f64 / window_secs;
    w.pending_updates = 0;
    w.pending_queries = 0;
    w.window_start_us += k * window_us;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(secs: f64) -> Timestamp {
        Timestamp::from_secs_f64(secs)
    }

    #[test]
    fn steady_stream_converges_to_its_arrival_rate() {
        let mut t = LoadTracker::new(1.0);
        // 10 updates per virtual second for 30 seconds.
        for sec in 0..30u64 {
            for i in 0..10u64 {
                t.observe_update(7, at(sec as f64 + i as f64 / 10.0));
            }
        }
        let rates = t.rates(at(30.0));
        assert_eq!(rates.len(), 1);
        let r = rates[0].1.update_rate;
        assert!(
            (r - 10.0).abs() < 0.5,
            "EWMA should converge to 10/s, got {r}"
        );
        assert_eq!(rates[0].1.query_rate, 0.0);
    }

    #[test]
    fn quiet_cells_decay_and_eventually_prune() {
        let mut t = LoadTracker::new(1.0);
        for i in 0..20u64 {
            t.observe_update(3, at(i as f64 / 20.0));
        }
        let hot = t.rates(at(2.0))[0].1.update_rate;
        assert!(hot > 1.0);
        // A few quiet windows halve the rate each time.
        let later = t.rates(at(6.0))[0].1.update_rate;
        assert!(later < hot / 4.0, "{later} vs {hot}");
        // Long silence prunes the cell entirely.
        assert!(t.rates(at(500.0)).is_empty());
        assert_eq!(t.tracked_cells(), 0);
    }

    #[test]
    fn skewed_cells_rank_above_uniform_ones() {
        let mut t = LoadTracker::default();
        // Cell 1 takes 80% of the traffic, cells 2..=5 split the rest.
        for sec in 0..40u64 {
            for i in 0..10u64 {
                let cell = if i < 8 { 1 } else { 2 + (sec + i) % 4 };
                t.observe_update(cell, at(sec as f64 + i as f64 / 10.0));
            }
        }
        let rates = t.rates(at(40.0));
        let hot = rates.iter().find(|(c, _)| *c == 1).unwrap().1.update_rate;
        let cold: f64 = rates
            .iter()
            .filter(|(c, _)| *c != 1)
            .map(|(_, r)| r.update_rate)
            .sum::<f64>()
            / 4.0;
        assert!(
            hot > 10.0 * cold,
            "hot cell must dominate: {hot} vs mean cold {cold}"
        );
        let (u, q) = t.totals(at(40.0));
        assert!(u > 0.0 && q == 0.0);
    }

    #[test]
    fn queries_and_updates_are_tracked_separately() {
        let mut t = LoadTracker::new(1.0);
        for i in 0..40u64 {
            t.observe_update(9, at(i as f64 / 4.0));
            if i % 2 == 0 {
                t.observe_query(9, at(i as f64 / 4.0));
            }
        }
        let r = t.rates(at(11.0))[0].1;
        assert!(r.update_rate > 1.5 * r.query_rate);
        assert!(r.query_rate > 0.0);
        assert!((r.total() - r.update_rate - r.query_rate).abs() < 1e-12);
    }

    #[test]
    fn scatter_slice_counters_accumulate() {
        let mut t = LoadTracker::default();
        assert_eq!(t.scatter_slice_stats(), (0, 0.0));
        t.note_scatter_slice(120.0);
        t.note_scatter_slice(80.0);
        t.note_scatter_slice(-5.0); // clamped, never subtracts
        let (n, us) = t.scatter_slice_stats();
        assert_eq!(n, 3);
        assert!((us - 200.0).abs() < 1e-9);
    }

    #[test]
    fn cell_scan_costs_extrapolate_and_smooth() {
        let mut t = LoadTracker::default();
        assert!(t.cell_scan_costs().is_empty());
        // Half of cell 5 cost 100µs → a full-cell estimate of 200µs.
        t.note_cell_scan(5, 0.5, 100.0);
        assert_eq!(t.cell_scan_costs(), vec![(5, 200.0)]);
        // A second, pricier sample moves the EWMA toward it, gently.
        t.note_cell_scan(5, 1.0, 1000.0);
        let cost = t.cell_scan_costs()[0].1;
        assert!(cost > 200.0 && cost < 1000.0, "EWMA in between: {cost}");
        // Degenerate samples are ignored.
        t.note_cell_scan(6, 0.0, 50.0);
        t.note_cell_scan(7, 0.5, -1.0);
        assert_eq!(t.cell_scan_costs().len(), 1);
        // A dense cell prices above a sparse one.
        t.note_cell_scan(8, 1.0, 10.0);
        let costs = t.cell_scan_costs();
        assert!(costs[0].1 > costs[1].1);
        assert_eq!((costs[0].0, costs[1].0), (5, 8));
    }

    #[test]
    fn late_events_are_counted_not_lost() {
        let mut t = LoadTracker::new(1.0);
        t.observe_update(4, at(10.0));
        // A concurrent client's late timestamp lands in the current bucket.
        t.observe_update(4, at(3.0));
        let r = t.rates(at(12.0))[0].1;
        assert!(r.update_rate > 0.0, "both events must contribute: {r:?}");
    }
}
