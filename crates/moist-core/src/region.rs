//! Region queries: all objects inside a rectangle.
//!
//! §3.2.1: "An arbitrary region can be approximated by a collection of
//! cells" and "any query for … objects on 2-D space can be transformed to a
//! combination of queries on the 1-D key space for which BigTable provides
//! parallelism to read data from multiple ranges." We cover the region with
//! cells at an adaptive level, merge adjacent cells into maximal contiguous
//! key ranges (one scan RPC each), and expand schools like NN search does.
//!
//! The query is split into three separable stages so a cluster tier can
//! scatter it across shards ([`crate::cluster_tier::MoistCluster::region`]):
//!
//! 1. [`plan_region_ranges`] — pure planning: the merged contiguous
//!    leaf-index ranges covering the margin-enlarged window;
//! 2. [`region_partial_scan`] — scan any subset of those ranges and expand
//!    schools, returning a mergeable [`RegionPartial`] (no sort, no dedup);
//! 3. [`merge_region_partials`] — fold partials *by move* into the final
//!    answer, deduplicating each object exactly once at the merge.
//!
//! [`region_query`] runs all three on one session — the single-server path.

use crate::config::MoistConfig;
use crate::error::Result;
use crate::nn::Neighbor;
use crate::tables::MoistTables;
use moist_bigtable::{Session, Timestamp};
use moist_spatial::{cover_rect, Rect};

/// One `[start, end)` leaf-index range.
pub type LeafRange = (u64, u64);

/// Owner-keyed slices of a scattered region plan: `(shard id, that
/// shard's merged leaf ranges)` pairs, as produced by
/// [`crate::cluster::slice_ranges_by_owner`] and rebalanced by
/// [`balance_slices`].
pub type OwnerSlices = Vec<(u64, Vec<LeafRange>)>;

/// Statistics of one region query.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RegionStats {
    /// Contiguous key ranges scanned (one RPC each).
    pub ranges_scanned: usize,
    /// Leader rows retrieved.
    pub leaders_fetched: usize,
    /// Shards that contributed partial scans (1 for single-server runs).
    pub shards_scattered: usize,
    /// Range pieces the balancing pass moved off their owner shard onto an
    /// idler one ([`balance_slices`]; 0 for single-server and unbalanced
    /// runs).
    pub slices_rebalanced: usize,
    /// Client-visible virtual µs. Partials scanned in parallel overlap, so
    /// a merged query reports the *slowest* partial, not the sum.
    pub cost_us: f64,
}

/// One shard's share of a (possibly scattered) region query: raw hits plus
/// that scan's counters. Hits are unordered and may contain duplicates
/// across partials — partials are scanned by different shards at
/// different instants, so an object moving between slices mid-scatter can
/// be sighted by two of them. Deduplication happens exactly once, in
/// [`merge_region_partials`].
#[derive(Debug, Default)]
pub struct RegionPartial {
    /// Raw hits (objects inside the query rectangle), unsorted, undeduped.
    pub hits: Vec<Neighbor>,
    /// This partial's own scan counters and virtual cost.
    pub stats: RegionStats,
    /// Measured virtual µs per scanned leaf range: `(range, cost_us)` in
    /// scan order. This is the raw signal for per-cell scan-cost learning
    /// — the serving shard apportions each range's measured cost onto the
    /// clustering cells it overlaps and feeds
    /// [`crate::load::LoadTracker::note_cell_scan`]. Only the range scans
    /// themselves are attributed; school expansion cost stays in the
    /// aggregate `stats.cost_us` (followers are fetched in one batch
    /// across ranges, so splitting that cost per range would be a guess).
    pub range_costs: Vec<(LeafRange, f64)>,
}

/// Plans a region query: the maximal contiguous leaf-index ranges covering
/// the `margin`-enlarged window around `rect`, in curve order.
///
/// Pure computation — no store access, no cost charged — so a cluster tier
/// can plan once, slice the ranges by shard owner, and hand each shard its
/// slice without any shard re-planning.
pub fn plan_region_ranges(cfg: &MoistConfig, rect: &Rect, margin: f64) -> Vec<(u64, u64)> {
    let m = margin.max(0.0);
    let scan_rect = Rect::new(
        rect.min_x - m,
        rect.min_y - m,
        rect.max_x + m,
        rect.max_y + m,
    );
    let unit = cfg.space.rect_to_unit(&scan_rect);
    // Adaptive cover level: at most a 16×16 cell grid over the region, so
    // enumeration stays bounded while ranges stay tight.
    let mut cover_level = cfg.space.leaf_level;
    while cover_level > 0 {
        let side = (1u64 << cover_level) as f64;
        if (unit.max_x - unit.min_x) * side <= 16.0 && (unit.max_y - unit.min_y) * side <= 16.0 {
            break;
        }
        cover_level -= 1;
    }
    let cells = cover_rect(cfg.space.curve, cover_level, &unit);
    // Merge adjacent cover cells into maximal contiguous leaf ranges.
    let mut ranges: Vec<(u64, u64)> = Vec::new();
    for c in &cells {
        let Some((start, end)) = c.descendant_range(cfg.space.leaf_level) else {
            continue;
        };
        match ranges.last_mut() {
            Some((_, e)) if *e == start => *e = end,
            _ => ranges.push((start, end)),
        }
    }
    ranges
}

/// Headroom each shard gets over its fair share before the balancer
/// starts moving pieces: small imbalances are not worth the extra range
/// fragmentation.
const BALANCE_SLACK: f64 = 0.10;

/// The smallest piece worth shedding or splitting off, in `cost_of`
/// units (the cluster tier prices one average clustering cell at ~1.0):
/// below this, per-range overhead on the receiving shard outweighs the
/// makespan win.
const MIN_PIECE_COST: f64 = 0.5;

/// The largest slice must carry at least this much work before balancing
/// engages at all — a small query stays on its owner, inline.
const MIN_ENGAGE_COST: f64 = 2.0;

/// Balances owner slices across the whole fleet: any shard can scan any
/// range (the store is shared), so a scattered region's client-visible
/// latency — its *slowest* slice — need not be pinned to the largest
/// ownership share. Slices costing more than a shard's fair share are
/// subdivided and the surplus pieces move to the shards with the most
/// headroom (including shards that owned nothing in this query).
///
/// `shares` lists every eligible shard id with its relative capacity (the
/// same weights the weighted rendezvous uses, so a deliberately
/// down-weighted shard is not handed surplus work). `cost_of(start, end)`
/// prices a leaf range; it must be additive over concatenation — the
/// cluster tier prices ranges with the load layer's per-cell rates, so a
/// hot business-center range counts as expensive even when it is short.
///
/// Returns the balanced `(shard id, ranges)` slices (ascending id, exact
/// same leaf-index partition as the input) plus the number of pieces
/// moved off their owner.
pub fn balance_slices(
    slices: OwnerSlices,
    shares: &[(u64, f64)],
    cost_of: impl Fn(u64, u64) -> f64,
) -> (OwnerSlices, usize) {
    if shares.len() <= 1 {
        return (slices, 0);
    }
    let total_share: f64 = shares.iter().map(|&(_, w)| w.max(0.0)).sum();
    let slice_costs: Vec<f64> = slices
        .iter()
        .map(|(_, rs)| rs.iter().map(|&(s, e)| cost_of(s, e)).sum())
        .collect();
    let total_cost: f64 = slice_costs.iter().sum();
    if total_share <= 0.0 || total_cost <= 0.0 {
        return (slices, 0);
    }
    // Engage only when it pays: the largest slice must dominate the fair
    // per-shard share (otherwise the scatter is already level — idle
    // shards count, they are capacity) and carry at least two cells'
    // worth of work (fragmenting a tiny scan across the fleet costs more
    // in per-range overhead than the overlap wins back).
    let max_cost = slice_costs.iter().fold(0.0f64, |a, &b| a.max(b));
    let fair_cost = total_cost / shares.len() as f64;
    if max_cost < (1.0 + 2.0 * BALANCE_SLACK) * fair_cost || max_cost < MIN_ENGAGE_COST {
        return (slices, 0);
    }

    // Per-shard targets and current loads (shards outside `shares` — a
    // snapshot race — keep their slices and take no surplus).
    let mut loads: std::collections::BTreeMap<u64, (f64, f64, Vec<LeafRange>)> = shares
        .iter()
        .map(|&(id, w)| (id, (total_cost * w.max(0.0) / total_share, 0.0, Vec::new())))
        .collect();
    let mut surplus: Vec<(f64, (u64, u64))> = Vec::new();
    let mut kept_extra: OwnerSlices = Vec::new();
    for (owner, ranges) in slices {
        let Some((target, load, kept)) = loads.get_mut(&owner) else {
            kept_extra.push((owner, ranges));
            continue;
        };
        let cap = *target * (1.0 + BALANCE_SLACK);
        // Largest pieces first, so the cheap tail stays put and surplus
        // comes off in few, large, contiguous chunks.
        let mut pieces: Vec<((u64, u64), f64)> =
            ranges.into_iter().map(|r| (r, cost_of(r.0, r.1))).collect();
        pieces.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        for ((start, end), cost) in pieces {
            // Keep pieces that fit, and overflows too small to be worth
            // fragmenting off.
            if *load + cost <= cap || cost <= 0.0 || *load + cost - cap < MIN_PIECE_COST {
                *load += cost;
                kept.push((start, end));
                continue;
            }
            // This piece overflows the shard: keep a prefix that fills up
            // to the cap (split at a leaf boundary by bisection on the
            // additive cost), shed the rest.
            let room = cap - *load;
            let (keep, shed) = split_range_at_cost((start, end), room, &cost_of);
            if let Some(r) = keep {
                *load += cost_of(r.0, r.1);
                kept.push(r);
            }
            if let Some(r) = shed {
                surplus.push((cost_of(r.0, r.1), r));
            }
        }
    }

    // Hand surplus pieces, costliest first, to the shard with the most
    // headroom (LPT greedy); oversized pieces split further so one chunk
    // cannot recreate the imbalance on its new shard. Ascending sort +
    // `pop()` = costliest first.
    surplus.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
    let mut moved = 0usize;
    while let Some((cost, range)) = surplus.pop() {
        // The shard with the most headroom takes the next piece; ties
        // break towards the smaller id for determinism.
        let best_id = *loads
            .iter()
            .max_by(|(ia, (ta, la, _)), (ib, (tb, lb, _))| {
                (ta - la)
                    .partial_cmp(&(tb - lb))
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then_with(|| ib.cmp(ia))
            })
            .map(|(id, _)| id)
            .expect("shares is non-empty");
        let (target, load, kept) = loads.get_mut(&best_id).expect("best shard exists");
        let headroom = (*target - *load).max(0.0);
        if cost > headroom * (1.0 + BALANCE_SLACK)
            && cost > 2.0 * MIN_PIECE_COST
            && range.1 - range.0 > 1
        {
            // Still too big for the idlest shard: halve and retry both.
            let mid = range.0 + (range.1 - range.0) / 2;
            surplus.push((cost_of(range.0, mid), (range.0, mid)));
            surplus.push((cost_of(mid, range.1), (mid, range.1)));
            surplus.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
            continue;
        }
        *load += cost;
        kept.push(range);
        moved += 1;
    }

    let mut out: OwnerSlices = loads
        .into_iter()
        .filter(|(_, (_, _, kept))| !kept.is_empty())
        .map(|(id, (_, _, mut kept))| {
            kept.sort_unstable();
            // Re-merge adjacency so a shard still scans maximal ranges.
            let mut merged: Vec<(u64, u64)> = Vec::with_capacity(kept.len());
            for (s, e) in kept {
                match merged.last_mut() {
                    Some((_, le)) if *le == s => *le = e,
                    _ => merged.push((s, e)),
                }
            }
            (id, merged)
        })
        .collect();
    out.extend(kept_extra);
    out.sort_by_key(|&(id, _)| id);
    (out, moved)
}

/// Splits `range` at a leaf boundary so the left part costs at most
/// `budget` (bisection over the additive `cost_of`). Either part may be
/// empty (`None`): a zero budget sheds the whole range.
fn split_range_at_cost(
    range: LeafRange,
    budget: f64,
    cost_of: &impl Fn(u64, u64) -> f64,
) -> (Option<LeafRange>, Option<LeafRange>) {
    let (start, end) = range;
    if budget <= 0.0 {
        return (None, Some(range));
    }
    let (mut lo, mut hi) = (start, end);
    // Largest cut with cost(start, cut) <= budget.
    while lo < hi {
        let mid = lo + (hi - lo).div_ceil(2);
        if cost_of(start, mid) <= budget {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    let cut = lo;
    let left = (cut > start).then_some((start, cut));
    let right = (cut < end).then_some((cut, end));
    (left, right)
}

/// Scans a pre-planned slice of a region query's leaf ranges: retrieves the
/// leaders in `ranges`, filters by the true `rect`, and (optionally)
/// expands their schools. Returns the raw partial — no sort, no dedup;
/// those happen once, in [`merge_region_partials`].
pub fn region_partial_scan(
    s: &mut Session,
    tables: &MoistTables,
    ranges: &[(u64, u64)],
    rect: &Rect,
    at: Timestamp,
    include_followers: bool,
) -> Result<RegionPartial> {
    let mut stats = RegionStats {
        shards_scattered: 1,
        ..RegionStats::default()
    };
    let cost0 = s.elapsed_us();
    let mut leaders = Vec::new();
    let mut range_costs = Vec::with_capacity(ranges.len());
    for &(start, end) in ranges {
        if end <= start {
            continue;
        }
        let before = s.elapsed_us();
        let entries = tables.spatial_scan_range(s, start, end, None)?;
        range_costs.push(((start, end), s.elapsed_us() - before));
        stats.ranges_scanned += 1;
        stats.leaders_fetched += entries.len();
        leaders.extend(entries);
    }
    let mut hits: Vec<Neighbor> = Vec::new();
    let mut kept: Vec<(crate::tables::SpatialEntry, moist_spatial::Point)> = Vec::new();
    for entry in leaders {
        let pos = entry
            .record
            .loc
            .advance(entry.record.vel, at.secs_since(entry.ts));
        // The planned cover is a superset: filter by the true rectangle.
        if rect.contains(&pos) {
            hits.push(Neighbor {
                oid: entry.oid,
                loc: pos,
                distance: 0.0,
                leader: entry.oid,
            });
            kept.push((entry, pos));
        } else if include_followers {
            // A leader just outside may still have followers inside.
            kept.push((entry, pos));
        }
    }
    if include_followers && !kept.is_empty() {
        let ids: Vec<_> = kept.iter().map(|(e, _)| e.oid).collect();
        let infos = tables.batch_followers(s, &ids)?;
        for ((entry, leader_pos), followers) in kept.iter().zip(infos) {
            for (foid, disp) in followers {
                let pos = leader_pos.translate(disp);
                if rect.contains(&pos) {
                    hits.push(Neighbor {
                        oid: foid,
                        loc: pos,
                        distance: 0.0,
                        leader: entry.oid,
                    });
                }
            }
        }
    }
    stats.cost_us = s.elapsed_us() - cost0;
    Ok(RegionPartial {
        hits,
        stats,
        range_costs,
    })
}

/// Folds partial results into the final region answer: hits are moved (not
/// cloned) into one vector, sorted by object id, and deduplicated exactly
/// once. Scan counters add up; `cost_us` is the *maximum* partial cost,
/// because scattered partials consume store time in parallel — that max is
/// the client-visible latency of the fan-out.
pub fn merge_region_partials(parts: Vec<RegionPartial>) -> (Vec<Neighbor>, RegionStats) {
    let mut stats = RegionStats::default();
    let total: usize = parts.iter().map(|p| p.hits.len()).sum();
    let mut out: Vec<Neighbor> = Vec::with_capacity(total);
    for part in parts {
        stats.ranges_scanned += part.stats.ranges_scanned;
        stats.leaders_fetched += part.stats.leaders_fetched;
        stats.shards_scattered += part.stats.shards_scattered;
        stats.cost_us = stats.cost_us.max(part.stats.cost_us);
        out.extend(part.hits);
    }
    out.sort_by_key(|n| n.oid);
    out.dedup_by_key(|n| n.oid);
    (out, stats)
}

/// Returns every object inside the world-coordinate `rect` at time `at`
/// (leaders extrapolated linearly; followers at leader + displacement when
/// `include_followers`).
///
/// `margin` enlarges the *scanned* window (not the returned filter): the
/// Spatial Index Table stores last-reported positions, so an object indexed
/// just outside the rect may have moved inside since, and a school leader
/// outside may carry followers displaced inside. Choose
/// `margin ≥ v_max · max-staleness + school radius` for exact results —
/// the same enlargement rule the Bx-tree applies to its windows.
pub fn region_query(
    s: &mut Session,
    tables: &MoistTables,
    cfg: &MoistConfig,
    rect: &Rect,
    at: Timestamp,
    include_followers: bool,
    margin: f64,
) -> Result<(Vec<Neighbor>, RegionStats)> {
    let ranges = plan_region_ranges(cfg, rect, margin);
    let part = region_partial_scan(s, tables, &ranges, rect, at, include_followers)?;
    Ok(merge_region_partials(vec![part]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::LfRecord;
    use crate::ids::ObjectId;
    use crate::update::{apply_update, UpdateMessage};
    use moist_bigtable::{Bigtable, CostProfile};
    use moist_spatial::{Displacement, Point, Velocity};
    use std::sync::Arc;

    fn setup() -> (Arc<Bigtable>, MoistTables, Session, MoistConfig) {
        let store = Bigtable::new();
        let cfg = MoistConfig::default();
        let tables = MoistTables::create(&store, &cfg).unwrap();
        let session = store.session_with(CostProfile::free());
        (store, tables, session, cfg)
    }

    fn put(s: &mut Session, t: &MoistTables, cfg: &MoistConfig, oid: u64, x: f64, y: f64) {
        apply_update(
            s,
            t,
            cfg,
            &UpdateMessage {
                oid: ObjectId(oid),
                loc: Point::new(x, y),
                vel: Velocity::ZERO,
                ts: Timestamp::from_secs(1),
            },
        )
        .unwrap();
    }

    #[test]
    fn matches_brute_force_on_a_grid() {
        let (_st, t, mut s, cfg) = setup();
        for i in 0..100u64 {
            put(
                &mut s,
                &t,
                &cfg,
                i,
                (i % 10) as f64 * 100.0 + 5.0,
                (i / 10) as f64 * 100.0 + 5.0,
            );
        }
        let rect = Rect::new(150.0, 150.0, 450.0, 350.0);
        let (hits, stats) =
            region_query(&mut s, &t, &cfg, &rect, Timestamp::from_secs(1), true, 0.0).unwrap();
        // Brute force: x ∈ {205, 305, 405}, y ∈ {205, 305}: 6 objects.
        assert_eq!(hits.len(), 6);
        for h in &hits {
            assert!(rect.contains(&h.loc));
        }
        assert!(stats.ranges_scanned >= 1);
        assert!(stats.leaders_fetched >= 6);
    }

    #[test]
    fn extrapolates_moving_leaders() {
        let (_st, t, mut s, cfg) = setup();
        apply_update(
            &mut s,
            &t,
            &cfg,
            &UpdateMessage {
                oid: ObjectId(1),
                loc: Point::new(100.0, 500.0),
                vel: Velocity::new(10.0, 0.0),
                ts: Timestamp::from_secs(0),
            },
        )
        .unwrap();
        // At t=20 the object should be around x=300.
        let rect = Rect::new(290.0, 490.0, 310.0, 510.0);
        // Margin must cover v·staleness = 10 u/s × 20 s = 200 units.
        let (hits, _) = region_query(
            &mut s,
            &t,
            &cfg,
            &rect,
            Timestamp::from_secs(20),
            true,
            200.0,
        )
        .unwrap();
        assert_eq!(hits.len(), 1);
        // And not at its stale location (even with the generous margin).
        let stale = Rect::new(90.0, 490.0, 110.0, 510.0);
        let (hits, _) = region_query(
            &mut s,
            &t,
            &cfg,
            &stale,
            Timestamp::from_secs(20),
            true,
            200.0,
        )
        .unwrap();
        assert!(hits.is_empty());
    }

    #[test]
    fn followers_of_outside_leaders_are_found() {
        let (_st, t, mut s, cfg) = setup();
        // Leader outside the query rect; follower displaced inside it.
        put(&mut s, &t, &cfg, 1, 100.0, 100.0);
        let d = Displacement::new(200.0, 0.0); // follower at (300, 100)
        t.set_lf(
            &mut s,
            ObjectId(2),
            &LfRecord::Follower {
                leader: ObjectId(1),
                displacement: d,
                since_us: 0,
            },
            Timestamp::from_secs(1),
        )
        .unwrap();
        t.add_follower(&mut s, ObjectId(1), ObjectId(2), d, Timestamp::from_secs(1))
            .unwrap();
        let rect = Rect::new(250.0, 50.0, 350.0, 150.0);
        // Margin must cover the school's displacement span (200 units).
        let (hits, _) = region_query(
            &mut s,
            &t,
            &cfg,
            &rect,
            Timestamp::from_secs(1),
            true,
            200.0,
        )
        .unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].oid, ObjectId(2));
        assert_eq!(hits[0].leader, ObjectId(1));
        // Leaders-only mode misses it.
        let (hits, _) = region_query(
            &mut s,
            &t,
            &cfg,
            &rect,
            Timestamp::from_secs(1),
            false,
            200.0,
        )
        .unwrap();
        assert!(hits.is_empty());
    }

    #[test]
    fn empty_region_is_cheap_and_empty() {
        let (_st, t, mut s, cfg) = setup();
        put(&mut s, &t, &cfg, 1, 900.0, 900.0);
        let rect = Rect::new(0.0, 0.0, 50.0, 50.0);
        let (hits, stats) =
            region_query(&mut s, &t, &cfg, &rect, Timestamp::from_secs(1), true, 0.0).unwrap();
        assert!(hits.is_empty());
        assert_eq!(stats.leaders_fetched, 0);
    }

    /// Flattens balanced slices back into a sorted leaf-range list.
    fn flatten(slices: &[(u64, Vec<(u64, u64)>)]) -> Vec<(u64, u64)> {
        let mut flat: Vec<(u64, u64)> = slices
            .iter()
            .flat_map(|(_, rs)| rs.iter().copied())
            .collect();
        flat.sort_unstable();
        flat
    }

    fn span_cost(s: u64, e: u64) -> f64 {
        (e - s) as f64
    }

    #[test]
    fn balance_subdivides_the_dominant_slice_across_idle_shards() {
        // Shard 1 owns 80 cost units, shard 2 owns 10, shards 3 and 4 own
        // nothing — the client-visible makespan is 80 without balancing.
        let slices = vec![(1u64, vec![(0u64, 80u64)]), (2, vec![(100, 110)])];
        let shares = vec![(1u64, 1.0), (2, 1.0), (3, 1.0), (4, 1.0)];
        let (balanced, moved) = balance_slices(slices, &shares, span_cost);
        assert!(moved > 0, "the 80-cost slice must shed work");
        // Exact partition is preserved.
        let flat = flatten(&balanced);
        let total: u64 = flat.iter().map(|(s, e)| e - s).sum();
        assert_eq!(total, 90);
        for pair in flat.windows(2) {
            assert!(pair[0].1 <= pair[1].0, "overlap: {pair:?}");
        }
        // The makespan drops towards the mean (90/4 = 22.5, +slack).
        let max_load: f64 = balanced
            .iter()
            .map(|(_, rs)| rs.iter().map(|&(s, e)| span_cost(s, e)).sum::<f64>())
            .fold(0.0, f64::max);
        assert!(
            max_load <= 90.0 / 4.0 * 1.35,
            "makespan {max_load} still dominated by one shard"
        );
        // Previously idle shards now carry work.
        let active = balanced.iter().filter(|(_, rs)| !rs.is_empty()).count();
        assert!(
            active >= 3,
            "idle shards must pick up surplus: {balanced:?}"
        );
    }

    #[test]
    fn balance_leaves_level_or_tiny_scatters_alone() {
        // Already level: nothing moves.
        let level = vec![(1u64, vec![(0u64, 10u64)]), (2, vec![(10, 20)])];
        let shares = vec![(1u64, 1.0), (2, 1.0)];
        let (out, moved) = balance_slices(level.clone(), &shares, span_cost);
        assert_eq!(moved, 0);
        assert_eq!(out, level);
        // A tiny single-owner query is not worth fragmenting.
        let tiny = vec![(1u64, vec![(0u64, 1u64)])];
        let shares = vec![(1u64, 1.0), (2, 1.0), (3, 1.0)];
        let (out, moved) = balance_slices(tiny.clone(), &shares, |s, e| (e - s) as f64);
        assert_eq!(moved, 0);
        assert_eq!(out, tiny);
        // Single-shard fleets trivially keep their slices.
        let one = vec![(7u64, vec![(0u64, 50u64)])];
        let (out, moved) = balance_slices(one.clone(), &[(7, 1.0)], span_cost);
        assert_eq!(moved, 0);
        assert_eq!(out, one);
    }

    #[test]
    fn balance_respects_weighted_capacity_shares() {
        // Shard 2 is down-weighted (placement decided it is overloaded):
        // the balancer must hand it less surplus than the others.
        let slices = vec![(1u64, vec![(0u64, 100u64)])];
        let shares = vec![(1u64, 1.0), (2, 0.125), (3, 1.0)];
        let (balanced, moved) = balance_slices(slices, &shares, span_cost);
        assert!(moved > 0);
        let load_of = |id: u64| -> f64 {
            balanced
                .iter()
                .find(|(i, _)| *i == id)
                .map(|(_, rs)| rs.iter().map(|&(s, e)| span_cost(s, e)).sum())
                .unwrap_or(0.0)
        };
        assert!(
            load_of(2) < load_of(3) / 2.0,
            "down-weighted shard got {} vs {}",
            load_of(2),
            load_of(3)
        );
        let total: f64 = [1, 2, 3].iter().map(|&id| load_of(id)).sum();
        assert!((total - 100.0).abs() < 1e-9, "work must be conserved");
    }

    #[test]
    fn balance_assigns_surplus_costliest_first() {
        // Surplus shape [5,1,1,1,1,1] over two idle shards of capacity 5:
        // the LPT greedy (costliest first) reaches the optimal makespan 5;
        // cheapest-first fills both shards with the 1s and then has to dump
        // the indivisible 5-cost piece on top of one of them (makespan 7).
        let cost =
            |s: u64, e: u64| -> f64 { (s..e).map(|l| if l == 100 { 5.0 } else { 1.0 }).sum() };
        let slices = vec![(
            1u64,
            vec![(100u64, 101u64), (0, 1), (1, 2), (2, 3), (3, 4), (4, 5)],
        )];
        // Shard 1 is capacity-zero (drained), so every piece becomes
        // surplus for the two idle shards.
        let shares = vec![(1u64, 0.0), (2, 1.0), (3, 1.0)];
        let (balanced, moved) = balance_slices(slices, &shares, cost);
        assert_eq!(moved, 6, "every piece must move off the drained shard");
        let max_load: f64 = balanced
            .iter()
            .map(|(_, rs)| rs.iter().map(|&(s, e)| cost(s, e)).sum::<f64>())
            .fold(0.0, f64::max);
        assert!(
            max_load <= 5.5,
            "costliest-first must reach the optimal makespan 5, got {max_load}: {balanced:?}"
        );
        let total: f64 = balanced
            .iter()
            .flat_map(|(_, rs)| rs.iter())
            .map(|&(s, e)| cost(s, e))
            .sum();
        assert!((total - 10.0).abs() < 1e-9, "work must be conserved");
    }

    #[test]
    fn balance_prices_slices_by_density_not_just_span() {
        // Two equal-span slices, but shard 1's range is 9x denser: the
        // balancer must shed from the *hot* slice even though spans match.
        let density =
            |s: u64, e: u64| -> f64 { (s..e).map(|leaf| if leaf < 10 { 9.0 } else { 1.0 }).sum() };
        let slices = vec![(1u64, vec![(0u64, 10u64)]), (2, vec![(10, 20)])];
        let shares = vec![(1u64, 1.0), (2, 1.0), (3, 1.0)];
        let (balanced, moved) = balance_slices(slices, &shares, density);
        assert!(moved > 0, "the dense slice must shed");
        let hot_kept: f64 = balanced
            .iter()
            .find(|(id, _)| *id == 1)
            .map(|(_, rs)| rs.iter().map(|&(s, e)| density(s, e)).sum())
            .unwrap_or(0.0);
        assert!(
            hot_kept <= 100.0 / 3.0 * 1.35,
            "shard 1 still holds {hot_kept} of 100 cost"
        );
        let total: f64 = balanced
            .iter()
            .flat_map(|(_, rs)| rs.iter())
            .map(|&(s, e)| density(s, e))
            .sum();
        assert!((total - 100.0).abs() < 1e-9);
    }

    #[test]
    fn whole_map_region_returns_everything_once() {
        let (_st, t, mut s, cfg) = setup();
        for i in 0..50u64 {
            put(
                &mut s,
                &t,
                &cfg,
                i,
                (i * 19 % 1000) as f64,
                (i * 37 % 1000) as f64,
            );
        }
        let (hits, _) = region_query(
            &mut s,
            &t,
            &cfg,
            &cfg.space.world,
            Timestamp::from_secs(1),
            true,
            0.0,
        )
        .unwrap();
        assert_eq!(hits.len(), 50);
        let mut ids: Vec<u64> = hits.iter().map(|h| h.oid.0).collect();
        ids.dedup();
        assert_eq!(ids.len(), 50);
    }
}
