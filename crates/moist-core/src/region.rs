//! Region queries: all objects inside a rectangle.
//!
//! §3.2.1: "An arbitrary region can be approximated by a collection of
//! cells" and "any query for … objects on 2-D space can be transformed to a
//! combination of queries on the 1-D key space for which BigTable provides
//! parallelism to read data from multiple ranges." We cover the region with
//! cells at an adaptive level, merge adjacent cells into maximal contiguous
//! key ranges (one scan RPC each), and expand schools like NN search does.
//!
//! The query is split into three separable stages so a cluster tier can
//! scatter it across shards ([`crate::cluster_tier::MoistCluster::region`]):
//!
//! 1. [`plan_region_ranges`] — pure planning: the merged contiguous
//!    leaf-index ranges covering the margin-enlarged window;
//! 2. [`region_partial_scan`] — scan any subset of those ranges and expand
//!    schools, returning a mergeable [`RegionPartial`] (no sort, no dedup);
//! 3. [`merge_region_partials`] — fold partials *by move* into the final
//!    answer, deduplicating each object exactly once at the merge.
//!
//! [`region_query`] runs all three on one session — the single-server path.

use crate::config::MoistConfig;
use crate::error::Result;
use crate::nn::Neighbor;
use crate::tables::MoistTables;
use moist_bigtable::{Session, Timestamp};
use moist_spatial::{cover_rect, Rect};

/// Statistics of one region query.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RegionStats {
    /// Contiguous key ranges scanned (one RPC each).
    pub ranges_scanned: usize,
    /// Leader rows retrieved.
    pub leaders_fetched: usize,
    /// Shards that contributed partial scans (1 for single-server runs).
    pub shards_scattered: usize,
    /// Client-visible virtual µs. Partials scanned in parallel overlap, so
    /// a merged query reports the *slowest* partial, not the sum.
    pub cost_us: f64,
}

/// One shard's share of a (possibly scattered) region query: raw hits plus
/// that scan's counters. Hits are unordered and may contain duplicates
/// across partials — a clustering merge on one shard can race an object's
/// own cross-cell move on another, so the same object can surface both as
/// a spatial entry in one partial and inside a school expansion in another.
/// Deduplication happens exactly once, in [`merge_region_partials`].
#[derive(Debug, Default)]
pub struct RegionPartial {
    /// Raw hits (objects inside the query rectangle), unsorted, undeduped.
    pub hits: Vec<Neighbor>,
    /// This partial's own scan counters and virtual cost.
    pub stats: RegionStats,
}

/// Plans a region query: the maximal contiguous leaf-index ranges covering
/// the `margin`-enlarged window around `rect`, in curve order.
///
/// Pure computation — no store access, no cost charged — so a cluster tier
/// can plan once, slice the ranges by shard owner, and hand each shard its
/// slice without any shard re-planning.
pub fn plan_region_ranges(cfg: &MoistConfig, rect: &Rect, margin: f64) -> Vec<(u64, u64)> {
    let m = margin.max(0.0);
    let scan_rect = Rect::new(
        rect.min_x - m,
        rect.min_y - m,
        rect.max_x + m,
        rect.max_y + m,
    );
    let unit = cfg.space.rect_to_unit(&scan_rect);
    // Adaptive cover level: at most a 16×16 cell grid over the region, so
    // enumeration stays bounded while ranges stay tight.
    let mut cover_level = cfg.space.leaf_level;
    while cover_level > 0 {
        let side = (1u64 << cover_level) as f64;
        if (unit.max_x - unit.min_x) * side <= 16.0 && (unit.max_y - unit.min_y) * side <= 16.0 {
            break;
        }
        cover_level -= 1;
    }
    let cells = cover_rect(cfg.space.curve, cover_level, &unit);
    // Merge adjacent cover cells into maximal contiguous leaf ranges.
    let mut ranges: Vec<(u64, u64)> = Vec::new();
    for c in &cells {
        let Some((start, end)) = c.descendant_range(cfg.space.leaf_level) else {
            continue;
        };
        match ranges.last_mut() {
            Some((_, e)) if *e == start => *e = end,
            _ => ranges.push((start, end)),
        }
    }
    ranges
}

/// Scans a pre-planned slice of a region query's leaf ranges: retrieves the
/// leaders in `ranges`, filters by the true `rect`, and (optionally)
/// expands their schools. Returns the raw partial — no sort, no dedup;
/// those happen once, in [`merge_region_partials`].
pub fn region_partial_scan(
    s: &mut Session,
    tables: &MoistTables,
    ranges: &[(u64, u64)],
    rect: &Rect,
    at: Timestamp,
    include_followers: bool,
) -> Result<RegionPartial> {
    let mut stats = RegionStats {
        shards_scattered: 1,
        ..RegionStats::default()
    };
    let cost0 = s.elapsed_us();
    let mut leaders = Vec::new();
    for &(start, end) in ranges {
        if end <= start {
            continue;
        }
        let entries = tables.spatial_scan_range(s, start, end, None)?;
        stats.ranges_scanned += 1;
        stats.leaders_fetched += entries.len();
        leaders.extend(entries);
    }
    let mut hits: Vec<Neighbor> = Vec::new();
    let mut kept: Vec<(crate::tables::SpatialEntry, moist_spatial::Point)> = Vec::new();
    for entry in leaders {
        let pos = entry
            .record
            .loc
            .advance(entry.record.vel, at.secs_since(entry.ts));
        // The planned cover is a superset: filter by the true rectangle.
        if rect.contains(&pos) {
            hits.push(Neighbor {
                oid: entry.oid,
                loc: pos,
                distance: 0.0,
                leader: entry.oid,
            });
            kept.push((entry, pos));
        } else if include_followers {
            // A leader just outside may still have followers inside.
            kept.push((entry, pos));
        }
    }
    if include_followers && !kept.is_empty() {
        let ids: Vec<_> = kept.iter().map(|(e, _)| e.oid).collect();
        let infos = tables.batch_followers(s, &ids)?;
        for ((entry, leader_pos), followers) in kept.iter().zip(infos) {
            for (foid, disp) in followers {
                let pos = leader_pos.translate(disp);
                if rect.contains(&pos) {
                    hits.push(Neighbor {
                        oid: foid,
                        loc: pos,
                        distance: 0.0,
                        leader: entry.oid,
                    });
                }
            }
        }
    }
    stats.cost_us = s.elapsed_us() - cost0;
    Ok(RegionPartial { hits, stats })
}

/// Folds partial results into the final region answer: hits are moved (not
/// cloned) into one vector, sorted by object id, and deduplicated exactly
/// once. Scan counters add up; `cost_us` is the *maximum* partial cost,
/// because scattered partials consume store time in parallel — that max is
/// the client-visible latency of the fan-out.
pub fn merge_region_partials(parts: Vec<RegionPartial>) -> (Vec<Neighbor>, RegionStats) {
    let mut stats = RegionStats::default();
    let total: usize = parts.iter().map(|p| p.hits.len()).sum();
    let mut out: Vec<Neighbor> = Vec::with_capacity(total);
    for part in parts {
        stats.ranges_scanned += part.stats.ranges_scanned;
        stats.leaders_fetched += part.stats.leaders_fetched;
        stats.shards_scattered += part.stats.shards_scattered;
        stats.cost_us = stats.cost_us.max(part.stats.cost_us);
        out.extend(part.hits);
    }
    out.sort_by_key(|n| n.oid);
    out.dedup_by_key(|n| n.oid);
    (out, stats)
}

/// Returns every object inside the world-coordinate `rect` at time `at`
/// (leaders extrapolated linearly; followers at leader + displacement when
/// `include_followers`).
///
/// `margin` enlarges the *scanned* window (not the returned filter): the
/// Spatial Index Table stores last-reported positions, so an object indexed
/// just outside the rect may have moved inside since, and a school leader
/// outside may carry followers displaced inside. Choose
/// `margin ≥ v_max · max-staleness + school radius` for exact results —
/// the same enlargement rule the Bx-tree applies to its windows.
pub fn region_query(
    s: &mut Session,
    tables: &MoistTables,
    cfg: &MoistConfig,
    rect: &Rect,
    at: Timestamp,
    include_followers: bool,
    margin: f64,
) -> Result<(Vec<Neighbor>, RegionStats)> {
    let ranges = plan_region_ranges(cfg, rect, margin);
    let part = region_partial_scan(s, tables, &ranges, rect, at, include_followers)?;
    Ok(merge_region_partials(vec![part]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::LfRecord;
    use crate::ids::ObjectId;
    use crate::update::{apply_update, UpdateMessage};
    use moist_bigtable::{Bigtable, CostProfile};
    use moist_spatial::{Displacement, Point, Velocity};
    use std::sync::Arc;

    fn setup() -> (Arc<Bigtable>, MoistTables, Session, MoistConfig) {
        let store = Bigtable::new();
        let cfg = MoistConfig::default();
        let tables = MoistTables::create(&store, &cfg).unwrap();
        let session = store.session_with(CostProfile::free());
        (store, tables, session, cfg)
    }

    fn put(s: &mut Session, t: &MoistTables, cfg: &MoistConfig, oid: u64, x: f64, y: f64) {
        apply_update(
            s,
            t,
            cfg,
            &UpdateMessage {
                oid: ObjectId(oid),
                loc: Point::new(x, y),
                vel: Velocity::ZERO,
                ts: Timestamp::from_secs(1),
            },
        )
        .unwrap();
    }

    #[test]
    fn matches_brute_force_on_a_grid() {
        let (_st, t, mut s, cfg) = setup();
        for i in 0..100u64 {
            put(
                &mut s,
                &t,
                &cfg,
                i,
                (i % 10) as f64 * 100.0 + 5.0,
                (i / 10) as f64 * 100.0 + 5.0,
            );
        }
        let rect = Rect::new(150.0, 150.0, 450.0, 350.0);
        let (hits, stats) =
            region_query(&mut s, &t, &cfg, &rect, Timestamp::from_secs(1), true, 0.0).unwrap();
        // Brute force: x ∈ {205, 305, 405}, y ∈ {205, 305}: 6 objects.
        assert_eq!(hits.len(), 6);
        for h in &hits {
            assert!(rect.contains(&h.loc));
        }
        assert!(stats.ranges_scanned >= 1);
        assert!(stats.leaders_fetched >= 6);
    }

    #[test]
    fn extrapolates_moving_leaders() {
        let (_st, t, mut s, cfg) = setup();
        apply_update(
            &mut s,
            &t,
            &cfg,
            &UpdateMessage {
                oid: ObjectId(1),
                loc: Point::new(100.0, 500.0),
                vel: Velocity::new(10.0, 0.0),
                ts: Timestamp::from_secs(0),
            },
        )
        .unwrap();
        // At t=20 the object should be around x=300.
        let rect = Rect::new(290.0, 490.0, 310.0, 510.0);
        // Margin must cover v·staleness = 10 u/s × 20 s = 200 units.
        let (hits, _) = region_query(
            &mut s,
            &t,
            &cfg,
            &rect,
            Timestamp::from_secs(20),
            true,
            200.0,
        )
        .unwrap();
        assert_eq!(hits.len(), 1);
        // And not at its stale location (even with the generous margin).
        let stale = Rect::new(90.0, 490.0, 110.0, 510.0);
        let (hits, _) = region_query(
            &mut s,
            &t,
            &cfg,
            &stale,
            Timestamp::from_secs(20),
            true,
            200.0,
        )
        .unwrap();
        assert!(hits.is_empty());
    }

    #[test]
    fn followers_of_outside_leaders_are_found() {
        let (_st, t, mut s, cfg) = setup();
        // Leader outside the query rect; follower displaced inside it.
        put(&mut s, &t, &cfg, 1, 100.0, 100.0);
        let d = Displacement::new(200.0, 0.0); // follower at (300, 100)
        t.set_lf(
            &mut s,
            ObjectId(2),
            &LfRecord::Follower {
                leader: ObjectId(1),
                displacement: d,
                since_us: 0,
            },
            Timestamp::from_secs(1),
        )
        .unwrap();
        t.add_follower(&mut s, ObjectId(1), ObjectId(2), d, Timestamp::from_secs(1))
            .unwrap();
        let rect = Rect::new(250.0, 50.0, 350.0, 150.0);
        // Margin must cover the school's displacement span (200 units).
        let (hits, _) = region_query(
            &mut s,
            &t,
            &cfg,
            &rect,
            Timestamp::from_secs(1),
            true,
            200.0,
        )
        .unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].oid, ObjectId(2));
        assert_eq!(hits[0].leader, ObjectId(1));
        // Leaders-only mode misses it.
        let (hits, _) = region_query(
            &mut s,
            &t,
            &cfg,
            &rect,
            Timestamp::from_secs(1),
            false,
            200.0,
        )
        .unwrap();
        assert!(hits.is_empty());
    }

    #[test]
    fn empty_region_is_cheap_and_empty() {
        let (_st, t, mut s, cfg) = setup();
        put(&mut s, &t, &cfg, 1, 900.0, 900.0);
        let rect = Rect::new(0.0, 0.0, 50.0, 50.0);
        let (hits, stats) =
            region_query(&mut s, &t, &cfg, &rect, Timestamp::from_secs(1), true, 0.0).unwrap();
        assert!(hits.is_empty());
        assert_eq!(stats.leaders_fetched, 0);
    }

    #[test]
    fn whole_map_region_returns_everything_once() {
        let (_st, t, mut s, cfg) = setup();
        for i in 0..50u64 {
            put(
                &mut s,
                &t,
                &cfg,
                i,
                (i * 19 % 1000) as f64,
                (i * 37 % 1000) as f64,
            );
        }
        let (hits, _) = region_query(
            &mut s,
            &t,
            &cfg,
            &cfg.space.world,
            Timestamp::from_secs(1),
            true,
            0.0,
        )
        .unwrap();
        assert_eq!(hits.len(), 50);
        let mut ids: Vec<u64> = hits.iter().map(|h| h.oid.0).collect();
        ids.dedup();
        assert_eq!(ids.len(), 50);
    }
}
