//! Object identifiers.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A moving object's identifier (the paper's OID).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct ObjectId(pub u64);

impl ObjectId {
    /// The raw id value.
    #[inline]
    pub fn raw(&self) -> u64 {
        self.0
    }
}

impl fmt::Debug for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "oid:{}", self.0)
    }
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u64> for ObjectId {
    fn from(v: u64) -> Self {
        ObjectId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_ordering() {
        assert_eq!(ObjectId(7).to_string(), "7");
        assert!(ObjectId(1) < ObjectId(2));
        assert_eq!(format!("{:?}", ObjectId(3)), "oid:3");
    }
}
