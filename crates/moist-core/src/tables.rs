//! Typed wrappers around the three MOIST tables (§3.1).
//!
//! * **Location Table** — keyed by OID; one in-memory column of recent
//!   timestamped location records plus a disk column for aged records.
//! * **Spatial Index Table** — keyed by `leaf-cell-index ∥ OID`; one row per
//!   *leader*, valued with its latest location record. Composite keys make a
//!   cell a contiguous row range, so NN search and clustering read whole
//!   cells with one batch scan (§3.4.1).
//! * **Affiliation Table** — keyed by OID; the `L/F` column family holds the
//!   object's leader/follower record, the `Follower Info` family holds, on
//!   leader rows, one column per follower valued with the displacement
//!   `leader → follower`.
//!
//! One deliberate deviation from Figure 2: the paper stores Follower Info as
//! a single concatenated value; we store one column per follower in the same
//! row. Row-level atomicity and read cost are identical (BigTable returns
//! the whole row either way), but membership changes touch one column
//! instead of rewriting the concatenation.

use crate::codec::{
    decode_displacement, encode_displacement, follower_qualifier, parse_follower_qualifier,
    LfRecord, LocationRecord,
};
use crate::config::{table_names, MoistConfig};
use crate::error::{MoistError, Result};
use crate::ids::ObjectId;
use moist_bigtable::{
    Bigtable, ColumnFamily, Mutation, ReadOptions, RowKey, RowMutation, ScanRange, Session, Table,
    TableSchema, Timestamp,
};
use moist_spatial::{CellId, Displacement};
use std::sync::Arc;

/// Column family / qualifier names.
mod cols {
    /// Location Table: in-memory location-signal family.
    pub const LOC_MEM: &str = "loc";
    /// Location Table: disk family for aged records.
    pub const LOC_DISK: &str = "loc_disk";
    /// Location Table: record qualifier.
    pub const LOC_Q: &str = "r";
    /// Spatial Index Table: id family.
    pub const SPATIAL: &str = "id";
    /// Spatial Index Table: record qualifier.
    pub const SPATIAL_Q: &str = "r";
    /// Affiliation Table: in-memory L/F family.
    pub const LF_MEM: &str = "lf";
    /// Affiliation Table: disk L/F family (aged records).
    pub const LF_DISK: &str = "lf_disk";
    /// Affiliation Table: L/F qualifier.
    pub const LF_Q: &str = "lf";
    /// Affiliation Table: Follower Info family.
    pub const FOLLOWERS: &str = "followers";
}

/// Handles to the three tables.
#[derive(Clone)]
pub struct MoistTables {
    /// The Location Table.
    pub location: Arc<Table>,
    /// The Spatial Index Table.
    pub spatial: Arc<Table>,
    /// The Affiliation Table.
    pub affiliation: Arc<Table>,
}

impl MoistTables {
    /// Creates the three tables in `store` (errors if any already exists).
    pub fn create(store: &Arc<Bigtable>, cfg: &MoistConfig) -> Result<Self> {
        cfg.validate()?;
        let location = store.create_table(TableSchema::new(
            table_names::LOCATION,
            vec![
                ColumnFamily::in_memory(cols::LOC_MEM, cfg.memory_records_per_object.max(1)),
                ColumnFamily::on_disk(cols::LOC_DISK, usize::MAX),
            ],
        )?)?;
        let spatial = store.create_table(TableSchema::new(
            table_names::SPATIAL_INDEX,
            vec![ColumnFamily::in_memory(cols::SPATIAL, 1)],
        )?)?;
        let affiliation = store.create_table(TableSchema::new(
            table_names::AFFILIATION,
            vec![
                ColumnFamily::in_memory(cols::LF_MEM, 1),
                ColumnFamily::on_disk(cols::LF_DISK, usize::MAX),
                ColumnFamily::in_memory(cols::FOLLOWERS, 1),
            ],
        )?)?;
        Ok(MoistTables {
            location,
            spatial,
            affiliation,
        })
    }

    /// Opens tables previously created by [`MoistTables::create`].
    pub fn open(store: &Arc<Bigtable>) -> Result<Self> {
        Ok(MoistTables {
            location: store.open_table(table_names::LOCATION)?,
            spatial: store.open_table(table_names::SPATIAL_INDEX)?,
            affiliation: store.open_table(table_names::AFFILIATION)?,
        })
    }

    // ---------- Location Table ----------

    /// Appends a timestamped location record for `oid`.
    pub fn put_location(
        &self,
        s: &mut Session,
        oid: ObjectId,
        rec: &LocationRecord,
        ts: Timestamp,
    ) -> Result<()> {
        s.mutate_row(
            &self.location,
            &RowKey::from_u64(oid.0),
            &[Mutation::put(
                cols::LOC_MEM,
                cols::LOC_Q,
                ts,
                rec.encode().to_vec(),
            )],
        )?;
        Ok(())
    }

    /// Latest location record of `oid` with its timestamp.
    pub fn latest_location(
        &self,
        s: &mut Session,
        oid: ObjectId,
    ) -> Result<Option<(Timestamp, LocationRecord)>> {
        match s.get_latest(
            &self.location,
            &RowKey::from_u64(oid.0),
            cols::LOC_MEM,
            cols::LOC_Q,
        )? {
            None => Ok(None),
            Some(cell) => Ok(Some((cell.ts, LocationRecord::decode(&cell.value)?))),
        }
    }

    /// All in-memory location records of `oid`, newest first.
    pub fn location_history(
        &self,
        s: &mut Session,
        oid: ObjectId,
    ) -> Result<Vec<(Timestamp, LocationRecord)>> {
        let row = s.get_row(
            &self.location,
            &RowKey::from_u64(oid.0),
            &ReadOptions {
                families: Some(vec![cols::LOC_MEM.into()]),
                latest_only: false,
            },
        )?;
        let mut out = Vec::new();
        if let Some(row) = row {
            for entry in row.family(cols::LOC_MEM) {
                for cell in &entry.cells {
                    out.push((cell.ts, LocationRecord::decode(&cell.value)?));
                }
            }
        }
        out.sort_by_key(|&(ts, _)| std::cmp::Reverse(ts));
        Ok(out)
    }

    /// Batch-fetches the latest location records of many objects.
    pub fn batch_latest_locations(
        &self,
        s: &mut Session,
        oids: &[ObjectId],
    ) -> Result<Vec<Option<(Timestamp, LocationRecord)>>> {
        let keys: Vec<RowKey> = oids.iter().map(|o| RowKey::from_u64(o.0)).collect();
        let rows = s.batch_get(
            &self.location,
            &keys,
            &ReadOptions::latest_in(cols::LOC_MEM),
        )?;
        rows.into_iter()
            .map(|row| match row {
                None => Ok(None),
                Some(r) => match r.latest(cols::LOC_MEM, cols::LOC_Q) {
                    None => Ok(None),
                    Some(cell) => Ok(Some((cell.ts, LocationRecord::decode(&cell.value)?))),
                },
            })
            .collect()
    }

    /// Moves location records older than `cutoff` to the disk column
    /// (aged-data treatment, §3.1.2).
    pub fn age_locations(&self, cutoff: Timestamp) -> Result<usize> {
        Ok(self
            .location
            .age_transfer(cols::LOC_MEM, cols::LOC_DISK, cutoff)?)
    }

    // ---------- Spatial Index Table ----------

    fn spatial_key(leaf_index: u64, oid: ObjectId) -> RowKey {
        RowKey::composite(leaf_index, oid.0)
    }

    /// Inserts (or refreshes) a leader's entry under `leaf_index`.
    pub fn spatial_insert(
        &self,
        s: &mut Session,
        leaf_index: u64,
        oid: ObjectId,
        rec: &LocationRecord,
        ts: Timestamp,
    ) -> Result<()> {
        s.mutate_row(
            &self.spatial,
            &Self::spatial_key(leaf_index, oid),
            &[Mutation::put(
                cols::SPATIAL,
                cols::SPATIAL_Q,
                ts,
                rec.encode().to_vec(),
            )],
        )?;
        Ok(())
    }

    /// Removes a leader's entry from `leaf_index`.
    pub fn spatial_remove(&self, s: &mut Session, leaf_index: u64, oid: ObjectId) -> Result<()> {
        s.mutate_row(
            &self.spatial,
            &Self::spatial_key(leaf_index, oid),
            &[Mutation::DeleteRow],
        )?;
        Ok(())
    }

    /// Moves a leader's entry between cells in one batch RPC (delete old row
    /// + put new row — Algorithm 1, line 3).
    pub fn spatial_move(
        &self,
        s: &mut Session,
        old_leaf: u64,
        new_leaf: u64,
        oid: ObjectId,
        rec: &LocationRecord,
        ts: Timestamp,
    ) -> Result<()> {
        let put = RowMutation::new(
            Self::spatial_key(new_leaf, oid),
            vec![Mutation::put(
                cols::SPATIAL,
                cols::SPATIAL_Q,
                ts,
                rec.encode().to_vec(),
            )],
        );
        if old_leaf == new_leaf {
            s.mutate_rows(&self.spatial, &[put])?;
        } else {
            let del = RowMutation::new(Self::spatial_key(old_leaf, oid), vec![Mutation::DeleteRow]);
            s.mutate_rows(&self.spatial, &[del, put])?;
        }
        Ok(())
    }

    /// All leaders inside `cell` (any level): one contiguous range scan over
    /// the cell's descendant leaf range.
    pub fn spatial_scan_cell(
        &self,
        s: &mut Session,
        cell: CellId,
        leaf_level: u8,
        limit: Option<usize>,
    ) -> Result<Vec<SpatialEntry>> {
        let (start, end) = cell
            .descendant_range(leaf_level)
            .ok_or(MoistError::Codec("cell finer than leaf level"))?;
        self.spatial_scan_range(s, start, end, limit)
    }

    /// All leaders in the contiguous leaf-index range `[start, end)` —
    /// one scan RPC (region queries scan merged ranges directly).
    pub fn spatial_scan_range(
        &self,
        s: &mut Session,
        start: u64,
        end: u64,
        limit: Option<usize>,
    ) -> Result<Vec<SpatialEntry>> {
        let rows = s.scan(
            &self.spatial,
            &ScanRange::between(RowKey::composite(start, 0), RowKey::composite(end, 0)),
            &ReadOptions::latest_in(cols::SPATIAL),
            limit,
        )?;
        rows.into_iter()
            .map(|row| {
                let (leaf, oid) = row
                    .key
                    .split_composite()
                    .ok_or(MoistError::Codec("malformed spatial key"))?;
                let cell = row
                    .latest(cols::SPATIAL, cols::SPATIAL_Q)
                    .ok_or(MoistError::Codec("spatial row without record"))?;
                Ok(SpatialEntry {
                    leaf_index: leaf,
                    oid: ObjectId(oid),
                    record: LocationRecord::decode(&cell.value)?,
                    ts: cell.ts,
                })
            })
            .collect()
    }

    /// Number of leaders inside `cell` (a charged scan; FLAG's `m`).
    pub fn spatial_count_cell(
        &self,
        s: &mut Session,
        cell: CellId,
        leaf_level: u8,
    ) -> Result<usize> {
        Ok(self.spatial_scan_cell(s, cell, leaf_level, None)?.len())
    }

    /// Applies a prepared batch of spatial mutations (clustering write phase).
    pub fn spatial_batch(&self, s: &mut Session, batch: &[RowMutation]) -> Result<usize> {
        if batch.is_empty() {
            return Ok(0);
        }
        Ok(s.mutate_rows(&self.spatial, batch)?)
    }

    /// Builds (without applying) a delete mutation for a spatial entry.
    pub fn spatial_delete_mutation(leaf_index: u64, oid: ObjectId) -> RowMutation {
        RowMutation::new(
            Self::spatial_key(leaf_index, oid),
            vec![Mutation::DeleteRow],
        )
    }

    /// Atomically deletes a scanned leader's spatial row *only if* it
    /// still holds exactly the scanned record — the store's
    /// check-and-mutate under one tablet write lock. This is the commit
    /// point of a school merge: if the object updated or moved between
    /// the clustering scan and the commit, the row's value changed (or
    /// the row is gone), the guard fails, and the caller aborts that
    /// object's merge instead of demoting a live leader.
    pub fn spatial_check_and_delete(&self, s: &mut Session, entry: &SpatialEntry) -> Result<bool> {
        let expected = entry.record.encode();
        Ok(s.check_and_mutate(
            &self.spatial,
            &Self::spatial_key(entry.leaf_index, entry.oid),
            cols::SPATIAL,
            cols::SPATIAL_Q,
            Some(expected.as_ref()),
            &[Mutation::DeleteRow],
        )?)
    }

    /// Moves a leader's entry between leaves **guarded**: the old row is
    /// deleted only if it is still present with its current value (one
    /// check-and-mutate under the tablet lock), and the new row is
    /// written only after winning that delete. Returns `false` — nothing
    /// written — when the old row is gone or changed: a clustering merge
    /// absorbed the object concurrently (its commit deletes the row
    /// through the same guard, see
    /// [`spatial_check_and_delete`](MoistTables::spatial_check_and_delete)),
    /// and rewriting the entry would resurrect an absorbed leader. The
    /// old spatial row is thus the *mutual-exclusion point* between a
    /// cross-cell move and the old cell's merge: exactly one of the two
    /// deletes it, and the loser backs off.
    pub fn spatial_move_guarded(
        &self,
        s: &mut Session,
        old_leaf: u64,
        new_leaf: u64,
        oid: ObjectId,
        rec: &LocationRecord,
        ts: Timestamp,
    ) -> Result<bool> {
        let old_key = Self::spatial_key(old_leaf, oid);
        let Some(cell) = s.get_latest(&self.spatial, &old_key, cols::SPATIAL, cols::SPATIAL_Q)?
        else {
            return Ok(false);
        };
        if !s.check_and_mutate(
            &self.spatial,
            &old_key,
            cols::SPATIAL,
            cols::SPATIAL_Q,
            Some(&cell.value),
            &[Mutation::DeleteRow],
        )? {
            return Ok(false);
        }
        self.spatial_insert(s, new_leaf, oid, rec, ts)?;
        Ok(true)
    }

    // ---------- Affiliation Table ----------

    /// The L/F record of `oid` (None for never-seen objects).
    pub fn lf(&self, s: &mut Session, oid: ObjectId) -> Result<Option<LfRecord>> {
        match s.get_latest(
            &self.affiliation,
            &RowKey::from_u64(oid.0),
            cols::LF_MEM,
            cols::LF_Q,
        )? {
            None => Ok(None),
            Some(cell) => Ok(Some(LfRecord::decode(&cell.value)?)),
        }
    }

    /// Batch-fetches L/F records (clustering's batch read).
    pub fn batch_lf(&self, s: &mut Session, oids: &[ObjectId]) -> Result<Vec<Option<LfRecord>>> {
        let keys: Vec<RowKey> = oids.iter().map(|o| RowKey::from_u64(o.0)).collect();
        let rows = s.batch_get(
            &self.affiliation,
            &keys,
            &ReadOptions::latest_in(cols::LF_MEM),
        )?;
        rows.into_iter()
            .map(|row| match row {
                None => Ok(None),
                Some(r) => match r.latest(cols::LF_MEM, cols::LF_Q) {
                    None => Ok(None),
                    Some(cell) => Ok(Some(LfRecord::decode(&cell.value)?)),
                },
            })
            .collect()
    }

    /// Batch-fetches L/F records *with their head timestamps* — the
    /// batched apply path's variant of [`batch_lf`](Self::batch_lf). The
    /// head timestamp lets the batch clamp a deferred superseding L/F
    /// write locally (the same rule as
    /// [`lf_supersede_ts`](Self::lf_supersede_ts)) without a per-row
    /// re-read, valid because the batch holds the routing key's shard
    /// lock and the cross-shard writers that could move the head are
    /// excluded by the spatial-row guard it wins first.
    pub fn batch_lf_versions(
        &self,
        s: &mut Session,
        oids: &[ObjectId],
    ) -> Result<Vec<Option<(Timestamp, LfRecord)>>> {
        let keys: Vec<RowKey> = oids.iter().map(|o| RowKey::from_u64(o.0)).collect();
        let rows = s.batch_get(
            &self.affiliation,
            &keys,
            &ReadOptions::latest_in(cols::LF_MEM),
        )?;
        rows.into_iter()
            .map(|row| match row {
                None => Ok(None),
                Some(r) => match r.latest(cols::LF_MEM, cols::LF_Q) {
                    None => Ok(None),
                    Some(cell) => Ok(Some((cell.ts, LfRecord::decode(&cell.value)?))),
                },
            })
            .collect()
    }

    /// Batch-fetches the raw spatial-row values of many `(leaf, oid)`
    /// entries at once — the batched apply path's prefetch for guarded
    /// cross-cell moves. The returned bytes are exactly what a subsequent
    /// `check_and_mutate` must present as its expected value.
    pub fn batch_spatial_values(
        &self,
        s: &mut Session,
        entries: &[(u64, ObjectId)],
    ) -> Result<Vec<Option<Vec<u8>>>> {
        let keys: Vec<RowKey> = entries
            .iter()
            .map(|&(leaf, oid)| Self::spatial_key(leaf, oid))
            .collect();
        let rows = s.batch_get(&self.spatial, &keys, &ReadOptions::latest_in(cols::SPATIAL))?;
        Ok(rows
            .into_iter()
            .map(|row| {
                row.and_then(|r| {
                    r.latest(cols::SPATIAL, cols::SPATIAL_Q)
                        .map(|cell| cell.value.to_vec())
                })
            })
            .collect())
    }

    /// Atomically deletes the spatial row `(leaf, oid)` *only if* it still
    /// holds exactly `expected` — the batched apply path's half of
    /// [`spatial_move_guarded`](Self::spatial_move_guarded), with the
    /// current-value read amortized into a prior
    /// [`batch_spatial_values`](Self::batch_spatial_values) prefetch.
    /// Returns `false` when the row is gone or changed (a clustering
    /// merge won the race); the caller must then skip the superseded
    /// spatial rewrite.
    pub fn spatial_check_and_delete_value(
        &self,
        s: &mut Session,
        leaf_index: u64,
        oid: ObjectId,
        expected: &[u8],
    ) -> Result<bool> {
        Ok(s.check_and_mutate(
            &self.spatial,
            &Self::spatial_key(leaf_index, oid),
            cols::SPATIAL,
            cols::SPATIAL_Q,
            Some(expected),
            &[Mutation::DeleteRow],
        )?)
    }

    /// Applies a deferred [`WriteBatch`]: at most one multi-row RPC per
    /// touched table, so the store's batch discount (rpc base charged
    /// once per table, per-row cost at batch rates) is actually
    /// exercised. Returns the number of rows written and leaves the
    /// batch empty.
    pub fn flush_write_batch(&self, s: &mut Session, wb: &mut WriteBatch) -> Result<usize> {
        let mut rows = 0;
        if !wb.location.is_empty() {
            rows += s.mutate_rows(&self.location, &wb.location)?;
            wb.location.clear();
        }
        if !wb.spatial.is_empty() {
            rows += s.mutate_rows(&self.spatial, &wb.spatial)?;
            wb.spatial.clear();
        }
        if !wb.affiliation.is_empty() {
            rows += s.mutate_rows(&self.affiliation, &wb.affiliation)?;
            wb.affiliation.clear();
        }
        Ok(rows)
    }

    /// Writes the L/F record of `oid`. The write lands at a clamped
    /// timestamp ([`lf_supersede_ts`](Self::lf_supersede_ts)): an L/F
    /// write always supersedes the current record, even when the writer's
    /// virtual clock trails a clustering tick that stamped the head far
    /// ahead of it.
    pub fn set_lf(
        &self,
        s: &mut Session,
        oid: ObjectId,
        lf: &LfRecord,
        ts: Timestamp,
    ) -> Result<()> {
        let ts = self.lf_supersede_ts(s, oid, ts)?;
        s.mutate_row(
            &self.affiliation,
            &RowKey::from_u64(oid.0),
            &[Mutation::put(cols::LF_MEM, cols::LF_Q, ts, lf.encode())],
        )?;
        Ok(())
    }

    /// Timestamp at which a *superseding* L/F write must land to become
    /// the row's newest version.
    ///
    /// L/F records are a state machine — only the latest matters — but the
    /// store orders cell versions by timestamp, and the tier's actors run
    /// on skewed virtual clocks: a clustering tick can stamp a record far
    /// ahead of the object's own report clock. A transition written at the
    /// object's (older) clock would land *behind* the head version — or be
    /// truncated away outright — and every read would keep resurrecting
    /// the superseded affiliation. Clamping to just past the head keeps
    /// the version order equal to the commit order.
    fn lf_supersede_ts(&self, s: &mut Session, oid: ObjectId, ts: Timestamp) -> Result<Timestamp> {
        let head = s.get_latest(
            &self.affiliation,
            &RowKey::from_u64(oid.0),
            cols::LF_MEM,
            cols::LF_Q,
        )?;
        Ok(match head {
            Some(cell) if cell.ts >= ts => Timestamp(cell.ts.0 + 1),
            _ => ts,
        })
    }

    /// Atomically replaces `oid`'s L/F record *only if* it still equals
    /// `expected` (the store's check-and-mutate). The clustering merge
    /// re-affiliates an absorbed leader's followers through this guard: a
    /// follower that promoted concurrently (its update rewrote the record
    /// on another shard) fails the check and keeps its self-chosen
    /// affiliation. The replacement lands at a clamped timestamp
    /// ([`lf_supersede_ts`](Self::lf_supersede_ts)) so a writer with a
    /// lagging clock still supersedes the record it matched.
    pub fn lf_check_and_set(
        &self,
        s: &mut Session,
        oid: ObjectId,
        expected: &LfRecord,
        new: &LfRecord,
        ts: Timestamp,
    ) -> Result<bool> {
        let ts = self.lf_supersede_ts(s, oid, ts)?;
        Ok(s.check_and_mutate(
            &self.affiliation,
            &RowKey::from_u64(oid.0),
            cols::LF_MEM,
            cols::LF_Q,
            Some(&expected.encode()),
            &[Mutation::put(cols::LF_MEM, cols::LF_Q, ts, new.encode())],
        )?)
    }

    /// The Follower Info of a leader: each follower with its displacement.
    pub fn followers(
        &self,
        s: &mut Session,
        leader: ObjectId,
    ) -> Result<Vec<(ObjectId, Displacement)>> {
        let row = s.get_row(
            &self.affiliation,
            &RowKey::from_u64(leader.0),
            &ReadOptions::latest_in(cols::FOLLOWERS),
        )?;
        let mut out = Vec::new();
        if let Some(row) = row {
            for entry in row.family(cols::FOLLOWERS) {
                let oid = parse_follower_qualifier(&entry.qualifier)?;
                let disp = decode_displacement(&entry.cells[0].value)?;
                out.push((oid, disp));
            }
        }
        Ok(out)
    }

    /// Batch-fetches the Follower Info of many leaders at once.
    pub fn batch_followers(
        &self,
        s: &mut Session,
        leaders: &[ObjectId],
    ) -> Result<Vec<Vec<(ObjectId, Displacement)>>> {
        let keys: Vec<RowKey> = leaders.iter().map(|o| RowKey::from_u64(o.0)).collect();
        let rows = s.batch_get(
            &self.affiliation,
            &keys,
            &ReadOptions::latest_in(cols::FOLLOWERS),
        )?;
        rows.into_iter()
            .map(|row| {
                let mut out = Vec::new();
                if let Some(row) = row {
                    for entry in row.family(cols::FOLLOWERS) {
                        let oid = parse_follower_qualifier(&entry.qualifier)?;
                        let disp = decode_displacement(&entry.cells[0].value)?;
                        out.push((oid, disp));
                    }
                }
                Ok(out)
            })
            .collect()
    }

    /// Adds `follower` to `leader`'s Follower Info.
    pub fn add_follower(
        &self,
        s: &mut Session,
        leader: ObjectId,
        follower: ObjectId,
        disp: Displacement,
        ts: Timestamp,
    ) -> Result<()> {
        s.mutate_row(
            &self.affiliation,
            &RowKey::from_u64(leader.0),
            &[Mutation::put(
                cols::FOLLOWERS,
                follower_qualifier(follower),
                ts,
                encode_displacement(disp).to_vec(),
            )],
        )?;
        Ok(())
    }

    /// Builds (without applying) the add-follower mutation.
    pub fn add_follower_mutation(
        leader: ObjectId,
        follower: ObjectId,
        disp: Displacement,
        ts: Timestamp,
    ) -> RowMutation {
        RowMutation::new(
            RowKey::from_u64(leader.0),
            vec![Mutation::put(
                cols::FOLLOWERS,
                follower_qualifier(follower),
                ts,
                encode_displacement(disp).to_vec(),
            )],
        )
    }

    /// Removes `follower` from `leader`'s Follower Info.
    pub fn remove_follower(
        &self,
        s: &mut Session,
        leader: ObjectId,
        follower: ObjectId,
    ) -> Result<()> {
        s.mutate_row(
            &self.affiliation,
            &RowKey::from_u64(leader.0),
            &[Mutation::delete_column(
                cols::FOLLOWERS,
                follower_qualifier(follower),
            )],
        )?;
        Ok(())
    }

    /// Builds (without applying) the remove-follower mutation.
    pub fn remove_follower_mutation(leader: ObjectId, follower: ObjectId) -> RowMutation {
        RowMutation::new(
            RowKey::from_u64(leader.0),
            vec![Mutation::delete_column(
                cols::FOLLOWERS,
                follower_qualifier(follower),
            )],
        )
    }

    /// Builds a mutation clearing a leader's whole Follower Info (used when
    /// the leader is merged into another school).
    pub fn clear_followers_mutation(leader: ObjectId) -> RowMutation {
        RowMutation::new(
            RowKey::from_u64(leader.0),
            vec![Mutation::DeleteFamily {
                family: cols::FOLLOWERS.into(),
            }],
        )
    }

    /// Applies a prepared affiliation batch (clustering write phase).
    pub fn affiliation_batch(&self, s: &mut Session, batch: &[RowMutation]) -> Result<usize> {
        if batch.is_empty() {
            return Ok(0);
        }
        Ok(s.mutate_rows(&self.affiliation, batch)?)
    }

    /// Moves aged L/F records to the disk family (§3.1.1).
    pub fn age_affiliations(&self, cutoff: Timestamp) -> Result<usize> {
        Ok(self
            .affiliation
            .age_transfer(cols::LF_MEM, cols::LF_DISK, cutoff)?)
    }
}

/// A deferred write buffer for the batched apply path: plain (unguarded)
/// row writes accumulate here and land later via
/// [`MoistTables::flush_write_batch`] as one multi-row RPC per table.
///
/// Only writes whose rows no concurrent actor can touch may be deferred —
/// the batch holds the routing key's shard lock, every buffered row is
/// keyed by an OID this batch owns exclusively (enforced by the caller's
/// dirty-set), and guarded check-and-mutate commits (the cross-shard
/// mutual-exclusion points) are never buffered. Deferral therefore
/// reorders only writes to disjoint rows, and every mutation carries its
/// own explicit timestamp, so the final store state is identical to the
/// synchronous path's.
#[derive(Debug, Default)]
pub struct WriteBatch {
    location: Vec<RowMutation>,
    spatial: Vec<RowMutation>,
    affiliation: Vec<RowMutation>,
}

impl WriteBatch {
    /// An empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.location.is_empty() && self.spatial.is_empty() && self.affiliation.is_empty()
    }

    /// Number of row mutations currently buffered across all tables.
    pub fn rows(&self) -> usize {
        self.location.len() + self.spatial.len() + self.affiliation.len()
    }

    /// Defers [`MoistTables::put_location`].
    pub fn put_location(&mut self, oid: ObjectId, rec: &LocationRecord, ts: Timestamp) {
        self.location.push(RowMutation::new(
            RowKey::from_u64(oid.0),
            vec![Mutation::put(
                cols::LOC_MEM,
                cols::LOC_Q,
                ts,
                rec.encode().to_vec(),
            )],
        ));
    }

    /// Defers [`MoistTables::spatial_insert`] (also the same-leaf refresh
    /// half of `spatial_move` — a plain overwrite of the row this batch's
    /// shard lock already serializes against the cell's clustering).
    pub fn spatial_insert(
        &mut self,
        leaf_index: u64,
        oid: ObjectId,
        rec: &LocationRecord,
        ts: Timestamp,
    ) {
        self.spatial.push(RowMutation::new(
            RowKey::composite(leaf_index, oid.0),
            vec![Mutation::put(
                cols::SPATIAL,
                cols::SPATIAL_Q,
                ts,
                rec.encode().to_vec(),
            )],
        ));
    }

    /// Defers an L/F write landing at exactly `ts`. The caller is
    /// responsible for supersede-clamping: pass the raw report time for a
    /// first-sight registration (no head version exists) or a timestamp
    /// already clamped past the prefetched head (see
    /// [`MoistTables::batch_lf_versions`]).
    pub fn set_lf_at(&mut self, oid: ObjectId, lf: &LfRecord, ts: Timestamp) {
        self.affiliation.push(RowMutation::new(
            RowKey::from_u64(oid.0),
            vec![Mutation::put(cols::LF_MEM, cols::LF_Q, ts, lf.encode())],
        ));
    }
}

/// One decoded Spatial Index Table row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpatialEntry {
    /// Leaf cell the leader is filed under.
    pub leaf_index: u64,
    /// The leader's id.
    pub oid: ObjectId,
    /// The leader's location record at its last update.
    pub record: LocationRecord,
    /// Timestamp of that update.
    pub ts: Timestamp,
}

#[cfg(test)]
mod tests {
    use super::*;
    use moist_bigtable::CostProfile;
    use moist_spatial::{Point, Velocity};

    fn setup() -> (Arc<Bigtable>, MoistTables, Session) {
        let store = Bigtable::new();
        let cfg = MoistConfig::default();
        let tables = MoistTables::create(&store, &cfg).unwrap();
        let session = store.session_with(CostProfile::free());
        (store, tables, session)
    }

    fn rec(x: f64, y: f64, leaf: u64) -> LocationRecord {
        LocationRecord {
            loc: Point::new(x, y),
            vel: Velocity::new(1.0, 0.0),
            leaf_index: leaf,
        }
    }

    #[test]
    fn create_twice_fails_open_succeeds() {
        let (store, _t, _s) = setup();
        assert!(MoistTables::create(&store, &MoistConfig::default()).is_err());
        assert!(MoistTables::open(&store).is_ok());
    }

    #[test]
    fn location_roundtrip_and_history_order() {
        let (_store, t, mut s) = setup();
        let oid = ObjectId(5);
        for ts in [1u64, 3, 2] {
            t.put_location(&mut s, oid, &rec(ts as f64, 0.0, 9), Timestamp(ts))
                .unwrap();
        }
        let (ts, latest) = t.latest_location(&mut s, oid).unwrap().unwrap();
        assert_eq!(ts, Timestamp(3));
        assert_eq!(latest.loc.x, 3.0);
        let hist = t.location_history(&mut s, oid).unwrap();
        assert_eq!(hist.len(), 3);
        assert!(hist.windows(2).all(|w| w[0].0 > w[1].0), "newest first");
        assert!(t.latest_location(&mut s, ObjectId(99)).unwrap().is_none());
    }

    #[test]
    fn batch_latest_locations_aligns_with_input() {
        let (_store, t, mut s) = setup();
        t.put_location(&mut s, ObjectId(1), &rec(1.0, 0.0, 0), Timestamp(1))
            .unwrap();
        t.put_location(&mut s, ObjectId(3), &rec(3.0, 0.0, 0), Timestamp(1))
            .unwrap();
        let got = t
            .batch_latest_locations(&mut s, &[ObjectId(1), ObjectId(2), ObjectId(3)])
            .unwrap();
        assert!(got[0].is_some() && got[1].is_none() && got[2].is_some());
        assert_eq!(got[2].unwrap().1.loc.x, 3.0);
    }

    #[test]
    fn spatial_insert_scan_move_remove() {
        let (_store, t, mut s) = setup();
        let cfg = MoistConfig::default();
        let leaf_level = cfg.space.leaf_level;
        let p = Point::new(100.0, 100.0);
        let leaf = cfg.space.leaf_cell(&p).index;
        t.spatial_insert(
            &mut s,
            leaf,
            ObjectId(7),
            &rec(100.0, 100.0, leaf),
            Timestamp(1),
        )
        .unwrap();
        // Scan the enclosing clustering cell.
        let cc = cfg.space.cell_at(cfg.clustering_level, &p);
        let entries = t.spatial_scan_cell(&mut s, cc, leaf_level, None).unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].oid, ObjectId(7));
        assert_eq!(entries[0].leaf_index, leaf);
        // Move to another cell.
        let p2 = Point::new(900.0, 900.0);
        let leaf2 = cfg.space.leaf_cell(&p2).index;
        t.spatial_move(
            &mut s,
            leaf,
            leaf2,
            ObjectId(7),
            &rec(900.0, 900.0, leaf2),
            Timestamp(2),
        )
        .unwrap();
        assert!(t
            .spatial_scan_cell(&mut s, cc, leaf_level, None)
            .unwrap()
            .is_empty());
        let cc2 = cfg.space.cell_at(cfg.clustering_level, &p2);
        assert_eq!(t.spatial_count_cell(&mut s, cc2, leaf_level).unwrap(), 1);
        t.spatial_remove(&mut s, leaf2, ObjectId(7)).unwrap();
        assert_eq!(t.spatial_count_cell(&mut s, cc2, leaf_level).unwrap(), 0);
    }

    #[test]
    fn lf_and_followers_roundtrip() {
        let (_store, t, mut s) = setup();
        let leader = ObjectId(4);
        let f1 = ObjectId(2);
        let f2 = ObjectId(7);
        t.set_lf(
            &mut s,
            leader,
            &LfRecord::Leader {
                since_us: 1,
                last_leaf: 0,
            },
            Timestamp(1),
        )
        .unwrap();
        let d1 = Displacement::new(1.0, 0.0);
        let d2 = Displacement::new(0.0, 2.0);
        t.add_follower(&mut s, leader, f1, d1, Timestamp(1))
            .unwrap();
        t.add_follower(&mut s, leader, f2, d2, Timestamp(1))
            .unwrap();
        t.set_lf(
            &mut s,
            f1,
            &LfRecord::Follower {
                leader,
                displacement: d1,
                since_us: 1,
            },
            Timestamp(1),
        )
        .unwrap();
        assert!(t.lf(&mut s, leader).unwrap().unwrap().is_leader());
        assert!(!t.lf(&mut s, f1).unwrap().unwrap().is_leader());
        assert!(t.lf(&mut s, ObjectId(42)).unwrap().is_none());
        let mut followers = t.followers(&mut s, leader).unwrap();
        followers.sort_by_key(|(o, _)| o.0);
        assert_eq!(followers, vec![(f1, d1), (f2, d2)]);
        t.remove_follower(&mut s, leader, f1).unwrap();
        assert_eq!(t.followers(&mut s, leader).unwrap().len(), 1);
        // Clear the rest via the batch mutation builder.
        t.affiliation_batch(&mut s, &[MoistTables::clear_followers_mutation(leader)])
            .unwrap();
        assert!(t.followers(&mut s, leader).unwrap().is_empty());
        // L/F record survives the follower-family clear.
        assert!(t.lf(&mut s, leader).unwrap().is_some());
    }

    #[test]
    fn batch_lf_and_batch_followers() {
        let (_store, t, mut s) = setup();
        t.set_lf(
            &mut s,
            ObjectId(1),
            &LfRecord::Leader {
                since_us: 0,
                last_leaf: 0,
            },
            Timestamp(0),
        )
        .unwrap();
        t.add_follower(
            &mut s,
            ObjectId(1),
            ObjectId(9),
            Displacement::ZERO,
            Timestamp(0),
        )
        .unwrap();
        let lfs = t.batch_lf(&mut s, &[ObjectId(1), ObjectId(2)]).unwrap();
        assert!(lfs[0].is_some() && lfs[1].is_none());
        let fols = t
            .batch_followers(&mut s, &[ObjectId(1), ObjectId(2)])
            .unwrap();
        assert_eq!(fols[0].len(), 1);
        assert!(fols[1].is_empty());
    }

    #[test]
    fn write_batch_flush_lands_identical_rows() {
        let (_store, t, mut s) = setup();
        let r = rec(10.0, 20.0, 3);
        let mut wb = WriteBatch::new();
        assert!(wb.is_empty());
        wb.put_location(ObjectId(1), &r, Timestamp(5));
        wb.spatial_insert(3, ObjectId(1), &r, Timestamp(5));
        wb.set_lf_at(
            ObjectId(1),
            &LfRecord::Leader {
                since_us: 5,
                last_leaf: 3,
            },
            Timestamp(5),
        );
        assert_eq!(wb.rows(), 3);
        let written = t.flush_write_batch(&mut s, &mut wb).unwrap();
        assert_eq!(written, 3);
        assert!(wb.is_empty(), "flush must leave the batch reusable");
        // The rows read back exactly as the synchronous writers would
        // have left them.
        let (ts, got) = t.latest_location(&mut s, ObjectId(1)).unwrap().unwrap();
        assert_eq!((ts, got.loc), (Timestamp(5), r.loc));
        assert!(t.lf(&mut s, ObjectId(1)).unwrap().unwrap().is_leader());
        let heads = t
            .batch_lf_versions(&mut s, &[ObjectId(1), ObjectId(9)])
            .unwrap();
        assert_eq!(heads[0].as_ref().unwrap().0, Timestamp(5));
        assert!(heads[1].is_none());
        let vals = t
            .batch_spatial_values(&mut s, &[(3, ObjectId(1)), (4, ObjectId(1))])
            .unwrap();
        assert_eq!(vals[0].as_deref(), Some(r.encode().as_ref()));
        assert!(vals[1].is_none());
        // The guarded delete against the prefetched value wins exactly
        // once.
        let expected = vals[0].clone().unwrap();
        assert!(t
            .spatial_check_and_delete_value(&mut s, 3, ObjectId(1), &expected)
            .unwrap());
        assert!(!t
            .spatial_check_and_delete_value(&mut s, 3, ObjectId(1), &expected)
            .unwrap());
    }

    #[test]
    fn aging_moves_records_to_disk_families() {
        let (_store, t, mut s) = setup();
        let oid = ObjectId(1);
        t.put_location(&mut s, oid, &rec(0.0, 0.0, 0), Timestamp::from_secs(1))
            .unwrap();
        t.put_location(&mut s, oid, &rec(1.0, 0.0, 0), Timestamp::from_secs(100))
            .unwrap();
        let moved = t.age_locations(Timestamp::from_secs(50)).unwrap();
        assert_eq!(moved, 1);
        // Latest (hot) record still served from memory.
        let (_, latest) = t.latest_location(&mut s, oid).unwrap().unwrap();
        assert_eq!(latest.loc.x, 1.0);
        t.set_lf(
            &mut s,
            oid,
            &LfRecord::Leader {
                since_us: 0,
                last_leaf: 0,
            },
            Timestamp(0),
        )
        .unwrap();
        let aged = t.age_affiliations(Timestamp::from_secs(50)).unwrap();
        assert_eq!(aged, 1);
    }
}
