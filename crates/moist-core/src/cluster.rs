//! Periodic lazy clustering (§3.3.2).
//!
//! Clustering runs cell by cell over *clustering cells* — cells several
//! levels coarser than the spatial leaf level, so each one is a contiguous
//! row range batch-read from the Spatial Index Table. Within a cell:
//!
//! 1. **read** — batch-scan the cell's leaders and batch-get their Follower
//!    Info from the Affiliation Table;
//! 2. **compute** — map each leader's velocity to a hexagonal bin (`O(1)`
//!    each, `O(n)` total) and merge the leaders sharing a bin;
//! 3. **write** — apply the merge as batched mutations: transfer Follower
//!    Info, rewrite L/F entries of moved followers, delete merged leaders
//!    from the Spatial Index Table.
//!
//! The per-phase virtual latencies are reported so Figure 10's
//! read/compute/write breakdown can be regenerated.

use crate::codec::LfRecord;
use crate::config::MoistConfig;
use crate::error::Result;
use crate::hexgrid::{HexBin, HexGrid};
use crate::ids::ObjectId;
use crate::tables::{MoistTables, SpatialEntry};
use moist_bigtable::{RowMutation, Session, Timestamp};
use moist_spatial::{cells_at_level, CellId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Outcome and phase timing of clustering one cell.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct ClusterReport {
    /// Leaders present before clustering.
    pub pre_leaders: usize,
    /// Leaders remaining after clustering.
    pub post_leaders: usize,
    /// Leaders merged into other schools.
    pub merged: usize,
    /// Followers whose affiliation was rewritten.
    pub followers_moved: usize,
    /// Virtual µs spent reading (Spatial Index + Affiliation batch reads).
    pub read_us: f64,
    /// Virtual µs spent on the in-server computation.
    pub compute_us: f64,
    /// Virtual µs spent writing the merge batches.
    pub write_us: f64,
}

impl ClusterReport {
    /// Total virtual latency of this clustering.
    pub fn total_us(&self) -> f64 {
        self.read_us + self.compute_us + self.write_us
    }

    /// Accumulates another report (for whole-map sweeps).
    pub fn merge_from(&mut self, other: &ClusterReport) {
        self.pre_leaders += other.pre_leaders;
        self.post_leaders += other.post_leaders;
        self.merged += other.merged;
        self.followers_moved += other.followers_moved;
        self.read_us += other.read_us;
        self.compute_us += other.compute_us;
        self.write_us += other.write_us;
    }
}

/// Clusters one clustering cell: merges leaders with similar velocities.
///
/// `now` stamps the rewritten records. Geographic proximity is inherent:
/// only leaders inside the same clustering cell are candidates (§3.3.2).
pub fn cluster_cell(
    s: &mut Session,
    tables: &MoistTables,
    cfg: &MoistConfig,
    cell: CellId,
    now: Timestamp,
) -> Result<ClusterReport> {
    let mut report = ClusterReport::default();

    // ---- read phase ----
    let t0 = s.elapsed_us();
    let leaders: Vec<SpatialEntry> =
        tables.spatial_scan_cell(s, cell, cfg.space.leaf_level, None)?;
    report.pre_leaders = leaders.len();
    if leaders.len() < 2 {
        report.post_leaders = leaders.len();
        report.read_us = s.elapsed_us() - t0;
        return Ok(report);
    }
    let leader_ids: Vec<ObjectId> = leaders.iter().map(|e| e.oid).collect();
    let follower_infos = tables.batch_followers(s, &leader_ids)?;
    report.read_us = s.elapsed_us() - t0;

    // ---- compute phase (wall-measured, charged to the virtual clock) ----
    let wall0 = std::time::Instant::now();
    let grid = HexGrid::new(cfg.delta_m);
    let mut bins: HashMap<HexBin, Vec<usize>> = HashMap::new();
    for (i, entry) in leaders.iter().enumerate() {
        bins.entry(grid.bin(&entry.record.vel)).or_default().push(i);
    }
    // Within each bin, the leader with the most followers survives — it is
    // the cheapest merge (fewest L/F rewrites).
    struct Merge {
        survivor: usize,
        absorbed: Vec<usize>,
    }
    let merges: Vec<Merge> = bins
        .into_values()
        .filter(|members| members.len() > 1)
        .map(|mut members| {
            members
                .sort_by_key(|&i| (std::cmp::Reverse(follower_infos[i].len()), leaders[i].oid.0));
            let survivor = members[0];
            Merge {
                survivor,
                absorbed: members[1..].to_vec(),
            }
        })
        .collect();
    let compute_wall_us = wall0.elapsed().as_secs_f64() * 1e6;
    s.charge_extra_us(compute_wall_us);
    report.compute_us = compute_wall_us;

    // ---- write phase ----
    let t1 = s.elapsed_us();
    let mut affiliation_batch: Vec<RowMutation> = Vec::new();
    let mut spatial_batch: Vec<RowMutation> = Vec::new();
    let mut merged_count = 0usize;
    let mut followers_moved = 0usize;
    // Leaders' stored records carry different timestamps (each wrote at its
    // own last update); advance both to `now` under linear motion before
    // differencing, or displacements absorb up to v·Δt of skew.
    let pos_now = |e: &SpatialEntry| e.record.loc.advance(e.record.vel, now.secs_since(e.ts));
    for m in &merges {
        let survivor = &leaders[m.survivor];
        for &j in &m.absorbed {
            let absorbed = &leaders[j];
            // Displacement from the survivor to the absorbed leader at `now`.
            let lead_disp = pos_now(survivor).displacement_to(&pos_now(absorbed));
            // (ii) every follower of j re-affiliates to the survivor; its
            // displacement composes: survivor → j → follower.
            for &(f, d) in &follower_infos[j] {
                let nd = moist_spatial::Displacement::new(lead_disp.dx + d.dx, lead_disp.dy + d.dy);
                affiliation_batch.push(MoistTables::lf_mutation(
                    f,
                    &LfRecord::Follower {
                        leader: survivor.oid,
                        displacement: nd,
                        since_us: now.0,
                    },
                    now,
                ));
                affiliation_batch.push(MoistTables::add_follower_mutation(
                    survivor.oid,
                    f,
                    nd,
                    now,
                ));
                followers_moved += 1;
            }
            // (i) j's Follower Info is cleared and j itself becomes a
            // follower of the survivor.
            affiliation_batch.push(MoistTables::clear_followers_mutation(absorbed.oid));
            affiliation_batch.push(MoistTables::lf_mutation(
                absorbed.oid,
                &LfRecord::Follower {
                    leader: survivor.oid,
                    displacement: lead_disp,
                    since_us: now.0,
                },
                now,
            ));
            affiliation_batch.push(MoistTables::add_follower_mutation(
                survivor.oid,
                absorbed.oid,
                lead_disp,
                now,
            ));
            // (iii) delete j from the Spatial Index Table.
            spatial_batch.push(MoistTables::spatial_delete_mutation(
                absorbed.leaf_index,
                absorbed.oid,
            ));
            merged_count += 1;
        }
    }
    tables.affiliation_batch(s, &coalesce_rows(affiliation_batch))?;
    tables.spatial_batch(s, &spatial_batch)?;
    report.write_us = s.elapsed_us() - t1;
    report.merged = merged_count;
    report.followers_moved = followers_moved;
    report.post_leaders = report.pre_leaders - merged_count;
    Ok(report)
}

/// Merges the mutations targeting the same row into one [`RowMutation`]
/// (preserving per-row mutation order), the way a batching client library
/// groups its commit: row-level atomicity is unchanged, the batch just
/// carries fewer row headers.
fn coalesce_rows(batch: Vec<RowMutation>) -> Vec<RowMutation> {
    let mut order: Vec<moist_bigtable::RowKey> = Vec::new();
    let mut by_row: HashMap<moist_bigtable::RowKey, Vec<moist_bigtable::Mutation>> = HashMap::new();
    for rm in batch {
        match by_row.entry(rm.key.clone()) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                e.get_mut().extend(rm.mutations);
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                order.push(rm.key.clone());
                e.insert(rm.mutations);
            }
        }
    }
    order
        .into_iter()
        .map(|key| {
            let mutations = by_row.remove(&key).expect("tracked key");
            RowMutation { key, mutations }
        })
        .collect()
}

/// Clusters every clustering cell of the map once, sequentially ("at any
/// given time only a small number of clustering cells are being processed",
/// §3.3.2). Returns the aggregated report.
pub fn cluster_sweep(
    s: &mut Session,
    tables: &MoistTables,
    cfg: &MoistConfig,
    now: Timestamp,
) -> Result<ClusterReport> {
    let mut total = ClusterReport::default();
    for index in 0..cells_at_level(cfg.clustering_level) {
        let cell = CellId {
            level: cfg.clustering_level,
            index,
        };
        let r = cluster_cell(s, tables, cfg, cell, now)?;
        total.merge_from(&r);
    }
    Ok(total)
}

/// Tracks per-cell clustering deadlines so servers can run lazy clustering
/// on the configured interval `T_c`.
#[derive(Debug)]
pub struct ClusterScheduler {
    interval: f64,
    level: u8,
    next_due_secs: Vec<f64>,
}

impl ClusterScheduler {
    /// Creates a scheduler for `cfg`'s clustering level and interval.
    pub fn new(cfg: &MoistConfig) -> Self {
        let n = cells_at_level(cfg.clustering_level) as usize;
        ClusterScheduler {
            interval: cfg.cluster_interval_secs,
            level: cfg.clustering_level,
            // Stagger first deadlines so cells do not all fire at once
            // (the paper clusters cells sequentially for the same reason).
            next_due_secs: (0..n)
                .map(|i| cfg.cluster_interval_secs * (1.0 + i as f64 / n.max(1) as f64))
                .collect(),
        }
    }

    /// Cells due for clustering at `now`, rescheduling them one interval out.
    pub fn due_cells(&mut self, now: Timestamp) -> Vec<CellId> {
        let now_s = now.as_secs_f64();
        let mut due = Vec::new();
        for (i, next) in self.next_due_secs.iter_mut().enumerate() {
            if now_s >= *next {
                due.push(CellId {
                    level: self.level,
                    index: i as u64,
                });
                *next = now_s + self.interval;
            }
        }
        due
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::update::{apply_update, UpdateMessage};
    use moist_bigtable::Bigtable;
    use moist_spatial::{Point, Velocity};
    use std::sync::Arc;

    fn setup() -> (Arc<Bigtable>, MoistTables, Session, MoistConfig) {
        let store = Bigtable::new();
        let cfg = MoistConfig {
            delta_m: 0.5,
            clustering_level: 3,
            ..MoistConfig::default()
        };
        let tables = MoistTables::create(&store, &cfg).unwrap();
        let session = store.session(); // real cost profile: reports need time
        (store, tables, session, cfg)
    }

    #[allow(clippy::too_many_arguments)]
    fn seed_leader(
        s: &mut Session,
        t: &MoistTables,
        cfg: &MoistConfig,
        oid: u64,
        x: f64,
        y: f64,
        vx: f64,
        vy: f64,
    ) {
        apply_update(
            s,
            t,
            cfg,
            &UpdateMessage {
                oid: ObjectId(oid),
                loc: Point::new(x, y),
                vel: Velocity::new(vx, vy),
                ts: Timestamp::from_secs(1),
            },
        )
        .unwrap();
    }

    #[test]
    fn similar_velocity_leaders_merge_into_one_school() {
        let (_st, t, mut s, cfg) = setup();
        // Three nearby leaders, two with near-identical velocities.
        seed_leader(&mut s, &t, &cfg, 1, 100.0, 100.0, 1.0, 0.0);
        seed_leader(&mut s, &t, &cfg, 2, 101.0, 100.0, 1.01, 0.0);
        seed_leader(&mut s, &t, &cfg, 3, 102.0, 100.0, -1.0, 0.0); // opposite
        let cell = cfg
            .space
            .cell_at(cfg.clustering_level, &Point::new(100.0, 100.0));
        let report = cluster_cell(&mut s, &t, &cfg, cell, Timestamp::from_secs(2)).unwrap();
        assert_eq!(report.pre_leaders, 3);
        assert_eq!(report.merged, 1);
        assert_eq!(report.post_leaders, 2);
        // The merged leader is now a follower.
        let lf1 = t.lf(&mut s, ObjectId(1)).unwrap().unwrap();
        let lf2 = t.lf(&mut s, ObjectId(2)).unwrap().unwrap();
        assert_ne!(lf1.is_leader(), lf2.is_leader(), "exactly one survives");
        // Object 3 is untouched.
        assert!(t.lf(&mut s, ObjectId(3)).unwrap().unwrap().is_leader());
        // Spatial index holds exactly the two surviving leaders.
        assert_eq!(
            t.spatial_count_cell(&mut s, cell, cfg.space.leaf_level)
                .unwrap(),
            2
        );
        // Phase breakdown is populated.
        assert!(report.read_us > 0.0 && report.write_us > 0.0);
    }

    #[test]
    fn merge_transfers_followers_with_composed_displacements() {
        let (_st, t, mut s, cfg) = setup();
        seed_leader(&mut s, &t, &cfg, 1, 100.0, 100.0, 1.0, 0.0);
        seed_leader(&mut s, &t, &cfg, 2, 110.0, 100.0, 1.0, 0.0);
        let affiliate = |s: &mut Session, leader: u64, follower: u64, d| {
            t.set_lf(
                s,
                ObjectId(follower),
                &LfRecord::Follower {
                    leader: ObjectId(leader),
                    displacement: d,
                    since_us: 0,
                },
                Timestamp::from_secs(1),
            )
            .unwrap();
            t.add_follower(
                s,
                ObjectId(leader),
                ObjectId(follower),
                d,
                Timestamp::from_secs(1),
            )
            .unwrap();
        };
        // Leader 1 has one follower (9); leader 2 has two (10, 11), so 2
        // survives the merge and 1's school moves over.
        let d9 = moist_spatial::Displacement::new(0.0, 3.0);
        affiliate(&mut s, 1, 9, d9);
        affiliate(&mut s, 2, 10, moist_spatial::Displacement::new(1.0, 0.0));
        affiliate(&mut s, 2, 11, moist_spatial::Displacement::new(2.0, 0.0));
        let cell = cfg
            .space
            .cell_at(cfg.clustering_level, &Point::new(100.0, 100.0));
        let report = cluster_cell(&mut s, &t, &cfg, cell, Timestamp::from_secs(2)).unwrap();
        assert_eq!(report.merged, 1);
        assert_eq!(report.followers_moved, 1, "only the absorbed school moves");
        assert!(t.lf(&mut s, ObjectId(2)).unwrap().unwrap().is_leader());
        // The absorbed leader 1 follows 2 with displacement 2→1 = (-10, 0).
        match t.lf(&mut s, ObjectId(1)).unwrap().unwrap() {
            LfRecord::Follower {
                leader,
                displacement,
                ..
            } => {
                assert_eq!(leader, ObjectId(2));
                assert!((displacement.dx - (-10.0)).abs() < 1e-9);
            }
            _ => panic!("absorbed leader must follow"),
        }
        // Follower 9's displacement composed: 2→1 + 1→9 = (-10, 3).
        match t.lf(&mut s, ObjectId(9)).unwrap().unwrap() {
            LfRecord::Follower {
                leader,
                displacement,
                ..
            } => {
                assert_eq!(leader, ObjectId(2));
                assert!((displacement.dx - (-10.0)).abs() < 1e-9);
                assert!((displacement.dy - 3.0).abs() < 1e-9);
            }
            _ => panic!("moved follower must follow the survivor"),
        }
        // Survivor's Follower Info: 10, 11, moved 9, absorbed 1.
        let followers = t.followers(&mut s, ObjectId(2)).unwrap();
        assert_eq!(followers.len(), 4);
        // Absorbed leader's own Follower Info was cleared.
        assert!(t.followers(&mut s, ObjectId(1)).unwrap().is_empty());
    }

    #[test]
    fn far_apart_leaders_are_not_merged_across_cells() {
        let (_st, t, mut s, cfg) = setup();
        // Same velocity but opposite map corners: different clustering cells.
        seed_leader(&mut s, &t, &cfg, 1, 10.0, 10.0, 1.0, 0.0);
        seed_leader(&mut s, &t, &cfg, 2, 990.0, 990.0, 1.0, 0.0);
        let report = cluster_sweep(&mut s, &t, &cfg, Timestamp::from_secs(2)).unwrap();
        assert_eq!(report.merged, 0, "geographic proximity is required");
        assert_eq!(report.pre_leaders, 2);
    }

    #[test]
    fn empty_and_singleton_cells_are_cheap_noops() {
        let (_st, t, mut s, cfg) = setup();
        seed_leader(&mut s, &t, &cfg, 1, 500.0, 500.0, 1.0, 0.0);
        let empty_cell = cfg
            .space
            .cell_at(cfg.clustering_level, &Point::new(10.0, 10.0));
        let r = cluster_cell(&mut s, &t, &cfg, empty_cell, Timestamp::from_secs(2)).unwrap();
        assert_eq!(r.pre_leaders, 0);
        assert_eq!(r.write_us, 0.0);
        let single = cfg
            .space
            .cell_at(cfg.clustering_level, &Point::new(500.0, 500.0));
        let r = cluster_cell(&mut s, &t, &cfg, single, Timestamp::from_secs(2)).unwrap();
        assert_eq!(r.pre_leaders, 1);
        assert_eq!(r.merged, 0);
    }

    #[test]
    fn clustering_is_idempotent() {
        let (_st, t, mut s, cfg) = setup();
        for i in 0..10 {
            seed_leader(&mut s, &t, &cfg, i, 100.0 + i as f64, 100.0, 1.0, 0.0);
        }
        let cell = cfg
            .space
            .cell_at(cfg.clustering_level, &Point::new(100.0, 100.0));
        let r1 = cluster_cell(&mut s, &t, &cfg, cell, Timestamp::from_secs(2)).unwrap();
        assert_eq!(r1.post_leaders, 1);
        let r2 = cluster_cell(&mut s, &t, &cfg, cell, Timestamp::from_secs(3)).unwrap();
        assert_eq!(r2.pre_leaders, 1);
        assert_eq!(r2.merged, 0, "second clustering finds nothing to merge");
    }

    #[test]
    fn scheduler_fires_each_cell_once_per_interval() {
        let cfg = MoistConfig {
            clustering_level: 1, // 4 cells
            cluster_interval_secs: 10.0,
            ..MoistConfig::default()
        };
        let mut sched = ClusterScheduler::new(&cfg);
        assert!(sched.due_cells(Timestamp::from_secs(5)).is_empty());
        // Deadlines are staggered at 10, 12.5, 15, 17.5 s: after 18 s every
        // cell has fired exactly once.
        let mut fired = 0;
        for t in [10, 12, 15, 18] {
            fired += sched.due_cells(Timestamp::from_secs(t)).len();
        }
        assert_eq!(fired, 4);
        // They re-arm one interval after their last firing.
        let more = sched.due_cells(Timestamp::from_secs(40)).len();
        assert_eq!(more, 4);
    }
}
