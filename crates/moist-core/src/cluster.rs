//! Periodic lazy clustering (§3.3.2).
//!
//! Clustering runs cell by cell over *clustering cells* — cells several
//! levels coarser than the spatial leaf level, so each one is a contiguous
//! row range batch-read from the Spatial Index Table. Within a cell:
//!
//! 1. **read** — batch-scan the cell's leaders and batch-get their Follower
//!    Info from the Affiliation Table;
//! 2. **compute** — map each leader's velocity to a hexagonal bin (`O(1)`
//!    each, `O(n)` total) and merge the leaders sharing a bin;
//! 3. **write** — apply the merge as batched mutations: transfer Follower
//!    Info, rewrite L/F entries of moved followers, delete merged leaders
//!    from the Spatial Index Table.
//!
//! The per-phase virtual latencies are reported so Figure 10's
//! read/compute/write breakdown can be regenerated.

use crate::codec::LfRecord;
use crate::config::MoistConfig;
use crate::error::Result;
use crate::hexgrid::{HexBin, HexGrid};
use crate::ids::ObjectId;
use crate::tables::{MoistTables, SpatialEntry};
use moist_bigtable::{RowMutation, Session, Timestamp};
use moist_spatial::{cells_at_level, CellId};
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// Outcome and phase timing of clustering one cell.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct ClusterReport {
    /// Leaders present before clustering.
    pub pre_leaders: usize,
    /// Leaders remaining after clustering.
    pub post_leaders: usize,
    /// Leaders merged into other schools.
    pub merged: usize,
    /// Followers whose affiliation was rewritten.
    pub followers_moved: usize,
    /// Virtual µs spent reading (Spatial Index + Affiliation batch reads).
    pub read_us: f64,
    /// Virtual µs spent on the in-server computation.
    pub compute_us: f64,
    /// Virtual µs spent writing the merge batches.
    pub write_us: f64,
}

impl ClusterReport {
    /// Total virtual latency of this clustering.
    pub fn total_us(&self) -> f64 {
        self.read_us + self.compute_us + self.write_us
    }

    /// Accumulates another report (for whole-map sweeps).
    pub fn merge_from(&mut self, other: &ClusterReport) {
        self.pre_leaders += other.pre_leaders;
        self.post_leaders += other.post_leaders;
        self.merged += other.merged;
        self.followers_moved += other.followers_moved;
        self.read_us += other.read_us;
        self.compute_us += other.compute_us;
        self.write_us += other.write_us;
    }
}

/// Clusters one clustering cell: merges leaders with similar velocities.
///
/// `now` stamps the rewritten records. Geographic proximity is inherent:
/// only leaders inside the same clustering cell are candidates (§3.3.2).
pub fn cluster_cell(
    s: &mut Session,
    tables: &MoistTables,
    cfg: &MoistConfig,
    cell: CellId,
    now: Timestamp,
) -> Result<ClusterReport> {
    let mut report = ClusterReport::default();

    // ---- read phase ----
    let t0 = s.elapsed_us();
    let leaders: Vec<SpatialEntry> =
        tables.spatial_scan_cell(s, cell, cfg.space.leaf_level, None)?;
    report.pre_leaders = leaders.len();
    if leaders.len() < 2 {
        report.post_leaders = leaders.len();
        report.read_us = s.elapsed_us() - t0;
        return Ok(report);
    }
    let leader_ids: Vec<ObjectId> = leaders.iter().map(|e| e.oid).collect();
    let follower_infos = tables.batch_followers(s, &leader_ids)?;
    report.read_us = s.elapsed_us() - t0;

    // ---- compute phase (wall-measured, charged to the virtual clock) ----
    let wall0 = std::time::Instant::now();
    let grid = HexGrid::new(cfg.delta_m);
    let mut bins: HashMap<HexBin, Vec<usize>> = HashMap::new();
    for (i, entry) in leaders.iter().enumerate() {
        bins.entry(grid.bin(&entry.record.vel)).or_default().push(i);
    }
    // Within each bin, the leader with the most followers survives — it is
    // the cheapest merge (fewest L/F rewrites).
    struct Merge {
        survivor: usize,
        absorbed: Vec<usize>,
    }
    let merges: Vec<Merge> = bins
        .into_values()
        .filter(|members| members.len() > 1)
        .map(|mut members| {
            members
                .sort_by_key(|&i| (std::cmp::Reverse(follower_infos[i].len()), leaders[i].oid.0));
            let survivor = members[0];
            Merge {
                survivor,
                absorbed: members[1..].to_vec(),
            }
        })
        .collect();
    let compute_wall_us = wall0.elapsed().as_secs_f64() * 1e6;
    s.charge_extra_us(compute_wall_us);
    report.compute_us = compute_wall_us;

    // ---- write phase ----
    let t1 = s.elapsed_us();
    let mut affiliation_batch: Vec<RowMutation> = Vec::new();
    let mut spatial_batch: Vec<RowMutation> = Vec::new();
    let mut merged_count = 0usize;
    let mut followers_moved = 0usize;
    // Leaders' stored records carry different timestamps (each wrote at its
    // own last update); advance both to `now` under linear motion before
    // differencing, or displacements absorb up to v·Δt of skew.
    let pos_now = |e: &SpatialEntry| e.record.loc.advance(e.record.vel, now.secs_since(e.ts));
    for m in &merges {
        let survivor = &leaders[m.survivor];
        for &j in &m.absorbed {
            let absorbed = &leaders[j];
            // Displacement from the survivor to the absorbed leader at `now`.
            let lead_disp = pos_now(survivor).displacement_to(&pos_now(absorbed));
            // (ii) every follower of j re-affiliates to the survivor; its
            // displacement composes: survivor → j → follower.
            for &(f, d) in &follower_infos[j] {
                let nd = moist_spatial::Displacement::new(lead_disp.dx + d.dx, lead_disp.dy + d.dy);
                affiliation_batch.push(MoistTables::lf_mutation(
                    f,
                    &LfRecord::Follower {
                        leader: survivor.oid,
                        displacement: nd,
                        since_us: now.0,
                    },
                    now,
                ));
                affiliation_batch.push(MoistTables::add_follower_mutation(
                    survivor.oid,
                    f,
                    nd,
                    now,
                ));
                followers_moved += 1;
            }
            // (i) j's Follower Info is cleared and j itself becomes a
            // follower of the survivor.
            affiliation_batch.push(MoistTables::clear_followers_mutation(absorbed.oid));
            affiliation_batch.push(MoistTables::lf_mutation(
                absorbed.oid,
                &LfRecord::Follower {
                    leader: survivor.oid,
                    displacement: lead_disp,
                    since_us: now.0,
                },
                now,
            ));
            affiliation_batch.push(MoistTables::add_follower_mutation(
                survivor.oid,
                absorbed.oid,
                lead_disp,
                now,
            ));
            // (iii) delete j from the Spatial Index Table.
            spatial_batch.push(MoistTables::spatial_delete_mutation(
                absorbed.leaf_index,
                absorbed.oid,
            ));
            merged_count += 1;
        }
    }
    tables.affiliation_batch(s, &coalesce_rows(affiliation_batch))?;
    tables.spatial_batch(s, &spatial_batch)?;
    report.write_us = s.elapsed_us() - t1;
    report.merged = merged_count;
    report.followers_moved = followers_moved;
    report.post_leaders = report.pre_leaders - merged_count;
    Ok(report)
}

/// Merges the mutations targeting the same row into one [`RowMutation`]
/// (preserving per-row mutation order), the way a batching client library
/// groups its commit: row-level atomicity is unchanged, the batch just
/// carries fewer row headers.
fn coalesce_rows(batch: Vec<RowMutation>) -> Vec<RowMutation> {
    let mut order: Vec<moist_bigtable::RowKey> = Vec::new();
    let mut by_row: HashMap<moist_bigtable::RowKey, Vec<moist_bigtable::Mutation>> = HashMap::new();
    for rm in batch {
        match by_row.entry(rm.key.clone()) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                e.get_mut().extend(rm.mutations);
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                order.push(rm.key.clone());
                e.insert(rm.mutations);
            }
        }
    }
    order
        .into_iter()
        .map(|key| {
            let mutations = by_row.remove(&key).expect("tracked key");
            RowMutation { key, mutations }
        })
        .collect()
}

/// Clusters every clustering cell of the map once, sequentially ("at any
/// given time only a small number of clustering cells are being processed",
/// §3.3.2). Returns the aggregated report.
pub fn cluster_sweep(
    s: &mut Session,
    tables: &MoistTables,
    cfg: &MoistConfig,
    now: Timestamp,
) -> Result<ClusterReport> {
    let mut total = ClusterReport::default();
    for index in 0..cells_at_level(cfg.clustering_level) {
        let cell = CellId {
            level: cfg.clustering_level,
            index,
        };
        let r = cluster_cell(s, tables, cfg, cell, now)?;
        total.merge_from(&r);
    }
    Ok(total)
}

/// Deterministic owner shard of clustering cell `index` when the schedule
/// is partitioned across `n_shards` front-end servers.
///
/// A splitmix64 finalizer decorrelates curve-adjacent cells, so hot
/// geographic regions (contiguous curve ranges) spread across shards
/// instead of landing on one.
pub fn cell_owner(index: u64, n_shards: usize) -> usize {
    let mut z = index.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z % n_shards.max(1) as u64) as usize
}

/// Tracks per-cell clustering deadlines so servers can run lazy clustering
/// on the configured interval `T_c`.
///
/// Deadlines live in a min-heap keyed by due time, so [`due_cells`] is
/// `O(due · log owned)` rather than a full sweep of every cell, and a cell
/// re-arms from its *missed deadline* (advanced by whole intervals past
/// `now`), so late callers do not drift the schedule's phase.
///
/// In a [`crate::cluster_tier::MoistCluster`] each shard holds a
/// [`partitioned`](ClusterScheduler::partitioned) scheduler that owns the
/// cells hashing to it via [`cell_owner`]; the shards' owned sets form an
/// exact partition of the clustering level, so every cell is clustered by
/// exactly one shard.
///
/// [`due_cells`]: ClusterScheduler::due_cells
#[derive(Debug)]
pub struct ClusterScheduler {
    interval_us: u64,
    level: u8,
    shard: usize,
    n_shards: usize,
    /// Min-heap of `(due_us, cell index)` for the owned cells.
    heap: BinaryHeap<Reverse<(u64, u64)>>,
}

impl ClusterScheduler {
    /// Creates a scheduler owning every cell of `cfg`'s clustering level.
    pub fn new(cfg: &MoistConfig) -> Self {
        Self::partitioned(cfg, 0, 1)
    }

    /// Creates the scheduler for shard `shard` of `n_shards`: it owns the
    /// clustering cells with `cell_owner(index, n_shards) == shard`.
    ///
    /// First deadlines are staggered by global cell index so cells do not
    /// all fire at once (the paper clusters cells sequentially for the same
    /// reason); the stagger is identical no matter how many shards split
    /// the level.
    pub fn partitioned(cfg: &MoistConfig, shard: usize, n_shards: usize) -> Self {
        let n_shards = n_shards.max(1);
        assert!(shard < n_shards, "shard {shard} out of {n_shards}");
        let n = cells_at_level(cfg.clustering_level);
        let interval_us = (cfg.cluster_interval_secs * 1e6) as u64;
        // 128-bit multiply before the divide: at fine levels `n` exceeds
        // `interval_us` and the naive `interval_us / n * i` truncates every
        // stagger to 0, re-creating the thundering herd.
        let stagger = |i: u64| (interval_us as u128 * i as u128 / n.max(1) as u128) as u64;
        let heap = (0..n)
            .filter(|&i| cell_owner(i, n_shards) == shard)
            .map(|i| Reverse((interval_us + stagger(i), i)))
            .collect();
        ClusterScheduler {
            interval_us: interval_us.max(1),
            level: cfg.clustering_level,
            shard,
            n_shards,
            heap,
        }
    }

    /// Whether this scheduler owns clustering cell `index`.
    pub fn owns(&self, index: u64) -> bool {
        cell_owner(index, self.n_shards) == self.shard
    }

    /// Number of clustering cells this scheduler owns.
    pub fn owned_count(&self) -> usize {
        self.heap.len()
    }

    /// Cells due for clustering at `now`, re-armed from their deadline.
    ///
    /// Each returned cell's next deadline is its missed one advanced by
    /// whole intervals until it is strictly in the future: the phase of the
    /// schedule is preserved without accumulating a catch-up backlog, and a
    /// cell fires at most once per call.
    pub fn due_cells(&mut self, now: Timestamp) -> Vec<CellId> {
        let now_us = now.0;
        let mut due = Vec::new();
        while let Some(&Reverse((due_us, index))) = self.heap.peek() {
            if due_us > now_us {
                break;
            }
            self.heap.pop();
            due.push(CellId {
                level: self.level,
                index,
            });
            let missed = (now_us - due_us) / self.interval_us + 1;
            self.heap
                .push(Reverse((due_us + missed * self.interval_us, index)));
        }
        due
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::update::{apply_update, UpdateMessage};
    use moist_bigtable::Bigtable;
    use moist_spatial::{Point, Velocity};
    use std::sync::Arc;

    fn setup() -> (Arc<Bigtable>, MoistTables, Session, MoistConfig) {
        let store = Bigtable::new();
        let cfg = MoistConfig {
            delta_m: 0.5,
            clustering_level: 3,
            ..MoistConfig::default()
        };
        let tables = MoistTables::create(&store, &cfg).unwrap();
        let session = store.session(); // real cost profile: reports need time
        (store, tables, session, cfg)
    }

    #[allow(clippy::too_many_arguments)]
    fn seed_leader(
        s: &mut Session,
        t: &MoistTables,
        cfg: &MoistConfig,
        oid: u64,
        x: f64,
        y: f64,
        vx: f64,
        vy: f64,
    ) {
        apply_update(
            s,
            t,
            cfg,
            &UpdateMessage {
                oid: ObjectId(oid),
                loc: Point::new(x, y),
                vel: Velocity::new(vx, vy),
                ts: Timestamp::from_secs(1),
            },
        )
        .unwrap();
    }

    #[test]
    fn similar_velocity_leaders_merge_into_one_school() {
        let (_st, t, mut s, cfg) = setup();
        // Three nearby leaders, two with near-identical velocities.
        seed_leader(&mut s, &t, &cfg, 1, 100.0, 100.0, 1.0, 0.0);
        seed_leader(&mut s, &t, &cfg, 2, 101.0, 100.0, 1.01, 0.0);
        seed_leader(&mut s, &t, &cfg, 3, 102.0, 100.0, -1.0, 0.0); // opposite
        let cell = cfg
            .space
            .cell_at(cfg.clustering_level, &Point::new(100.0, 100.0));
        let report = cluster_cell(&mut s, &t, &cfg, cell, Timestamp::from_secs(2)).unwrap();
        assert_eq!(report.pre_leaders, 3);
        assert_eq!(report.merged, 1);
        assert_eq!(report.post_leaders, 2);
        // The merged leader is now a follower.
        let lf1 = t.lf(&mut s, ObjectId(1)).unwrap().unwrap();
        let lf2 = t.lf(&mut s, ObjectId(2)).unwrap().unwrap();
        assert_ne!(lf1.is_leader(), lf2.is_leader(), "exactly one survives");
        // Object 3 is untouched.
        assert!(t.lf(&mut s, ObjectId(3)).unwrap().unwrap().is_leader());
        // Spatial index holds exactly the two surviving leaders.
        assert_eq!(
            t.spatial_count_cell(&mut s, cell, cfg.space.leaf_level)
                .unwrap(),
            2
        );
        // Phase breakdown is populated.
        assert!(report.read_us > 0.0 && report.write_us > 0.0);
    }

    #[test]
    fn merge_transfers_followers_with_composed_displacements() {
        let (_st, t, mut s, cfg) = setup();
        seed_leader(&mut s, &t, &cfg, 1, 100.0, 100.0, 1.0, 0.0);
        seed_leader(&mut s, &t, &cfg, 2, 110.0, 100.0, 1.0, 0.0);
        let affiliate = |s: &mut Session, leader: u64, follower: u64, d| {
            t.set_lf(
                s,
                ObjectId(follower),
                &LfRecord::Follower {
                    leader: ObjectId(leader),
                    displacement: d,
                    since_us: 0,
                },
                Timestamp::from_secs(1),
            )
            .unwrap();
            t.add_follower(
                s,
                ObjectId(leader),
                ObjectId(follower),
                d,
                Timestamp::from_secs(1),
            )
            .unwrap();
        };
        // Leader 1 has one follower (9); leader 2 has two (10, 11), so 2
        // survives the merge and 1's school moves over.
        let d9 = moist_spatial::Displacement::new(0.0, 3.0);
        affiliate(&mut s, 1, 9, d9);
        affiliate(&mut s, 2, 10, moist_spatial::Displacement::new(1.0, 0.0));
        affiliate(&mut s, 2, 11, moist_spatial::Displacement::new(2.0, 0.0));
        let cell = cfg
            .space
            .cell_at(cfg.clustering_level, &Point::new(100.0, 100.0));
        let report = cluster_cell(&mut s, &t, &cfg, cell, Timestamp::from_secs(2)).unwrap();
        assert_eq!(report.merged, 1);
        assert_eq!(report.followers_moved, 1, "only the absorbed school moves");
        assert!(t.lf(&mut s, ObjectId(2)).unwrap().unwrap().is_leader());
        // The absorbed leader 1 follows 2 with displacement 2→1 = (-10, 0).
        match t.lf(&mut s, ObjectId(1)).unwrap().unwrap() {
            LfRecord::Follower {
                leader,
                displacement,
                ..
            } => {
                assert_eq!(leader, ObjectId(2));
                assert!((displacement.dx - (-10.0)).abs() < 1e-9);
            }
            _ => panic!("absorbed leader must follow"),
        }
        // Follower 9's displacement composed: 2→1 + 1→9 = (-10, 3).
        match t.lf(&mut s, ObjectId(9)).unwrap().unwrap() {
            LfRecord::Follower {
                leader,
                displacement,
                ..
            } => {
                assert_eq!(leader, ObjectId(2));
                assert!((displacement.dx - (-10.0)).abs() < 1e-9);
                assert!((displacement.dy - 3.0).abs() < 1e-9);
            }
            _ => panic!("moved follower must follow the survivor"),
        }
        // Survivor's Follower Info: 10, 11, moved 9, absorbed 1.
        let followers = t.followers(&mut s, ObjectId(2)).unwrap();
        assert_eq!(followers.len(), 4);
        // Absorbed leader's own Follower Info was cleared.
        assert!(t.followers(&mut s, ObjectId(1)).unwrap().is_empty());
    }

    #[test]
    fn far_apart_leaders_are_not_merged_across_cells() {
        let (_st, t, mut s, cfg) = setup();
        // Same velocity but opposite map corners: different clustering cells.
        seed_leader(&mut s, &t, &cfg, 1, 10.0, 10.0, 1.0, 0.0);
        seed_leader(&mut s, &t, &cfg, 2, 990.0, 990.0, 1.0, 0.0);
        let report = cluster_sweep(&mut s, &t, &cfg, Timestamp::from_secs(2)).unwrap();
        assert_eq!(report.merged, 0, "geographic proximity is required");
        assert_eq!(report.pre_leaders, 2);
    }

    #[test]
    fn empty_and_singleton_cells_are_cheap_noops() {
        let (_st, t, mut s, cfg) = setup();
        seed_leader(&mut s, &t, &cfg, 1, 500.0, 500.0, 1.0, 0.0);
        let empty_cell = cfg
            .space
            .cell_at(cfg.clustering_level, &Point::new(10.0, 10.0));
        let r = cluster_cell(&mut s, &t, &cfg, empty_cell, Timestamp::from_secs(2)).unwrap();
        assert_eq!(r.pre_leaders, 0);
        assert_eq!(r.write_us, 0.0);
        let single = cfg
            .space
            .cell_at(cfg.clustering_level, &Point::new(500.0, 500.0));
        let r = cluster_cell(&mut s, &t, &cfg, single, Timestamp::from_secs(2)).unwrap();
        assert_eq!(r.pre_leaders, 1);
        assert_eq!(r.merged, 0);
    }

    #[test]
    fn clustering_is_idempotent() {
        let (_st, t, mut s, cfg) = setup();
        for i in 0..10 {
            seed_leader(&mut s, &t, &cfg, i, 100.0 + i as f64, 100.0, 1.0, 0.0);
        }
        let cell = cfg
            .space
            .cell_at(cfg.clustering_level, &Point::new(100.0, 100.0));
        let r1 = cluster_cell(&mut s, &t, &cfg, cell, Timestamp::from_secs(2)).unwrap();
        assert_eq!(r1.post_leaders, 1);
        let r2 = cluster_cell(&mut s, &t, &cfg, cell, Timestamp::from_secs(3)).unwrap();
        assert_eq!(r2.pre_leaders, 1);
        assert_eq!(r2.merged, 0, "second clustering finds nothing to merge");
    }

    #[test]
    fn scheduler_fires_each_cell_once_per_interval() {
        let cfg = MoistConfig {
            clustering_level: 1, // 4 cells
            cluster_interval_secs: 10.0,
            ..MoistConfig::default()
        };
        let mut sched = ClusterScheduler::new(&cfg);
        assert!(sched.due_cells(Timestamp::from_secs(5)).is_empty());
        // Deadlines are staggered at 10, 12.5, 15, 17.5 s: after 18 s every
        // cell has fired exactly once.
        let mut fired = 0;
        for t in [10, 12, 15, 18] {
            fired += sched.due_cells(Timestamp::from_secs(t)).len();
        }
        assert_eq!(fired, 4);
        // They re-arm one interval past their deadline.
        let more = sched.due_cells(Timestamp::from_secs(40)).len();
        assert_eq!(more, 4);
    }

    #[test]
    fn scheduler_rearms_from_deadline_not_call_time() {
        let cfg = MoistConfig {
            clustering_level: 0, // one cell, first due at 10 s
            cluster_interval_secs: 10.0,
            ..MoistConfig::default()
        };
        let mut sched = ClusterScheduler::new(&cfg);
        // A caller 3 s late: the cell fires, and the schedule keeps its
        // phase (next deadline 20 s, not 23 s).
        assert_eq!(sched.due_cells(Timestamp::from_secs(13)).len(), 1);
        assert!(sched.due_cells(Timestamp::from_secs(19)).is_empty());
        assert_eq!(sched.due_cells(Timestamp::from_secs(20)).len(), 1);
        // A caller several intervals late gets the cell once, not a
        // backlog of catch-up firings; phase is still preserved.
        assert_eq!(sched.due_cells(Timestamp::from_secs(57)).len(), 1);
        assert!(sched.due_cells(Timestamp::from_secs(59)).is_empty());
        assert_eq!(sched.due_cells(Timestamp::from_secs(60)).len(), 1);
    }

    #[test]
    fn partitioned_schedulers_cover_each_cell_exactly_once() {
        let cfg = MoistConfig {
            clustering_level: 4, // 256 cells
            ..MoistConfig::default()
        };
        for n_shards in [1usize, 2, 3, 5] {
            let scheds: Vec<ClusterScheduler> = (0..n_shards)
                .map(|s| ClusterScheduler::partitioned(&cfg, s, n_shards))
                .collect();
            let total: usize = scheds.iter().map(|s| s.owned_count()).sum();
            assert_eq!(total, 256, "{n_shards} shards must partition the level");
            for index in 0..256u64 {
                let owners = scheds.iter().filter(|s| s.owns(index)).count();
                assert_eq!(owners, 1, "cell {index} with {n_shards} shards");
                assert!(scheds[cell_owner(index, n_shards)].owns(index));
            }
        }
    }

    #[test]
    fn partitioned_schedulers_fire_owned_cells_only() {
        let cfg = MoistConfig {
            clustering_level: 3, // 64 cells
            cluster_interval_secs: 10.0,
            ..MoistConfig::default()
        };
        let mut scheds: Vec<ClusterScheduler> = (0..4)
            .map(|s| ClusterScheduler::partitioned(&cfg, s, 4))
            .collect();
        // Past every staggered first deadline (they all lie in [T, 2T)).
        let now = Timestamp::from_secs(25);
        let mut seen = std::collections::HashSet::new();
        for (shard, sched) in scheds.iter_mut().enumerate() {
            for cell in sched.due_cells(now) {
                assert_eq!(cell_owner(cell.index, 4), shard);
                assert!(seen.insert(cell.index), "cell {} fired twice", cell.index);
            }
        }
        assert_eq!(seen.len(), 64, "every cell fires exactly once");
    }
}
